//! A market-data pipeline: feed → parser → matching workers → order book.
//!
//! Exercises three structures in the roles they were designed for:
//!
//! * [`cds::queue::spsc_ring_buffer`] — the single network thread hands raw
//!   ticks to the single parser wait-free;
//! * [`cds::queue::BoundedQueue`] — parsed orders fan out to matching
//!   workers through a fixed-capacity MPMC ring (bounded = backpressure);
//! * [`cds::skiplist::LockFreeSkipList`] — the resting bid book is an
//!   ordered set supporting concurrent best-bid claims and inserts. Prices
//!   are stored negated so that the list minimum is the best (highest) bid.
//!
//! Run with: `cargo run --release --example order_book`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use cds::core::{ConcurrentQueue, ConcurrentSet};
use cds::queue::{spsc_ring_buffer, BoundedQueue};
use cds::skiplist::LockFreeSkipList;

const TICKS: u64 = 200_000;
const WORKERS: usize = 3;

/// A raw tick: price in the low 32 bits, a buy/sell flag in bit 32.
fn encode(price: u32, is_buy: bool) -> u64 {
    (price as u64) | ((is_buy as u64) << 32)
}

fn decode(tick: u64) -> (u32, bool) {
    (tick as u32, (tick >> 32) & 1 == 1)
}

fn main() {
    let (feed_tx, feed_rx) = spsc_ring_buffer::<u64>(1024);
    let orders: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::with_capacity(4096));
    // Bid book keyed by negated price: the skiplist minimum = best bid.
    let bids: Arc<LockFreeSkipList<i64>> = Arc::new(LockFreeSkipList::new());
    let matched = Arc::new(AtomicU64::new(0));
    let rested = Arc::new(AtomicU64::new(0));
    let processed = Arc::new(AtomicU64::new(0));

    let start = Instant::now();

    // Network thread: produces raw ticks (wait-free SPSC producer).
    let network = thread::spawn(move || {
        let mut rng = 0x2545f4914f6cdd1du64;
        for _ in 0..TICKS {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let price = 10_000 + (rng % 1_000) as u32;
            let is_buy = rng.is_multiple_of(2);
            feed_tx.push(encode(price, is_buy));
        }
    });

    // Parser thread: SPSC consumer → MPMC producer (spins on backpressure).
    let parser = {
        let orders = Arc::clone(&orders);
        thread::spawn(move || {
            let mut forwarded = 0u64;
            while forwarded < TICKS {
                match feed_rx.try_pop() {
                    Some(tick) => {
                        orders.enqueue(tick);
                        forwarded += 1;
                    }
                    None => thread::yield_now(),
                }
            }
        })
    };

    // Matching workers: buys rest in the book; sells lift the best bid.
    let workers: Vec<_> = (0..WORKERS)
        .map(|_| {
            let orders = Arc::clone(&orders);
            let bids = Arc::clone(&bids);
            let matched = Arc::clone(&matched);
            let rested = Arc::clone(&rested);
            let processed = Arc::clone(&processed);
            thread::spawn(move || loop {
                match orders.try_dequeue() {
                    Some(tick) => {
                        let (price, is_buy) = decode(tick);
                        if is_buy {
                            if bids.insert(-(price as i64)) {
                                rested.fetch_add(1, Ordering::Relaxed);
                            }
                            // A duplicate price neither rests nor matches.
                        } else if bids.remove_min().is_some() {
                            matched.fetch_add(1, Ordering::Relaxed);
                        }
                        processed.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        if processed.load(Ordering::Relaxed) == TICKS {
                            return;
                        }
                        thread::yield_now();
                    }
                }
            })
        })
        .collect();

    network.join().unwrap();
    parser.join().unwrap();
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = start.elapsed();

    let resting_now = bids.len() as u64;
    let best_bid = bids.min().map(|p| -p);
    println!("processed {TICKS} ticks in {elapsed:?}");
    println!(
        "throughput: {:.2} M ticks/s through the 3-stage pipeline",
        TICKS as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "matched {} trades; {} rested, {} still resting; best bid {:?}",
        matched.load(Ordering::Relaxed),
        rested.load(Ordering::Relaxed),
        resting_now,
        best_bid
    );
    assert_eq!(processed.load(Ordering::Relaxed), TICKS);
    assert_eq!(
        rested.load(Ordering::Relaxed) - matched.load(Ordering::Relaxed),
        resting_now,
        "book accounting must balance"
    );
    println!("book accounting balanced");
}

//! Bulk-synchronous phases with a sense-reversing barrier.
//!
//! The classic barrier use case: a data-parallel computation that proceeds
//! in rounds, where every thread must finish round `r` before any thread
//! starts round `r + 1` (here: a toy Jacobi-style smoothing of an array,
//! with each thread owning a chunk and reading its neighbours' boundary
//! values from the previous round).
//!
//! Run with: `cargo run --release --example phased_computation`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use cds::sync::SenseBarrier;

const THREADS: usize = 4;
const CELLS_PER_THREAD: usize = 1_000;
const ROUNDS: usize = 200;

fn main() {
    let n = THREADS * CELLS_PER_THREAD;
    // Double buffering: read from one generation, write the other.
    let buffers: Arc<[Vec<AtomicU64>; 2]> = Arc::new([
        (0..n)
            .map(|i| AtomicU64::new((i % 17) as u64 * 100))
            .collect(),
        (0..n).map(|_| AtomicU64::new(0)).collect(),
    ]);
    let barrier = Arc::new(SenseBarrier::new(THREADS));

    let start = Instant::now();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let buffers = Arc::clone(&buffers);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let lo = t * CELLS_PER_THREAD;
                let hi = lo + CELLS_PER_THREAD;
                for round in 0..ROUNDS {
                    let src = &buffers[round % 2];
                    let dst = &buffers[(round + 1) % 2];
                    for i in lo..hi {
                        let left = src[i.saturating_sub(1)].load(Ordering::Relaxed);
                        let mid = src[i].load(Ordering::Relaxed);
                        let right = src[(i + 1).min(n - 1)].load(Ordering::Relaxed);
                        dst[i].store((left + mid + right) / 3, Ordering::Relaxed);
                    }
                    // No thread may read round r+1's source until every
                    // thread finished writing it.
                    barrier.wait();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = start.elapsed();

    let final_gen = &buffers[ROUNDS % 2];
    let sum: u64 = final_gen.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    let min = final_gen
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .min()
        .unwrap();
    let max = final_gen
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .max()
        .unwrap();
    println!("{ROUNDS} rounds × {n} cells across {THREADS} threads in {elapsed:?}");
    println!(
        "smoothed field: min {min}, max {max}, mean {:.1}",
        sum as f64 / n as f64
    );
    assert!(
        max - min <= 1600,
        "smoothing failed to converge: {min}..{max}"
    );
    println!("converged (spread {} after {ROUNDS} rounds)", max - min);
}

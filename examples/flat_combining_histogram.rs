//! Building a custom concurrent structure with `FlatCombining`.
//!
//! The generic combiner in `cds-sync` turns *any* sequential structure
//! into a linearizable concurrent one: implement `FcStructure` for the
//! sequential code you already have, and threads' operations get batched
//! through a single combiner. This example wraps a latency histogram — a
//! structure with a compound operation (`record` updates a bucket, a max,
//! and a count atomically) that would otherwise need a custom lock
//! protocol.
//!
//! Run with: `cargo run --release --example flat_combining_histogram`

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use cds::sync::{FcStructure, FlatCombining};

/// A plain sequential latency histogram: power-of-two buckets, plus
/// aggregates that must stay consistent with the buckets.
struct Histogram {
    buckets: [u64; 32],
    count: u64,
    max: u64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: [0; 32],
            count: 0,
            max: 0,
        }
    }

    fn percentile(&self, p: f64) -> u64 {
        let target = (self.count as f64 * p) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return 1 << i;
            }
        }
        self.max
    }
}

/// Operations the combiner will apply; results carry the answers back.
enum Op {
    Record(u64),
    Snapshot,
}

enum Res {
    Recorded,
    Stats {
        count: u64,
        p50: u64,
        p99: u64,
        max: u64,
    },
}

impl FcStructure for Histogram {
    type Op = Op;
    type Res = Res;

    fn apply(&mut self, op: Op) -> Res {
        match op {
            Op::Record(value) => {
                let bucket = (64 - value.max(1).leading_zeros() as usize).min(31);
                // The three updates below are one atomic step from the
                // clients' perspective — that's the whole point.
                self.buckets[bucket] += 1;
                self.count += 1;
                self.max = self.max.max(value);
                Res::Recorded
            }
            Op::Snapshot => Res::Stats {
                count: self.count,
                p50: self.percentile(0.50),
                p99: self.percentile(0.99),
                max: self.max,
            },
        }
    }
}

const WORKERS: usize = 4;
const SAMPLES_PER_WORKER: usize = 100_000;

fn main() {
    let histogram = Arc::new(FlatCombining::new(Histogram::new()));

    let start = Instant::now();
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let histogram = Arc::clone(&histogram);
            thread::spawn(move || {
                let mut rng = (w as u64 + 1) * 0x9e3779b97f4a7c15;
                for i in 0..SAMPLES_PER_WORKER {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    // Log-normal-ish synthetic latencies in nanoseconds.
                    let latency = 1_000 + (rng % 65_536) * (rng % 16);
                    histogram.apply(Op::Record(latency));
                    // Occasionally read a consistent snapshot mid-stream.
                    if i % 25_000 == 0 {
                        if let Res::Stats { count, p99, .. } = histogram.apply(Op::Snapshot) {
                            assert!(count > 0);
                            assert!(p99 > 0);
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = start.elapsed();

    match histogram.apply(Op::Snapshot) {
        Res::Stats {
            count,
            p50,
            p99,
            max,
        } => {
            let total = (WORKERS * SAMPLES_PER_WORKER) as u64;
            println!("recorded {count} samples in {elapsed:?}");
            println!(
                "throughput: {:.2} M records/s through the combiner",
                count as f64 / elapsed.as_secs_f64() / 1e6
            );
            println!("p50 ≈ {p50} ns, p99 ≈ {p99} ns, max = {max} ns");
            assert_eq!(count, total, "samples lost in combining");
            println!("all {total} samples accounted for");
        }
        Res::Recorded => unreachable!(),
    }
}

//! Quickstart: a tour of the `cds` family.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use std::thread;

use cds::core::{
    ConcurrentCounter, ConcurrentMap, ConcurrentQueue, ConcurrentSet, ConcurrentStack,
};

fn main() {
    // ── Counters: pick your contention profile ─────────────────────────
    let hits = Arc::new(cds::counter::ShardedCounter::new());
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let hits = Arc::clone(&hits);
            thread::spawn(move || {
                for _ in 0..10_000 {
                    hits.increment();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    println!(
        "sharded counter counted {} hits (exact at quiescence)",
        hits.get()
    );

    // ── Stacks: lock-free Treiber as a drop-in for Mutex<Vec<_>> ──────
    let stack = Arc::new(cds::stack::TreiberStack::new());
    let pushers: Vec<_> = (0..4)
        .map(|t| {
            let stack = Arc::clone(&stack);
            thread::spawn(move || {
                for i in 0..100 {
                    stack.push(t * 100 + i);
                }
            })
        })
        .collect();
    for p in pushers {
        p.join().unwrap();
    }
    let mut drained = 0;
    while stack.pop().is_some() {
        drained += 1;
    }
    println!("treiber stack drained {drained} elements");

    // ── Queues: Michael–Scott for MPMC hand-off ────────────────────────
    let queue = Arc::new(cds::queue::MsQueue::new());
    queue.enqueue("first");
    queue.enqueue("second");
    println!(
        "ms queue is FIFO: {:?} then {:?}",
        queue.dequeue(),
        queue.dequeue()
    );

    // ── Sets: five list algorithms, one trait ──────────────────────────
    let lazy = cds::list::LazyList::new();
    let lock_free = cds::list::HarrisMichaelList::new();
    for k in [3, 1, 4, 1, 5] {
        lazy.insert(k);
        lock_free.insert(k);
    }
    println!(
        "lazy list holds {} keys; harris-michael holds {}",
        lazy.len(),
        lock_free.len()
    );

    // ── Maps: a lock-free hash table that grows in place ───────────────
    let map = cds::map::SplitOrderedHashMap::new();
    for i in 0..1_000u64 {
        map.insert(i, i * i);
    }
    println!(
        "split-ordered map: 40^2 = {:?}, buckets grew to {}",
        map.get(&40),
        map.bucket_count()
    );

    // ── Ordered sets: skiplist and BST, coarse to lock-free ────────────
    let skiplist = cds::skiplist::LockFreeSkipList::new();
    let bst = cds::tree::LockFreeBst::new();
    for k in [50, 20, 80, 10, 30] {
        skiplist.insert(k);
        bst.insert(k);
    }
    println!(
        "skiplist min = {:?}; bst contains 30: {}",
        skiplist.min(),
        bst.contains(&30)
    );

    // ── Priority queue: Lotan–Shavit over the skiplist ─────────────────
    use cds::core::ConcurrentPriorityQueue;
    let pq = cds::prio::SkipListPriorityQueue::new();
    for deadline in [30u64, 10, 20] {
        pq.insert(deadline);
    }
    println!("earliest deadline: {:?}", pq.remove_min());

    // ── Locks: pick the discipline that fits the contention ────────────
    use cds::sync::{Lock, McsLock};
    let shared = Arc::new(Lock::<McsLock, Vec<u32>>::new(Vec::new()));
    let writers: Vec<_> = (0..4)
        .map(|t| {
            let shared = Arc::clone(&shared);
            thread::spawn(move || shared.lock().push(t))
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    println!("mcs-locked vec has {} entries", shared.lock().len());

    println!("quickstart done");
}

//! A multi-threaded web server's visitor tracking, simulated.
//!
//! The motivating workload for concurrent sets and counters: each request
//! carries a client address; the server counts *unique* visitors and total
//! hits without any request serializing behind another. The set of seen
//! addresses is the lock-free split-ordered hash map; the hit counters are
//! sharded.
//!
//! Run with: `cargo run --release --example visitor_counter`

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use cds::core::{ConcurrentCounter, ConcurrentMap};
use cds::counter::ShardedCounter;
use cds::map::SplitOrderedHashMap;

const WORKERS: usize = 4;
const REQUESTS_PER_WORKER: usize = 50_000;
/// Simulated client population (requests draw addresses from this range).
const CLIENTS: u64 = 10_000;

struct Server {
    /// address → first-seen request number (insert-if-absent gives us
    /// "is this a new visitor?" for free).
    seen: SplitOrderedHashMap<u64, u64>,
    unique_visitors: ShardedCounter,
    total_hits: ShardedCounter,
}

impl Server {
    fn handle_request(&self, addr: u64, request_no: u64) {
        self.total_hits.increment();
        if self.seen.insert(addr, request_no) {
            self.unique_visitors.increment();
        }
    }
}

fn main() {
    let server = Arc::new(Server {
        seen: SplitOrderedHashMap::new(),
        unique_visitors: ShardedCounter::new(),
        total_hits: ShardedCounter::new(),
    });

    let start = Instant::now();
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                // Zipf-ish skew: a few hot clients, a long tail.
                let mut rng = (w as u64 + 1) * 0x9e3779b97f4a7c15;
                for i in 0..REQUESTS_PER_WORKER {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let addr = if rng % 10 < 3 {
                        rng % 16 // 30% of traffic from 16 hot clients
                    } else {
                        rng % CLIENTS
                    };
                    server.handle_request(addr, (w * REQUESTS_PER_WORKER + i) as u64);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = start.elapsed();

    let total = server.total_hits.get();
    let unique = server.unique_visitors.get();
    println!("handled {total} requests in {elapsed:?}");
    println!(
        "throughput: {:.2} M req/s across {WORKERS} workers",
        total as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!("unique visitors: {unique}");

    // Audit: the counter and the map must agree exactly at quiescence.
    assert_eq!(total as usize, WORKERS * REQUESTS_PER_WORKER);
    assert_eq!(unique as usize, server.seen.len());
    println!("audit passed: counters agree with the map");
}

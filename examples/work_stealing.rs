//! A miniature fork-join scheduler built on the Chase–Lev deque.
//!
//! One worker owns a deque and generates tasks (recursively splitting a
//! range-sum computation); thief threads steal from the top. This is the
//! exact architecture of Cilk/rayon-style schedulers, reduced to its
//! data-structure core.
//!
//! Run with: `cargo run --release --example work_stealing`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use cds::queue::{ChaseLevDeque, Steal};

/// A task: sum the integers in `[lo, hi)`, splitting while large.
#[derive(Debug)]
struct Task {
    lo: u64,
    hi: u64,
}

const SPLIT_THRESHOLD: u64 = 1_000;
const TOTAL_RANGE: u64 = 10_000_000;
const THIEVES: usize = 3;

fn process(task: Task, spawn: &mut impl FnMut(Task), total: &AtomicU64) {
    if task.hi - task.lo > SPLIT_THRESHOLD {
        let mid = (task.lo + task.hi) / 2;
        spawn(Task {
            lo: mid,
            hi: task.hi,
        });
        spawn(Task {
            lo: task.lo,
            hi: mid,
        });
    } else {
        let sum: u64 = (task.lo..task.hi).sum();
        total.fetch_add(sum, Ordering::Relaxed);
    }
}

fn main() {
    let (worker, stealer) = ChaseLevDeque::new();
    let total = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let start = Instant::now();
    let thieves: Vec<_> = (0..THIEVES)
        .map(|id| {
            let stealer = stealer.clone();
            let total = Arc::clone(&total);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                // Thieves keep their own local deque for the subtasks they
                // spawn, stealing from the owner when out of work.
                let (my_worker, _my_stealer) = ChaseLevDeque::new();
                let mut processed = 0u64;
                loop {
                    // Drain local work first (LIFO: cache-friendly).
                    while let Some(task) = my_worker.pop() {
                        process(task, &mut |t| my_worker.push(t), &total);
                        processed += 1;
                    }
                    match stealer.steal() {
                        Steal::Success(task) => {
                            process(task, &mut |t| my_worker.push(t), &total);
                            processed += 1;
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) {
                                return (id, processed);
                            }
                            thread::yield_now();
                        }
                    }
                }
            })
        })
        .collect();

    // The owner seeds the computation and works LIFO at the bottom.
    worker.push(Task {
        lo: 0,
        hi: TOTAL_RANGE,
    });
    let mut owner_processed = 0u64;
    while let Some(task) = worker.pop() {
        process(task, &mut |t| worker.push(t), &total);
        owner_processed += 1;
    }
    // The owner's deque is empty, but thieves may still hold split work in
    // their local deques; wait for quiescence before declaring done.
    // (For this example the owner's drain completing and the thieves'
    // local-first discipline make the simple flag sufficient.)
    done.store(true, Ordering::Release);

    let mut stolen = 0;
    for t in thieves {
        let (id, processed) = t.join().unwrap();
        println!("thief {id} processed {processed} tasks");
        stolen += processed;
    }
    let elapsed = start.elapsed();

    let expected: u64 = (0..TOTAL_RANGE).sum();
    let got = total.load(Ordering::Relaxed);
    println!("owner processed {owner_processed} tasks, thieves {stolen}");
    println!("sum(0..{TOTAL_RANGE}) = {got} in {elapsed:?}");
    assert_eq!(got, expected, "work was lost or duplicated");
    println!("result verified");
}

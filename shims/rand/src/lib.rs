//! In-tree stand-in for the [`rand`] crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace replaces `rand` with this shim. It implements exactly the
//! surface the workspace uses — [`RngCore`], [`SeedableRng`], [`Rng`] with
//! `gen_range`, and [`rngs::SmallRng`] — backed by SplitMix64 (Steele et
//! al., *Fast splittable pseudorandom number generators*, OOPSLA 2014),
//! which passes BigCrush at 64 bits of state and is plenty for tower
//! heights and test shuffles.
//!
//! [`rand`]: https://docs.rs/rand

use std::ops::Range;

/// Core pseudo-random generation: uniform 32/64-bit draws.
pub trait RngCore {
    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds or OS entropy.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from ambient entropy (time + ASLR).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        let marker = 0u8;
        // Per-thread stack address mixes in ASLR and thread identity.
        Self::seed_from_u64(t ^ ((&marker as *const u8 as u64).rotate_left(32)))
    }
}

/// Ranged sampling on top of [`RngCore`] (auto-implemented).
pub trait Rng: RngCore {
    /// Draws a uniform value from `range` (half-open; must be non-empty).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(&mut |n| self.next_u64() % n)
    }
}

impl<T: RngCore> Rng for T {}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws from the range; `draw(n)` returns a uniform value in `0..n`.
    fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + draw(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast non-cryptographic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        let v = r.gen_range(-5i64..5);
        assert!((-5..5).contains(&v));
    }

    #[test]
    fn low_bits_vary() {
        // trailing_zeros of next_u64 drives skiplist tower heights; make
        // sure the stream isn't degenerate in the low bits.
        let mut r = SmallRng::seed_from_u64(1);
        let mut zeros = 0;
        for _ in 0..1000 {
            if r.next_u64() & 1 == 0 {
                zeros += 1;
            }
        }
        assert!((300..700).contains(&zeros));
    }
}

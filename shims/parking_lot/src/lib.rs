//! In-tree stand-in for the [`parking_lot`] crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace replaces `parking_lot` with this shim: the same non-poisoning
//! `Mutex`/`RwLock` surface the structure crates use, implemented over
//! `std::sync`.
//!
//! Two deliberate behaviours beyond plain delegation:
//!
//! * **Poisoned-lock recovery.** `parking_lot` locks do not poison; this
//!   shim matches that by *recovering* from `std` poisoning — if a thread
//!   panicked while holding the lock, the next `lock()` simply takes over
//!   the inner data. The fault-injection tests rely on this to prove the
//!   lock-based structures survive a worker dying mid-critical-section.
//! * **Stress yield points.** Every acquisition routes through
//!   [`cds_core::stress::yield_point`], so when the PCT-style stress
//!   scheduler is active (the `stress` feature plus an installed
//!   scheduler), lock-based structures get preemption points at exactly
//!   the moments that matter — immediately before entering and after
//!   leaving the lock queue.
//!
//! [`parking_lot`]: https://docs.rs/parking_lot

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;

/// A mutual-exclusion primitive, API-compatible with the subset of
/// `parking_lot::Mutex` this workspace uses.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value (recovering it
    /// if a panicking holder poisoned the inner `std` lock).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    ///
    /// Unlike `std`, never fails: a poisoned inner lock (holder panicked)
    /// is recovered, matching `parking_lot`'s non-poisoning semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        // The entry tag: the step up to the next yield is exactly one
        // try_lock attempt on this lock word. The post-acquire yields
        // stay untagged because the step after them is the caller's
        // critical section, which may touch anything.
        cds_core::stress::yield_point_tagged(cds_core::stress::YieldTag::Write(
            self as *const Self as *const () as usize,
        ));
        // Under an active stress scheduler, never block in the kernel:
        // a token-holding thread sleeping on a lock held by a spinning
        // non-token thread stalls the whole schedule until the fairness
        // bound trips. Spin-acquire through try_lock instead, yielding at
        // each failed attempt so the scheduler can hand the token to the
        // current holder.
        #[cfg(feature = "stress")]
        if cds_core::stress::is_active() {
            loop {
                match self.inner.try_lock() {
                    Ok(inner) => {
                        cds_core::stress::yield_point();
                        return MutexGuard { inner };
                    }
                    Err(TryLockError::Poisoned(poison)) => {
                        cds_core::stress::yield_point();
                        return MutexGuard {
                            inner: poison.into_inner(),
                        };
                    }
                    Err(TryLockError::WouldBlock) => {
                        // Pure recheck until the holder releases.
                        cds_core::stress::yield_point_tagged(cds_core::stress::YieldTag::Blocked(
                            self as *const Self as *const () as usize,
                        ));
                        std::thread::yield_now();
                    }
                }
            }
        }
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        cds_core::stress::yield_point();
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        cds_core::stress::yield_point();
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard { inner }),
            Err(TryLockError::Poisoned(poison)) => Some(MutexGuard {
                inner: poison.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Reader-writer lock, API-compatible with the subset of
/// `parking_lot::RwLock` this workspace uses.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access (recovers from poisoning).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        // `Write`, not `Read`: acquiring shared access still writes the
        // reader count in the lock word.
        cds_core::stress::yield_point_tagged(cds_core::stress::YieldTag::Write(
            self as *const Self as *const () as usize,
        ));
        // Same no-kernel-blocking rule as `Mutex::lock` under an active
        // stress scheduler.
        #[cfg(feature = "stress")]
        if cds_core::stress::is_active() {
            loop {
                match self.inner.try_read() {
                    Ok(inner) => return RwLockReadGuard { inner },
                    Err(TryLockError::Poisoned(poison)) => {
                        return RwLockReadGuard {
                            inner: poison.into_inner(),
                        }
                    }
                    Err(TryLockError::WouldBlock) => {
                        cds_core::stress::yield_point_tagged(cds_core::stress::YieldTag::Blocked(
                            self as *const Self as *const () as usize,
                        ));
                        std::thread::yield_now();
                    }
                }
            }
        }
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Acquires exclusive write access (recovers from poisoning).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        cds_core::stress::yield_point_tagged(cds_core::stress::YieldTag::Write(
            self as *const Self as *const () as usize,
        ));
        #[cfg(feature = "stress")]
        if cds_core::stress::is_active() {
            loop {
                match self.inner.try_write() {
                    Ok(inner) => return RwLockWriteGuard { inner },
                    Err(TryLockError::Poisoned(poison)) => {
                        return RwLockWriteGuard {
                            inner: poison.into_inner(),
                        }
                    }
                    Err(TryLockError::WouldBlock) => {
                        cds_core::stress::yield_point_tagged(cds_core::stress::YieldTag::Blocked(
                            self as *const Self as *const () as usize,
                        ));
                        std::thread::yield_now();
                    }
                }
            }
        }
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_recovers_after_holder_panics() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: no poisoning observable by later holders.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}

//! In-tree stand-in for the [`criterion`] crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace replaces `criterion` with this shim. It keeps the macro and
//! builder surface the benches use (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`) and implements a
//! deliberately simple runner: warm up for the configured time, then
//! measure for the configured time, and print `ns/iter` per benchmark.
//! No statistics, plots, or history — the goal is that `cargo bench`
//! compiles and produces usable raw numbers offline.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement strategies (API parity with real criterion, where
/// `BenchmarkGroup` is generic over one; the shim only ever wall-clocks).
pub mod measurement {
    /// Wall-clock time measurement (the real crate's default).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Top-level benchmark driver (configuration holder).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Disables plot generation (a no-op here; kept for API parity).
    pub fn without_plots(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            _parent: std::marker::PhantomData,
            _measurement: std::marker::PhantomData,
        }
    }
}

/// A named benchmark id with an optional parameter, printed as
/// `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing timing configuration.
///
/// Generic over a measurement type for signature parity with the real
/// crate (so helpers can be written as
/// `fn bench(g: &mut BenchmarkGroup<'_, measurement::WallTime>)`); the
/// shim ignores it and always wall-clocks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of samples (kept for API parity; the shim divides
    /// the measurement window evenly regardless).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            report: None,
        };
        f(&mut b, input);
        if let Some((iters, elapsed)) = b.report {
            let ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
            println!("{}/{:<40} time: {:>12.1} ns/iter", self.name, id.id, ns);
        }
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = BenchmarkId { id: id.into() };
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Per-benchmark measurement driver handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Measures `f`: warm up, then run repeatedly for the measurement
    /// window, recording total iterations and elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            black_box(f());
            iters += 1;
        }
        self.report = Some((iters, start.elapsed()));
    }
}

/// Declares a benchmark group; both the struct-like and list forms of the
/// real macro are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("noop", 1), &1u32, |b, &x| {
            b.iter(|| x + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("macro");
        g.measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        g.bench_function("id", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(demo_group, target);

    #[test]
    fn group_macro_produces_runnable_fn() {
        demo_group();
    }
}

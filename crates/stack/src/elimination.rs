use cds_atomic::{AtomicPtr, AtomicU8, Ordering};
use std::cell::UnsafeCell;
use std::fmt;
use std::ptr;

use cds_core::ConcurrentStack;
use cds_sync::CachePadded;

use crate::TreiberStack;

const WAITING: u8 = 0;
const TAKEN: u8 = 1;

/// A pusher's offer parked in an elimination slot.
///
/// Lives on the pusher's stack frame; the protocol guarantees the pusher
/// does not return (deallocating the frame) until any claiming popper has
/// finished with it.
struct Offer<T> {
    value: UnsafeCell<Option<T>>,
    state: AtomicU8,
}

/// An array of single-use exchanger slots where a concurrent push and pop
/// can *eliminate* each other without touching the main structure.
///
/// The observation (Hendler, Shavit & Yerushalmi, 2004): a push immediately
/// followed by a pop leaves a stack unchanged, so a colliding push/pop pair
/// may transfer the value directly and both return — in parallel with any
/// number of other such pairs. The array is the backoff path of
/// [`EliminationBackoffStack`], turning contention into throughput.
///
/// # Protocol (per slot)
///
/// * A **pusher** CASes a pointer to its `Offer` into an empty slot and
///   spins briefly. If a popper marks the offer `TAKEN`, the exchange
///   succeeded. On timeout the pusher CASes the slot back to empty; if
///   *that* fails, a popper has already claimed the offer and the pusher
///   waits for `TAKEN`.
/// * A **popper** loads the slot and CASes it to empty; success means it
///   uniquely claimed the offer: it takes the value and sets `TAKEN`.
///
/// The claim CAS makes take/retract mutually exclusive, so the value moves
/// exactly once.
pub struct EliminationArray<T> {
    slots: Box<[CachePadded<AtomicPtr<Offer<T>>>]>,
}

// SAFETY: values move pusher→popper (requires `T: Send`); slot pointers are
// only dereferenced under the claim protocol described above.
unsafe impl<T: Send> Send for EliminationArray<T> {}
unsafe impl<T: Send> Sync for EliminationArray<T> {}

impl<T> EliminationArray<T> {
    /// Creates an array with `capacity` exchanger slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "elimination array needs at least one slot");
        EliminationArray {
            slots: (0..capacity)
                .map(|_| CachePadded::new(AtomicPtr::new(ptr::null_mut())))
                .collect(),
        }
    }

    fn random_slot(&self) -> &AtomicPtr<Offer<T>> {
        // Cheap thread-local xorshift; quality does not matter, decorrelation
        // across threads does.
        use std::cell::Cell;
        thread_local! {
            static SEED: Cell<u64> = const { Cell::new(0) };
        }
        let r = SEED.with(|seed| {
            let mut s = seed.get();
            if s == 0 {
                // Derive an initial seed from the address of a stack slot.
                s = &s as *const _ as u64 | 1;
            }
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            seed.set(s);
            s
        });
        &self.slots[(r as usize) % self.slots.len()]
    }

    /// Offers `value` to a popper, spinning for `spins` iterations.
    ///
    /// Returns `Ok(())` if a popper took the value, `Err(value)` otherwise.
    pub fn exchange_push(&self, value: T, spins: usize) -> Result<(), T> {
        let offer = Offer {
            value: UnsafeCell::new(Some(value)),
            state: AtomicU8::new(WAITING),
        };
        let offer_ptr = &offer as *const Offer<T> as *mut Offer<T>;
        let slot = self.random_slot();

        if slot
            .compare_exchange(
                ptr::null_mut(),
                offer_ptr,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_err()
        {
            // Slot busy (another pusher): collision of the wrong kind.
            return Err(offer.value.into_inner().expect("untouched offer"));
        }

        for _ in 0..spins {
            if offer.state.load(Ordering::Acquire) == TAKEN {
                return Ok(());
            }
            // No-op outside stress builds (the spin budget *is* the
            // elimination window); under the scheduler this lets a popper
            // run mid-window, so elimination stays reachable.
            cds_core::stress::yield_point();
            core::hint::spin_loop();
        }

        // Timeout: retract the offer.
        if slot
            .compare_exchange(
                offer_ptr,
                ptr::null_mut(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            // Nobody claimed it; the value is still ours.
            // SAFETY: retraction succeeded, so no popper can reach the offer.
            return Err(unsafe { &mut *offer.value.get() }
                .take()
                .expect("retracted offer must still hold its value"));
        }

        // A popper claimed the offer between our timeout and the retract
        // CAS; it will set TAKEN after moving the value out. We must not
        // return (deallocating `offer`) until then. This wait is unbounded,
        // so it needs a yield point: under the stress scheduler the claimer
        // may be descheduled between its claim CAS and its TAKEN store, and
        // a bare spin here would burn the whole fairness bound.
        while offer.state.load(Ordering::Acquire) != TAKEN {
            cds_core::stress::yield_point();
            core::hint::spin_loop();
        }
        Ok(())
    }

    /// Attempts to take a value from a waiting pusher.
    pub fn exchange_pop(&self) -> Option<T> {
        let slot = self.random_slot();
        let p = slot.load(Ordering::Acquire);
        if p.is_null() {
            return None;
        }
        if slot
            .compare_exchange(p, ptr::null_mut(), Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: the claim CAS succeeded, so the offer behind `p` was
            // installed and its pusher is spinning until we set TAKEN; the
            // allocation is therefore alive and we have exclusive take
            // rights.
            unsafe {
                let value = (*(*p).value.get())
                    .take()
                    .expect("claimed offer must hold a value");
                (*p).state.store(TAKEN, Ordering::Release);
                return Some(value);
            }
        }
        None
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<T> fmt::Debug for EliminationArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EliminationArray")
            .field("capacity", &self.capacity())
            .finish()
    }
}

/// The elimination-backoff stack (Hendler, Shavit & Yerushalmi, 2004).
///
/// A [`TreiberStack`] whose backoff path is an [`EliminationArray`]: when
/// the head CAS fails, instead of idling, a push parks its value in a
/// random exchanger slot and a pop scavenges one. Under high contention the
/// stack's inherent sequential bottleneck (the head pointer) is bypassed by
/// pairs of operations cancelling out in parallel — throughput *increases*
/// with contention instead of collapsing.
///
/// Linearizability: an eliminated push/pop pair is equivalent to the push
/// linearizing immediately before the pop at the moment of exchange.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentStack;
/// use cds_stack::EliminationBackoffStack;
///
/// let s = EliminationBackoffStack::new();
/// s.push('a');
/// assert_eq!(s.pop(), Some('a'));
/// ```
pub struct EliminationBackoffStack<T> {
    stack: TreiberStack<T>,
    elim: EliminationArray<T>,
    /// How long a parked push waits for elimination before retrying.
    elimination_spins: usize,
}

impl<T> EliminationBackoffStack<T> {
    /// Default number of exchanger slots.
    const DEFAULT_SLOTS: usize = 4;
    /// Default spin budget while parked in a slot.
    const DEFAULT_SPINS: usize = 64;

    /// Creates a stack with default elimination parameters.
    pub fn new() -> Self {
        Self::with_params(Self::DEFAULT_SLOTS, Self::DEFAULT_SPINS)
    }

    /// Creates a stack with `slots` exchanger slots and a `spins` spin
    /// budget per elimination round (exposed for the E2 ablation bench).
    pub fn with_params(slots: usize, spins: usize) -> Self {
        EliminationBackoffStack {
            stack: TreiberStack::new(),
            elim: EliminationArray::new(slots),
            elimination_spins: spins,
        }
    }
}

impl<T> Default for EliminationBackoffStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static> ConcurrentStack<T> for EliminationBackoffStack<T> {
    const NAME: &'static str = "elimination";

    fn push(&self, value: T) {
        cds_obs::count(cds_obs::Event::ElimPush);
        let mut value = value;
        loop {
            cds_core::stress::yield_point();
            match self.stack.try_push(value) {
                Ok(()) => return,
                Err(v) => value = v,
            }
            // Head contention: try to eliminate against a pop.
            match self.elim.exchange_push(value, self.elimination_spins) {
                Ok(()) => {
                    cds_obs::count(cds_obs::Event::ElimHitPush);
                    return;
                }
                Err(v) => {
                    cds_obs::count(cds_obs::Event::ElimMiss);
                    value = v;
                }
            }
        }
    }

    fn pop(&self) -> Option<T> {
        cds_obs::count(cds_obs::Event::ElimPop);
        loop {
            cds_core::stress::yield_point();
            if let Ok(result) = self.stack.try_pop() {
                return result;
            }
            if let Some(v) = self.elim.exchange_pop() {
                cds_obs::count(cds_obs::Event::ElimHitPop);
                return Some(v);
            }
            cds_obs::count(cds_obs::Event::ElimMiss);
        }
    }

    fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

impl<T> fmt::Debug for EliminationBackoffStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EliminationBackoffStack")
            .field("slots", &self.elim.capacity())
            .field("spins", &self.elimination_spins)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn direct_exchange_between_threads() {
        let elim = Arc::new(EliminationArray::<u32>::new(1));
        let pusher = {
            let elim = Arc::clone(&elim);
            std::thread::spawn(move || {
                // Keep offering until a popper takes it.
                let mut v = 7;
                loop {
                    match elim.exchange_push(v, 10_000) {
                        Ok(()) => return,
                        Err(back) => v = back,
                    }
                }
            })
        };
        let popper = {
            let elim = Arc::clone(&elim);
            std::thread::spawn(move || loop {
                if let Some(v) = elim.exchange_pop() {
                    return v;
                }
                std::thread::yield_now();
            })
        };
        pusher.join().unwrap();
        assert_eq!(popper.join().unwrap(), 7);
    }

    #[test]
    fn timed_out_push_returns_value() {
        let elim = EliminationArray::<u32>::new(1);
        // No popper exists; the push must give the value back.
        assert_eq!(elim.exchange_push(3, 10), Err(3));
        // And the slot must be empty again.
        assert_eq!(elim.exchange_pop(), None);
    }

    #[test]
    fn pop_on_empty_slot_is_none() {
        let elim = EliminationArray::<u32>::new(2);
        assert_eq!(elim.exchange_pop(), None);
    }

    #[test]
    fn stack_round_trip() {
        let s = EliminationBackoffStack::new();
        for i in 0..50 {
            s.push(i);
        }
        for i in (0..50).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
    }
}

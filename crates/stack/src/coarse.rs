use std::fmt;

use cds_core::ConcurrentStack;
use parking_lot::Mutex;

/// A coarse-grained lock-based stack: a `Vec` behind one mutex.
///
/// This is the structure a sequential program grows into with the least
/// effort, and the baseline the lock-free implementations are measured
/// against (experiment E2). Every operation excludes every other, so
/// throughput is flat or degrading as threads are added.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentStack;
/// use cds_stack::CoarseStack;
///
/// let s = CoarseStack::new();
/// s.push("a");
/// assert_eq!(s.pop(), Some("a"));
/// ```
pub struct CoarseStack<T> {
    items: Mutex<Vec<T>>,
}

impl<T> CoarseStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        CoarseStack {
            items: Mutex::new(Vec::new()),
        }
    }

    /// Number of elements currently stored.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether the stack is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for CoarseStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> ConcurrentStack<T> for CoarseStack<T> {
    const NAME: &'static str = "coarse";

    fn push(&self, value: T) {
        self.items.lock().push(value);
    }

    fn pop(&self) -> Option<T> {
        self.items.lock().pop()
    }

    fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
}

impl<T> fmt::Debug for CoarseStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoarseStack")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentStack;

    #[test]
    fn len_tracks_operations() {
        let s = CoarseStack::new();
        assert_eq!(s.len(), 0);
        s.push(1);
        s.push(2);
        assert_eq!(s.len(), 2);
        s.pop();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn pop_empty_is_none() {
        let s: CoarseStack<i32> = CoarseStack::default();
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }
}

use std::fmt;
use std::mem::ManuallyDrop;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

use cds_core::ConcurrentStack;
use cds_reclaim::hazard::{Domain, HazardPointer};
use cds_sync::Backoff;

struct Node<T> {
    value: ManuallyDrop<T>,
    next: *mut Node<T>,
}

/// A Treiber stack protected by **hazard pointers** instead of epochs.
///
/// Algorithmically identical to [`TreiberStack`](crate::TreiberStack); the
/// difference is the reclamation scheme. Each `pop` publishes the head
/// pointer in a hazard slot before dereferencing it, so a concurrent popper
/// that unlinks and retires the node cannot free it. This bounds garbage
/// even if a thread stalls mid-`pop` — the property epochs lack — at the
/// cost of a fence per protection.
///
/// Each stack owns a private [`Domain`], so dropping the stack reclaims
/// everything it retired. Experiment E10 compares this stack against the
/// epoch variant and a leaking baseline.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentStack;
/// use cds_stack::HpTreiberStack;
///
/// let s = HpTreiberStack::new();
/// s.push(5);
/// assert_eq!(s.pop(), Some(5));
/// ```
pub struct HpTreiberStack<T> {
    head: AtomicPtr<Node<T>>,
    domain: Domain,
}

// SAFETY: values cross threads by move (push/pop); nodes are managed by the
// hazard-pointer protocol.
unsafe impl<T: Send> Send for HpTreiberStack<T> {}
unsafe impl<T: Send> Sync for HpTreiberStack<T> {}

impl<T> HpTreiberStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        HpTreiberStack {
            head: AtomicPtr::new(ptr::null_mut()),
            domain: Domain::new(),
        }
    }

    /// Number of retired-but-unreclaimed nodes (diagnostics for E10).
    pub fn garbage_len(&self) -> usize {
        self.domain.retired_len()
    }
}

impl<T> Default for HpTreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static> ConcurrentStack<T> for HpTreiberStack<T> {
    const NAME: &'static str = "treiber-hp";

    fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            value: ManuallyDrop::new(value),
            next: ptr::null_mut(),
        }));
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            let head = self.head.load(Ordering::Relaxed);
            // SAFETY: `node` is unpublished until the CAS succeeds.
            unsafe { (*node).next = head };
            if self
                .head
                .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            backoff.spin();
        }
    }

    fn pop(&self) -> Option<T> {
        let mut hp = HazardPointer::new(&self.domain);
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            let head = hp.protect(&self.head);
            if head.is_null() {
                return None;
            }
            // SAFETY: `head` is protected by our hazard slot, so even if a
            // concurrent popper unlinks and retires it, the domain will not
            // free it while we read `next`.
            let next = unsafe { (*head).next };
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: CAS victory gives unique ownership of the value;
                // the node goes to the domain because other poppers may
                // still hold protected references.
                unsafe {
                    let value = ptr::read(&*(*head).value);
                    hp.reset();
                    self.domain.retire(head);
                    return Some(value);
                }
            }
            backoff.spin();
        }
    }

    fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }
}

impl<T> Drop for HpTreiberStack<T> {
    fn drop(&mut self) {
        // Unique access: free the remaining chain, dropping live values.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: nodes still linked were never popped, so their values
            // are live; we own everything.
            unsafe {
                let mut boxed = Box::from_raw(cur);
                ManuallyDrop::drop(&mut boxed.value);
                cur = boxed.next;
            }
        }
        // The domain's own Drop frees retired (already value-less) nodes.
    }
}

impl<T> fmt::Debug for HpTreiberStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HpTreiberStack")
            .field("garbage", &self.garbage_len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn push_pop_round_trip() {
        let s = HpTreiberStack::new();
        s.push(1);
        s.push(2);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn drop_frees_live_values() {
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let s = HpTreiberStack::new();
            for _ in 0..8 {
                s.push(D(Arc::clone(&drops)));
            }
            drop(s.pop());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn garbage_is_bounded_by_scan_threshold() {
        let s = HpTreiberStack::new();
        for i in 0..10_000 {
            s.push(i);
            let _ = s.pop();
        }
        // Hazard pointers guarantee bounded garbage; the retire threshold
        // is 64, so the backlog must stay well under the churn volume.
        assert!(s.garbage_len() < 128, "garbage grew: {}", s.garbage_len());
    }
}

use std::fmt;

use cds_core::ConcurrentStack;
use cds_sync::{FcStructure, FlatCombining};

struct SeqStack<T>(Vec<T>);

enum Op<T> {
    Push(T),
    Pop,
}

impl<T> FcStructure for SeqStack<T> {
    type Op = Op<T>;
    type Res = Option<T>;

    fn apply(&mut self, op: Op<T>) -> Option<T> {
        match op {
            Op::Push(v) => {
                self.0.push(v);
                None
            }
            Op::Pop => self.0.pop(),
        }
    }
}

/// A **flat-combining** stack (Hendler et al., SPAA 2010).
///
/// A plain `Vec` driven through [`cds_sync::FlatCombining`]: threads
/// publish their push/pop in per-thread slots and one combiner executes a
/// whole batch under a single lock acquisition. The historically
/// interesting middle point between [`CoarseStack`](crate::CoarseStack)
/// (one lock acquisition *per op*) and the lock-free designs — included in
/// experiment E2.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentStack;
/// use cds_stack::FcStack;
///
/// let s = FcStack::new();
/// s.push(1);
/// assert_eq!(s.pop(), Some(1));
/// ```
pub struct FcStack<T> {
    fc: FlatCombining<SeqStack<T>>,
}

impl<T> FcStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        FcStack {
            fc: FlatCombining::new(SeqStack(Vec::new())),
        }
    }

    /// Returns `true` if there are no elements (serviced under the
    /// combiner lock).
    pub fn is_empty(&self) -> bool {
        self.fc.with(|s| s.0.is_empty())
    }

    /// Number of elements (serviced under the combiner lock).
    pub fn len(&self) -> usize {
        self.fc.with(|s| s.0.len())
    }
}

impl<T> Default for FcStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> ConcurrentStack<T> for FcStack<T> {
    const NAME: &'static str = "flat-combining";

    fn push(&self, value: T) {
        cds_core::stress::yield_point();
        self.fc.apply(Op::Push(value));
    }

    fn pop(&self) -> Option<T> {
        cds_core::stress::yield_point();
        self.fc.apply(Op::Pop)
    }

    fn is_empty(&self) -> bool {
        self.fc.with(|s| s.0.is_empty())
    }
}

impl<T> fmt::Debug for FcStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FcStack").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lifo_order() {
        let s = FcStack::new();
        s.push(1);
        s.push(2);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn combined_pushes_all_land() {
        let s = Arc::new(FcStack::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        s.push(t * 500 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 2_000);
    }
}

use std::fmt;
use std::mem::ManuallyDrop;
use std::ptr;
use std::sync::atomic::Ordering;

use cds_core::ConcurrentStack;
use cds_reclaim::epoch::{self, Atomic, Guard, Owned, Shared};
use cds_sync::Backoff;

struct Node<T> {
    /// Taken out by the winning popper; dropped by `Drop for TreiberStack`
    /// for nodes still linked when the stack dies.
    value: ManuallyDrop<T>,
    next: Atomic<Node<T>>,
}

/// The Treiber lock-free stack (R. K. Treiber, 1986).
///
/// The head pointer is the single point of synchronization: `push` links a
/// new node with one CAS, `pop` unlinks the head with one CAS. Both
/// operations are **lock-free** — some thread always completes in a bounded
/// number of steps — though an individual thread can starve under a
/// perfectly adversarial schedule.
///
/// Unlinked nodes are handed to the epoch collector
/// ([`cds_reclaim::epoch`]) because a slow concurrent popper may still be
/// reading them; see [`HpTreiberStack`](crate::HpTreiberStack) for the
/// hazard-pointer variant.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentStack;
/// use cds_stack::TreiberStack;
///
/// let s = TreiberStack::new();
/// s.push(10);
/// s.push(20);
/// assert_eq!(s.pop(), Some(20));
/// assert_eq!(s.pop(), Some(10));
/// assert_eq!(s.pop(), None);
/// ```
pub struct TreiberStack<T> {
    head: Atomic<Node<T>>,
}

// SAFETY: values of type `T` cross threads (pushed on one, popped on
// another), which is exactly `T: Send`. No `&T` is ever shared.
unsafe impl<T: Send> Send for TreiberStack<T> {}
unsafe impl<T: Send> Sync for TreiberStack<T> {}

impl<T> TreiberStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        TreiberStack {
            head: Atomic::null(),
        }
    }

    fn push_node(&self, node: Shared<'_, Node<T>>, guard: &Guard) {
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            let head = self.head.load(Ordering::Relaxed, guard);
            // SAFETY: `node` is ours until the CAS below publishes it.
            unsafe { node.deref() }.next.store(head, Ordering::Relaxed);
            // Release: publish the node's initialization with the link.
            if self
                .head
                .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed, guard)
                .is_ok()
            {
                return;
            }
            backoff.spin();
        }
    }

    /// Attempts a single push CAS; on contention returns the value back.
    /// Used by the elimination-backoff stack to interleave CAS attempts
    /// with elimination rounds.
    pub(crate) fn try_push(&self, value: T) -> Result<(), T> {
        let guard = epoch::pin();
        let node = Owned::new(Node {
            value: ManuallyDrop::new(value),
            next: Atomic::null(),
        })
        .into_shared(&guard);
        let head = self.head.load(Ordering::Relaxed, &guard);
        // SAFETY: `node` is unpublished.
        unsafe { node.deref() }.next.store(head, Ordering::Relaxed);
        match self
            .head
            .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed, &guard)
        {
            Ok(_) => Ok(()),
            Err(_) => {
                // SAFETY: the node was never published; we still own it.
                let mut boxed = unsafe { node.into_owned() }.into_box();
                // SAFETY: the value was never taken.
                Err(unsafe { ManuallyDrop::take(&mut boxed.value) })
            }
        }
    }

    /// Attempts a single pop CAS. `Ok(None)` means the stack was empty;
    /// `Err(())` means the CAS lost a race.
    pub(crate) fn try_pop(&self) -> Result<Option<T>, ()> {
        let guard = epoch::pin();
        let head = self.head.load(Ordering::Acquire, &guard);
        // SAFETY: pinned.
        let node = match unsafe { head.as_ref() } {
            None => return Ok(None),
            Some(n) => n,
        };
        let next = node.next.load(Ordering::Relaxed, &guard);
        match self
            .head
            .compare_exchange(head, next, Ordering::AcqRel, Ordering::Relaxed, &guard)
        {
            Ok(_) => {
                // SAFETY: as in `pop_node`.
                unsafe {
                    let value = ptr::read(&*node.value);
                    guard.defer_destroy(head);
                    Ok(Some(value))
                }
            }
            Err(_) => Err(()),
        }
    }

    fn pop_node(&self, guard: &Guard) -> Option<T> {
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            let head = self.head.load(Ordering::Acquire, guard);
            // SAFETY: the guard pins the epoch, so `head` cannot have been
            // freed; it was allocated by `push`.
            let node = unsafe { head.as_ref() }?;
            let next = node.next.load(Ordering::Relaxed, guard);
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Relaxed, guard)
                .is_ok()
            {
                // SAFETY: winning the CAS makes us the unique owner of the
                // value; the node itself may still be read by concurrent
                // poppers, so its destruction is deferred.
                unsafe {
                    let value = ptr::read(&*node.value);
                    guard.defer_destroy(head);
                    return Some(value);
                }
            }
            backoff.spin();
        }
    }
}

impl<T> Default for TreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static> ConcurrentStack<T> for TreiberStack<T> {
    const NAME: &'static str = "treiber";

    fn push(&self, value: T) {
        let guard = epoch::pin();
        let node = Owned::new(Node {
            value: ManuallyDrop::new(value),
            next: Atomic::null(),
        })
        .into_shared(&guard);
        self.push_node(node, &guard);
    }

    fn pop(&self) -> Option<T> {
        let guard = epoch::pin();
        self.pop_node(&guard)
    }

    fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        self.head.load(Ordering::Acquire, &guard).is_null()
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` — no concurrent access, so no pinning needed.
        let guard = unsafe { Guard::unprotected() };
        let mut cur = self.head.load(Ordering::Relaxed, &guard);
        while !cur.is_null() {
            // SAFETY: unique access; every linked node is alive and owned
            // by the stack, and its value was never taken by a popper.
            unsafe {
                let mut boxed = cur.into_owned().into_box();
                ManuallyDrop::drop(&mut boxed.value);
                cur = boxed.next.load(Ordering::Relaxed, &guard);
            }
        }
    }
}

impl<T> fmt::Debug for TreiberStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Walking the list here would require pinning; report presence only.
        f.debug_struct("TreiberStack").finish_non_exhaustive()
    }
}

impl<T: Send + 'static> FromIterator<T> for TreiberStack<T> {
    /// Collects into a stack; the **last** item of the iterator ends up on
    /// top.
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let stack = TreiberStack::new();
        for v in iter {
            stack.push(v);
        }
        stack
    }
}

impl<T: Send + 'static> Extend<T> for TreiberStack<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
    use std::sync::Arc;

    #[test]
    fn push_pop_round_trip() {
        let s = TreiberStack::new();
        s.push(String::from("x"));
        assert_eq!(s.pop().as_deref(), Some("x"));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn values_dropped_exactly_once() {
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, AOrd::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let s = TreiberStack::new();
            for _ in 0..10 {
                s.push(D(Arc::clone(&drops)));
            }
            // Pop half; the rest die with the stack.
            for _ in 0..5 {
                drop(s.pop());
            }
            assert_eq!(drops.load(AOrd::SeqCst), 5);
        }
        assert_eq!(drops.load(AOrd::SeqCst), 10, "stack drop leaked values");
    }

    #[test]
    fn concurrent_push_pop_totals() {
        let s = Arc::new(TreiberStack::new());
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for i in 0..1000usize {
                        s.push(i);
                        if let Some(v) = s.pop() {
                            total.fetch_add(v, AOrd::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every push is matched by a pop within the same iteration or left
        // in the stack; drain whatever remains.
        while s.pop().is_some() {}
        assert!(s.is_empty());
    }
}

use cds_atomic::Ordering;
use std::fmt;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ptr;

use cds_core::ConcurrentStack;
use cds_reclaim::epoch::{Atomic, Guard, Owned, Shared};
use cds_reclaim::{Ebr, ReclaimGuard, Reclaimer};
use cds_sync::Backoff;

/// Stress-only planted ordering bug: demotes the publishing CAS in
/// `push_node` from `Release` to `Relaxed`. Under weak-memory exploration
/// a popper can then observe the new head without synchronizing with the
/// pusher, read the node's `next` field as its stale pre-link value
/// (null), and truncate the stack — the canonical "relaxed publish"
/// mistake, kept re-armable so the weak-memory explorer's known-answer
/// test proves it would be caught. Reads of the toggle go through `raw`
/// so the flag itself is never a modeled location.
///
/// Ideally this would be `#[cfg(test)]`, but the exploration suite lives
/// in the workspace integration tests, which cannot see a library's
/// `cfg(test)` items — `stress` + `#[doc(hidden)]` is the nearest gate.
#[cfg(feature = "stress")]
static RELAXED_PUBLISH: cds_atomic::raw::AtomicBool = cds_atomic::raw::AtomicBool::new(false);

/// See [`RELAXED_PUBLISH`]. Returns the previous setting.
#[cfg(feature = "stress")]
#[doc(hidden)]
pub fn set_relaxed_publish(on: bool) -> bool {
    RELAXED_PUBLISH.swap(on, cds_atomic::raw::Ordering::SeqCst)
}

/// The ordering that publishes a newly linked node: `Release`, unless the
/// planted demotion is armed.
#[inline]
fn publish_ordering() -> Ordering {
    #[cfg(feature = "stress")]
    if RELAXED_PUBLISH.load(cds_atomic::raw::Ordering::Relaxed) {
        return Ordering::Relaxed;
    }
    Ordering::Release
}

struct Node<T> {
    /// Taken out by the winning popper; dropped by `Drop for TreiberStack`
    /// for nodes still linked when the stack dies.
    value: ManuallyDrop<T>,
    next: Atomic<Node<T>>,
}

/// Hazard slot protecting the head node during `pop`.
const SLOT_HEAD: usize = 0;

/// The Treiber lock-free stack (R. K. Treiber, 1986).
///
/// The head pointer is the single point of synchronization: `push` links a
/// new node with one CAS, `pop` unlinks the head with one CAS. Both
/// operations are **lock-free** — some thread always completes in a bounded
/// number of steps — though an individual thread can starve under a
/// perfectly adversarial schedule.
///
/// The stack is generic over its reclamation backend `R`
/// ([`cds_reclaim::Reclaimer`], default [`Ebr`]) because a slow concurrent
/// popper may still be reading unlinked nodes. It follows the
/// **per-pointer** protection discipline: the only shared node an
/// operation dereferences is the head, which `pop` protects with
/// [`ReclaimGuard::protect`] before reading its `next` field (Michael's
/// hazard-pointer protocol; a vacuous load under epochs). `push` never
/// dereferences a shared node, so it needs no protection at all.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentStack;
/// use cds_stack::TreiberStack;
///
/// let s = TreiberStack::new();
/// s.push(10);
/// s.push(20);
/// assert_eq!(s.pop(), Some(20));
/// assert_eq!(s.pop(), Some(10));
/// assert_eq!(s.pop(), None);
/// ```
///
/// Choosing a backend (here hazard pointers, for bounded garbage):
///
/// ```
/// use cds_core::ConcurrentStack;
/// use cds_reclaim::Hazard;
/// use cds_stack::TreiberStack;
///
/// let s: TreiberStack<u64, Hazard> = TreiberStack::with_reclaimer();
/// s.push(1);
/// assert_eq!(s.pop(), Some(1));
/// ```
pub struct TreiberStack<T, R: Reclaimer = Ebr> {
    head: Atomic<Node<T>>,
    _reclaimer: PhantomData<R>,
}

// SAFETY: values of type `T` cross threads (pushed on one, popped on
// another), which is exactly `T: Send`. No `&T` is ever shared.
unsafe impl<T: Send, R: Reclaimer> Send for TreiberStack<T, R> {}
unsafe impl<T: Send, R: Reclaimer> Sync for TreiberStack<T, R> {}

impl<T> TreiberStack<T> {
    /// Creates an empty stack on the default ([`Ebr`]) backend.
    pub fn new() -> Self {
        Self::with_reclaimer()
    }
}

impl<T, R: Reclaimer> TreiberStack<T, R> {
    /// Creates an empty stack on the reclamation backend `R`.
    pub fn with_reclaimer() -> Self {
        TreiberStack {
            head: Atomic::null(),
            _reclaimer: PhantomData,
        }
    }

    fn push_node<G: ReclaimGuard>(&self, node: Shared<'_, Node<T>>, guard: &G) {
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            // No protection: `head` is linked, never dereferenced.
            let head = self.head.load(Ordering::Relaxed, guard);
            // SAFETY: `node` is ours until the CAS below publishes it.
            unsafe { node.deref() }.next.store(head, Ordering::Relaxed);
            // Release: publish the node's initialization with the link
            // (`publish_ordering` is `Release` unless the planted
            // demotion is armed under stress).
            let linked = self
                .head
                .compare_exchange(head, node, publish_ordering(), Ordering::Relaxed, guard)
                .is_ok();
            cds_obs::cas_outcome(linked);
            if linked {
                return;
            }
            cds_obs::count(cds_obs::Event::TreiberRetry);
            backoff.spin();
        }
    }

    /// Attempts a single push CAS; on contention returns the value back.
    /// Used by the elimination-backoff stack to interleave CAS attempts
    /// with elimination rounds.
    pub(crate) fn try_push(&self, value: T) -> Result<(), T> {
        let guard = R::enter();
        let node = Owned::new(Node {
            value: ManuallyDrop::new(value),
            next: Atomic::null(),
        })
        .into_shared(&guard);
        let head = self.head.load(Ordering::Relaxed, &guard);
        // SAFETY: `node` is unpublished.
        unsafe { node.deref() }.next.store(head, Ordering::Relaxed);
        let result =
            self.head
                .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed, &guard);
        cds_obs::cas_outcome(result.is_ok());
        match result {
            Ok(_) => Ok(()),
            Err(_) => {
                // SAFETY: the node was never published; we still own it.
                let mut boxed = unsafe { node.into_owned() }.into_box();
                // SAFETY: the value was never taken.
                Err(unsafe { ManuallyDrop::take(&mut boxed.value) })
            }
        }
    }

    /// Attempts a single pop CAS. `Ok(None)` means the stack was empty;
    /// `Err(())` means the CAS lost a race.
    pub(crate) fn try_pop(&self) -> Result<Option<T>, ()> {
        let guard = R::enter();
        // Protect-validate: on return the hazard covers `head` and the
        // stack still reached it, so the node cannot be freed under us.
        let head = guard.protect(SLOT_HEAD, &self.head, Ordering::Acquire);
        // SAFETY: protected above.
        let node = match unsafe { head.as_ref() } {
            None => return Ok(None),
            Some(n) => n,
        };
        let next = node.next.load(Ordering::Relaxed, &guard);
        let result =
            self.head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Relaxed, &guard);
        cds_obs::cas_outcome(result.is_ok());
        match result {
            Ok(_) => {
                // SAFETY: as in `pop_node`.
                unsafe {
                    let value = ptr::read(&*node.value);
                    guard.retire(head);
                    Ok(Some(value))
                }
            }
            Err(_) => Err(()),
        }
    }

    fn pop_node<G: ReclaimGuard>(&self, guard: &G) -> Option<T> {
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            // Protect-validate the head before dereferencing it. `next` is
            // written once before the node is published and never again,
            // so reading it through the protected node cannot be stale:
            // if the unlink CAS below succeeds, the node was still the
            // head (retired nodes are never re-linked, and the hazard
            // keeps its address from being reused).
            let head = guard.protect(SLOT_HEAD, &self.head, Ordering::Acquire);
            // SAFETY: protected above; it was allocated by `push`.
            let node = unsafe { head.as_ref() }?;
            let next = node.next.load(Ordering::Relaxed, guard);
            let unlinked = self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Relaxed, guard)
                .is_ok();
            cds_obs::cas_outcome(unlinked);
            if unlinked {
                // SAFETY: winning the CAS makes us the unique owner of the
                // value; the node itself may still be read by concurrent
                // poppers, so its destruction goes through the reclaimer.
                unsafe {
                    let value = ptr::read(&*node.value);
                    guard.retire(head);
                    return Some(value);
                }
            }
            cds_obs::count(cds_obs::Event::TreiberRetry);
            backoff.spin();
        }
    }
}

impl<T, R: Reclaimer> Default for TreiberStack<T, R> {
    fn default() -> Self {
        Self::with_reclaimer()
    }
}

impl<T: Send + 'static, R: Reclaimer> ConcurrentStack<T> for TreiberStack<T, R> {
    const NAME: &'static str = "treiber";

    fn push(&self, value: T) {
        let guard = R::enter();
        let node = Owned::new(Node {
            value: ManuallyDrop::new(value),
            next: Atomic::null(),
        })
        .into_shared(&guard);
        self.push_node(node, &guard);
    }

    fn pop(&self) -> Option<T> {
        let guard = R::enter();
        self.pop_node(&guard)
    }

    fn is_empty(&self) -> bool {
        // A null check never dereferences, so a unit load witness is
        // enough on every backend.
        self.head.load(Ordering::Acquire, &()).is_null()
    }
}

impl<T, R: Reclaimer> Drop for TreiberStack<T, R> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` — no concurrent access, so no protection is
        // needed on any backend; the unprotected guard is a pure load
        // witness. Nodes already retired through `R` are unreachable from
        // `head` and are freed by the backend, not here.
        let guard = unsafe { Guard::unprotected() };
        let mut cur = self.head.load(Ordering::Relaxed, &guard);
        while !cur.is_null() {
            // SAFETY: unique access; every linked node is alive and owned
            // by the stack, and its value was never taken by a popper.
            unsafe {
                let mut boxed = cur.into_owned().into_box();
                ManuallyDrop::drop(&mut boxed.value);
                cur = boxed.next.load(Ordering::Relaxed, &guard);
            }
        }
    }
}

impl<T, R: Reclaimer> fmt::Debug for TreiberStack<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Walking the list here would require pinning; report presence only.
        f.debug_struct("TreiberStack")
            .field("reclaimer", &R::NAME)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> FromIterator<T> for TreiberStack<T> {
    /// Collects into a stack; the **last** item of the iterator ends up on
    /// top.
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let stack = TreiberStack::new();
        for v in iter {
            stack.push(v);
        }
        stack
    }
}

impl<T: Send + 'static, R: Reclaimer> Extend<T> for TreiberStack<T, R> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_atomic::{AtomicUsize, Ordering as AOrd};
    use cds_reclaim::{DebugReclaim, Hazard, Leak};
    use std::sync::Arc;

    #[test]
    fn push_pop_round_trip() {
        let s = TreiberStack::new();
        s.push(String::from("x"));
        assert_eq!(s.pop().as_deref(), Some("x"));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn round_trip_on_every_backend() {
        fn run<R: Reclaimer>() {
            let s: TreiberStack<u64, R> = TreiberStack::with_reclaimer();
            for i in 0..100 {
                s.push(i);
            }
            for i in (0..100).rev() {
                assert_eq!(s.pop(), Some(i), "{} backend", R::NAME);
            }
            assert_eq!(s.pop(), None);
            R::collect();
        }
        run::<Ebr>();
        run::<Hazard>();
        run::<Leak>();
        run::<DebugReclaim>();
    }

    #[test]
    fn values_dropped_exactly_once() {
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, AOrd::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let s = TreiberStack::new();
            for _ in 0..10 {
                s.push(D(Arc::clone(&drops)));
            }
            // Pop half; the rest die with the stack.
            for _ in 0..5 {
                drop(s.pop());
            }
            assert_eq!(drops.load(AOrd::SeqCst), 5);
        }
        assert_eq!(drops.load(AOrd::SeqCst), 10, "stack drop leaked values");
    }

    #[test]
    fn concurrent_push_pop_totals() {
        let s = Arc::new(TreiberStack::new());
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for i in 0..1000usize {
                        s.push(i);
                        if let Some(v) = s.pop() {
                            total.fetch_add(v, AOrd::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every push is matched by a pop within the same iteration or left
        // in the stack; drain whatever remains.
        while s.pop().is_some() {}
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_hazard_backend_churn() {
        let s: Arc<TreiberStack<usize, Hazard>> = Arc::new(TreiberStack::with_reclaimer());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..500usize {
                        s.push(i);
                        s.pop();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        while s.pop().is_some() {}
        assert!(s.is_empty());
        Hazard::collect();
    }
}

//! Concurrent stacks.
//!
//! Five implementations of [`cds_core::ConcurrentStack`] spanning the
//! design space the literature covers:
//!
//! * [`CoarseStack`] — a `Vec` behind a mutex; the migration-friendly
//!   baseline every other implementation is measured against.
//! * [`TreiberStack`] — the classic lock-free stack (Treiber, 1986): a
//!   single CAS on the head pointer per operation, generic over the
//!   reclamation backend (`TreiberStack<T, R: cds_reclaim::Reclaimer>`,
//!   default epoch-based). Instantiate with [`cds_reclaim::Hazard`],
//!   [`cds_reclaim::Leak`], or [`cds_reclaim::DebugReclaim`] to compare
//!   reclamation schemes (experiment E10) or to check retire discipline.
//! * [`FcStack`] — a flat-combining stack (Hendler et al., 2010): one
//!   combiner thread services everyone's published operations per lock
//!   acquisition.
//! * [`EliminationBackoffStack`] — Hendler, Shavit & Yerushalmi's
//!   elimination-backoff stack: contending pushes and pops *cancel each
//!   other out* in a side-channel [`EliminationArray`] instead of fighting
//!   over the head pointer, turning the stack's sequential bottleneck into
//!   parallel exchanges under high contention.
//!
//! # Example
//!
//! ```
//! use cds_core::ConcurrentStack;
//! use cds_stack::TreiberStack;
//! use std::sync::Arc;
//!
//! let stack = Arc::new(TreiberStack::new());
//! let s2 = Arc::clone(&stack);
//! let t = std::thread::spawn(move || s2.push(1));
//! t.join().unwrap();
//! assert_eq!(stack.pop(), Some(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coarse;
mod elimination;
mod fc;
mod treiber;

pub use coarse::CoarseStack;
pub use elimination::{EliminationArray, EliminationBackoffStack};
pub use fc::FcStack;
#[cfg(feature = "stress")]
pub use treiber::set_relaxed_publish;
pub use treiber::TreiberStack;

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentStack;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn lifo_when_sequential<S: ConcurrentStack<u32> + Default>() {
        let s = S::default();
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
        for i in 0..100 {
            s.push(i);
        }
        assert!(!s.is_empty());
        for i in (0..100).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert!(s.is_empty());
    }

    fn no_loss_no_duplication<S: ConcurrentStack<u64> + Default + 'static>() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 2_000;
        let s = Arc::new(S::default());
        let producers: Vec<_> = (0..THREADS)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        s.push(t * PER_THREAD + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..THREADS)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..PER_THREAD / 2 {
                        if let Some(v) = s.pop() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut seen: HashSet<u64> = HashSet::new();
        for c in consumers {
            for v in c.join().unwrap() {
                assert!(seen.insert(v), "duplicate pop of {v}");
            }
        }
        while let Some(v) = s.pop() {
            assert!(seen.insert(v), "duplicate pop of {v}");
        }
        assert_eq!(seen.len() as u64, THREADS * PER_THREAD, "lost elements");
    }

    #[test]
    fn all_implementations_are_lifo() {
        lifo_when_sequential::<CoarseStack<u32>>();
        lifo_when_sequential::<TreiberStack<u32>>();
        lifo_when_sequential::<TreiberStack<u32, cds_reclaim::Hazard>>();
        lifo_when_sequential::<TreiberStack<u32, cds_reclaim::Leak>>();
        lifo_when_sequential::<TreiberStack<u32, cds_reclaim::DebugReclaim>>();
        lifo_when_sequential::<EliminationBackoffStack<u32>>();
        lifo_when_sequential::<FcStack<u32>>();
    }

    #[test]
    fn no_element_lost_or_duplicated_under_contention() {
        no_loss_no_duplication::<CoarseStack<u64>>();
        no_loss_no_duplication::<TreiberStack<u64>>();
        no_loss_no_duplication::<TreiberStack<u64, cds_reclaim::Hazard>>();
        no_loss_no_duplication::<TreiberStack<u64, cds_reclaim::DebugReclaim>>();
        no_loss_no_duplication::<EliminationBackoffStack<u64>>();
        no_loss_no_duplication::<FcStack<u64>>();
    }
}

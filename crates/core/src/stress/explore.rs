//! Bounded-exhaustive systematic exploration ("model-checking mode") for
//! the stress scheduler.
//!
//! Where the PCT scheduler ([module docs](super)) *samples* schedules from
//! a seeded distribution, this module *enumerates* them: it serializes the
//! worker threads so that exactly one runs between consecutive yield
//! points, records every scheduling decision, and drives a depth-first
//! search over all such decision sequences. For the small operation
//! windows lincheck specs use (2–3 threads × 3–5 ops), the search
//! typically finishes in well under a second and the verdict is a proof
//! over *all* inequivalent interleavings at yield-point granularity — not
//! a lucky sample.
//!
//! # Pruning: sleep sets over tagged independence
//!
//! Exhaustive enumeration is exponential in schedule length, so the
//! explorer prunes with *sleep sets* (Godefroid), the classic
//! partial-order-reduction device: after fully exploring child `t` of a
//! node, `t` is put to sleep for the node's remaining children and stays
//! asleep down a branch until a step *dependent* on `t` executes. A branch
//! whose every enabled thread is asleep is redundant — some already
//! explored branch reaches the same state — and is abandoned early.
//!
//! The independence relation comes from the [`YieldTag`]s instrumented
//! code attaches to its yield points: two steps commute iff both are
//! tagged, with different addresses or neither writing. Untagged steps
//! ([`YieldTag::None`]) are conservatively dependent on everything, so a
//! structure with no tags at all degrades to plain exhaustive DFS —
//! pruning is an optimization, never a soundness assumption. This is
//! deliberately simpler than vector-clock DPOR (Flanagan & Godefroid):
//! sleep sets alone never skip a Mazurkiewicz trace, they only avoid
//! *some* equivalent reorderings, which is the right trade for windows
//! this small.
//!
//! Checking one representative schedule per trace is sound for
//! linearizability because the histories the harness checks are built
//! from invocation/response events that always follow untagged (hence
//! never-commuted) driver yields: equivalent schedules produce histories
//! with identical precedence constraints.
//!
//! # Blocked threads and livelock bounds
//!
//! A thread pausing with [`YieldTag::Blocked`] declares its next step a
//! pure recheck: re-running it before any other thread moves would change
//! nothing and land back at the same yield point. The explorer therefore
//! *disables* such a thread until any other thread completes a step —
//! sound, because the skipped stutter steps do not alter shared state and
//! schedules containing them are equivalent to ones without. Two bounds
//! make every search terminate even on livelocking or deadlocking
//! targets: a per-execution step budget ([`ExploreBounds::max_steps`])
//! and a cap on consecutive forced wakes of all-blocked thread sets; both
//! abort the execution as [`Outcome::Stuck`].
//!
//! # Mechanics
//!
//! [`Explorer::begin`] installs the explore scheduler (sharing the
//! process-wide run lock, [`register`](super::register), and yield-point
//! plumbing with the PCT mode). Worker threads pause at every yield
//! point; when all are paused or finished, the deepest paused thread
//! permitted by the current DFS *plan* is granted one step. Aborts
//! (redundant branch, budget exhausted) unwind the workers with a
//! dedicated panic payload ([`ExploreAbort`]) that the harness catches
//! and a process-wide panic hook mutes. [`Explorer::finish`] harvests the
//! decision log, grows the DFS tree, and [`Explorer::advance`] moves to
//! the next unexplored branch. The decision sequence of a failing
//! execution — just the chosen thread per step — is a *schedule* that
//! [`begin_replay`] re-executes verbatim, which is what the lincheck
//! trace format v2 stores.

use cds_atomic::raw::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, Once};

use super::weak::WeakState;
use super::{YieldTag, ACTIVE, MAX_THREADS, RUN_LOCK};

/// `GRANT` value meaning "no thread may step".
const IDLE: usize = usize::MAX;
/// `GRANT` value meaning "execution aborted; unwind at the next yield".
const ABORTED: usize = usize::MAX - 1;
/// Consecutive forced wakes of an all-blocked thread set before the
/// execution is declared stuck (each requires a full quiescent spin of
/// pure rechecks, so genuine progress resets the counter quickly).
const FORCED_WAKE_BOUND: u32 = 128;

/// Search bounds for one exploration.
#[derive(Debug, Clone)]
pub struct ExploreBounds {
    /// Maximum scheduling decisions per execution before it is declared
    /// [`Outcome::Stuck`] (livelock/deadlock backstop). A window of `t`
    /// threads × `k` ops needs roughly `t·k` times the per-op yield
    /// count, so the default is generous for lincheck-sized windows.
    pub max_steps: u64,
    /// Enables the weak-memory execution layer: every instrumented
    /// atomic operation becomes a tagged step, and loads branch over
    /// the C11-permitted read-from candidates (see
    /// [`super::weak`](super::weak) module docs). Only meaningful for
    /// targets whose synchronization goes entirely through
    /// `cds-atomic`; lock-based structures synchronize through the
    /// `parking_lot` shim, which the model cannot see.
    pub weak_memory: bool,
    /// With `weak_memory`: a load may read one of at most this many of
    /// the newest stores to its location (the staleness search bound).
    pub weak_window: usize,
    /// With `weak_memory`: loom-style publication/race checking of
    /// non-atomic node payloads (`cds-reclaim` region hooks). A
    /// detected race panics the worker deterministically instead of
    /// producing a linearizability verdict.
    pub detect_races: bool,
}

impl Default for ExploreBounds {
    fn default() -> Self {
        ExploreBounds {
            max_steps: 4096,
            weak_memory: false,
            weak_window: 4,
            detect_races: false,
        }
    }
}

/// One recorded scheduling decision of an execution.
#[derive(Debug, Clone, Copy)]
struct Decision {
    /// Thread granted the step.
    chosen: usize,
    /// Mask of threads that could have been chosen (paused, not
    /// disabled-blocked).
    enabled: u64,
    /// Sleep set inherited at this decision point.
    sleep: u64,
}

/// One forced step of a DFS plan (the path from the root to the branch
/// being explored).
#[derive(Debug, Clone, Copy)]
struct PlanStep {
    chosen: usize,
    /// Siblings already fully explored at this node; they join the sleep
    /// set for this branch per the sleep-set discipline.
    extra_sleep: u64,
}

/// One entry of an execution's interleaved decision log: scheduling
/// choices and (in weak-memory mode) read-from choices, in program
/// order. The DFS tree is grown from this log, so value branching
/// nests correctly inside schedule branching.
#[derive(Debug, Clone, Copy)]
enum LogEntry {
    Thread(Decision),
    /// A load with more than one read-from candidate chose
    /// `chosen` (offset into the candidate suffix; `count - 1` is the
    /// latest store). Single-candidate loads are not logged.
    Read {
        chosen: usize,
    },
}

/// Why an execution stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbortKind {
    /// Every enabled thread was asleep: an equivalent branch was already
    /// explored.
    Redundant,
    /// Step budget or forced-wake bound exhausted.
    Stuck,
    /// A forced plan step named a thread that is not enabled — the
    /// target behaved differently than when the plan was recorded.
    Diverged,
}

/// Result of one explored execution, as classified by
/// [`Explorer::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The execution ran to completion; its history is meaningful and
    /// counts as one explored schedule.
    Complete,
    /// Pruned by the sleep-set discipline; equivalent to an already
    /// explored schedule. The (partial) history must be discarded.
    Redundant,
    /// Aborted by the step budget or the forced-wake bound — the target
    /// livelocked or deadlocked under this schedule.
    Stuck,
    /// A replayed plan diverged from the recorded behaviour; the target
    /// is nondeterministic beyond schedule choice (or the trace is stale).
    Diverged,
}

/// Panic payload used to unwind worker threads out of an aborted
/// execution. The harness catches it with `catch_unwind`; the panic hook
/// installed by [`Explorer::begin`] keeps it off stderr.
#[derive(Debug)]
pub struct ExploreAbort;

fn abort_panic() -> ! {
    std::panic::panic_any(ExploreAbort);
}

/// Whether the explore scheduler (not PCT) owns the current stress round.
static EXPLORING: AtomicBool = AtomicBool::new(false);
/// Slot currently granted a step, or [`IDLE`] / [`ABORTED`]. Paused
/// workers spin on this instead of the state mutex.
static GRANT: AtomicUsize = AtomicUsize::new(IDLE);
static EXP: Mutex<Option<ExpState>> = Mutex::new(None);
static HOOK: Once = Once::new();

fn exp_lock() -> MutexGuard<'static, Option<ExpState>> {
    EXP.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Installs a forwarding panic hook that mutes [`ExploreAbort`] unwinds
/// (they are control flow, not failures) and defers everything else to
/// the previously installed hook.
fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ExploreAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Live state of one explored execution.
struct ExpState {
    threads: usize,
    plan: Vec<PlanStep>,
    /// Forced read-from choices, consumed in order by loads with more
    /// than one candidate. Deterministic execution keeps the two plan
    /// queues aligned without recording their interleaving.
    plan_reads: Vec<usize>,
    rcursor: usize,
    /// Replay mode: never prune as redundant, ignore sleep sets beyond
    /// the plan.
    replay_only: bool,
    max_steps: u64,
    /// Bitmasks over worker slots.
    registered: u64,
    paused: u64,
    finished: u64,
    /// Blocked threads that have not seen another thread step since
    /// pausing; at most the most recent pauser, by construction.
    disabled: u64,
    running: Option<usize>,
    tags: [YieldTag; MAX_THREADS],
    sleep: u64,
    decisions: Vec<Decision>,
    /// Interleaved log of thread and read-from decisions (see
    /// [`LogEntry`]); `decisions` is its thread-only projection, kept
    /// separately because the thread-plan cursor indexes it.
    log: Vec<LogEntry>,
    /// Weak-memory machine, present iff
    /// [`ExploreBounds::weak_memory`].
    weak: Option<WeakState>,
    steps: u64,
    forced_wakes: u32,
    abort: Option<AbortKind>,
}

/// Two steps commute iff both are tagged and they cannot conflict:
/// different locations, or the same location with neither writing.
/// [`YieldTag::Blocked`] counts as a read of its location.
fn independent(a: YieldTag, b: YieldTag) -> bool {
    fn access(t: YieldTag) -> Option<(usize, bool)> {
        match t {
            YieldTag::None => None,
            YieldTag::Read(a) | YieldTag::Blocked(a) => Some((a, false)),
            YieldTag::Write(a) => Some((a, true)),
        }
    }
    match (access(a), access(b)) {
        (Some((aa, aw)), Some((ba, bw))) => aa != ba || (!aw && !bw),
        _ => false,
    }
}

impl ExpState {
    fn new(
        threads: usize,
        plan: Vec<PlanStep>,
        plan_reads: Vec<usize>,
        replay_only: bool,
        bounds: &ExploreBounds,
    ) -> Self {
        ExpState {
            threads,
            plan,
            plan_reads,
            rcursor: 0,
            replay_only,
            max_steps: bounds.max_steps,
            registered: 0,
            paused: 0,
            finished: 0,
            disabled: 0,
            running: None,
            tags: [YieldTag::None; MAX_THREADS],
            sleep: 0,
            decisions: Vec::new(),
            log: Vec::new(),
            weak: bounds
                .weak_memory
                .then(|| WeakState::new(threads, bounds.weak_window, bounds.detect_races)),
            steps: 0,
            forced_wakes: 0,
            abort: None,
        }
    }

    fn full_mask(&self) -> u64 {
        if self.threads == 64 {
            u64::MAX
        } else {
            (1u64 << self.threads) - 1
        }
    }

    fn trigger_abort(&mut self, kind: AbortKind) {
        self.abort = Some(kind);
        GRANT.store(ABORTED, Ordering::Release);
    }

    /// Grants one thread a step if the execution is quiescent: every
    /// expected worker registered and now paused or finished, none
    /// running. Called after every pause and finish.
    fn maybe_dispatch(&mut self) {
        if self.abort.is_some() || self.running.is_some() {
            return;
        }
        let full = self.full_mask();
        if self.registered != full {
            return;
        }
        if (self.paused | self.finished) != full || self.finished == full {
            return;
        }
        let mut enabled = self.paused & !self.disabled;
        if enabled == 0 {
            // Everyone left is blocked with nothing moved since: force a
            // recheck round, bounded so a real deadlock still terminates.
            self.forced_wakes += 1;
            if self.forced_wakes > FORCED_WAKE_BOUND {
                return self.trigger_abort(AbortKind::Stuck);
            }
            self.disabled = 0;
            enabled = self.paused;
        }
        let idx = self.decisions.len();
        let (chosen, extra_sleep) = if idx < self.plan.len() {
            let p = self.plan[idx];
            if enabled & (1u64 << p.chosen) == 0 {
                return self.trigger_abort(AbortKind::Diverged);
            }
            (p.chosen, p.extra_sleep)
        } else {
            let cands = enabled & !self.sleep;
            if cands == 0 {
                if self.replay_only {
                    (enabled.trailing_zeros() as usize, 0)
                } else {
                    return self.trigger_abort(AbortKind::Redundant);
                }
            } else {
                (cands.trailing_zeros() as usize, 0)
            }
        };
        let decision = Decision {
            chosen,
            enabled,
            sleep: self.sleep,
        };
        self.decisions.push(decision);
        self.log.push(LogEntry::Thread(decision));
        // Sleep-set propagation: already-explored siblings (and inherited
        // sleepers) stay asleep down this branch only while independent
        // of the step just granted.
        let inherited = (self.sleep | extra_sleep) & self.paused & !(1u64 << chosen);
        let mut new_sleep = 0u64;
        let mut bits = inherited;
        while bits != 0 {
            let u = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if independent(self.tags[u], self.tags[chosen]) {
                new_sleep |= 1u64 << u;
            }
        }
        self.sleep = new_sleep;
        self.steps += 1;
        if self.steps > self.max_steps {
            return self.trigger_abort(AbortKind::Stuck);
        }
        self.paused &= !(1u64 << chosen);
        self.running = Some(chosen);
        GRANT.store(chosen, Ordering::Release);
    }

    /// Resolves one read-from choice: consumes the read plan, else
    /// defaults to the latest store (so the first execution of every
    /// branch behaves sequentially consistently) and logs the branch
    /// point for the DFS. `None` means the plan diverged and the abort
    /// was triggered.
    fn choose_read(&mut self, count: usize) -> Option<usize> {
        if count <= 1 {
            return Some(0);
        }
        let chosen = if self.rcursor < self.plan_reads.len() {
            let c = self.plan_reads[self.rcursor];
            self.rcursor += 1;
            if c >= count {
                self.trigger_abort(AbortKind::Diverged);
                return None;
            }
            c
        } else {
            count - 1
        };
        self.log.push(LogEntry::Read { chosen });
        Some(chosen)
    }

    /// Weak-memory load: computes the candidate set, branches, and
    /// returns the observed value. `None` means the execution aborted.
    fn weak_load(
        &mut self,
        slot: usize,
        addr: usize,
        order: Ordering,
        current: u64,
    ) -> Option<u64> {
        let weak = self.weak.as_mut().expect("weak_load without weak state");
        let count = weak.load_candidates(slot, addr, order, current);
        let chosen = self.choose_read(count)?;
        let weak = self.weak.as_mut().expect("weak state vanished");
        Some(weak.load_commit(slot, addr, order, count, chosen))
    }
}

/// Whether the explore scheduler owns the active stress round.
#[inline]
pub(super) fn mode_active() -> bool {
    EXPLORING.load(Ordering::Acquire)
}

/// Registers `index` with the explore round, if one is installed.
/// Returns `false` when no explore round is active (PCT registration
/// should proceed instead).
pub(super) fn register(index: usize) -> bool {
    if !mode_active() {
        return false;
    }
    let mut guard = exp_lock();
    let Some(st) = guard.as_mut() else {
        return false;
    };
    assert!(
        index < st.threads,
        "worker index {index} out of range for explore round of {} threads",
        st.threads
    );
    let bit = 1u64 << index;
    assert!(
        st.registered & bit == 0,
        "worker index {index} registered twice"
    );
    st.registered |= bit;
    true
}

/// Removes a finished worker from the explore round. Returns `true` when
/// the explore round handled the deregistration. Must never panic: it
/// runs from `Drop` during abort unwinds.
pub(super) fn deregister(slot: usize) -> bool {
    if !mode_active() {
        return false;
    }
    let mut guard = exp_lock();
    let Some(st) = guard.as_mut() else {
        return true;
    };
    let bit = 1u64 << slot;
    if st.registered & bit == 0 {
        return true;
    }
    if st.running == Some(slot) {
        st.running = None;
        st.steps += 1;
        if GRANT.load(Ordering::Acquire) == slot {
            GRANT.store(IDLE, Ordering::Release);
        }
    }
    st.paused &= !bit;
    st.finished |= bit;
    st.sleep &= !bit;
    st.disabled = 0;
    st.forced_wakes = 0;
    st.maybe_dispatch();
    true
}

/// The explore-mode yield point: pause, hand the scheduler the access
/// tag for the next step, and wait to be granted that step. Panics with
/// [`ExploreAbort`] when the execution is aborted.
pub(super) fn on_yield(slot: usize, tag: YieldTag) {
    {
        let mut guard = exp_lock();
        let Some(st) = guard.as_mut() else { return };
        if st.abort.is_some() {
            drop(guard);
            abort_panic();
        }
        let bit = 1u64 << slot;
        if st.registered & bit == 0 || st.finished & bit != 0 {
            return;
        }
        if st.running == Some(slot) {
            st.running = None;
            if GRANT.load(Ordering::Acquire) == slot {
                GRANT.store(IDLE, Ordering::Release);
            }
        }
        st.paused |= bit;
        st.tags[slot] = tag;
        // This thread just completed a step (or arrived), so every other
        // blocked thread's "nothing has moved" premise is void; its own
        // sticks only if this pause itself declares a pure recheck.
        if matches!(tag, YieldTag::Blocked(_)) {
            st.disabled = bit;
        } else {
            st.disabled = 0;
            st.forced_wakes = 0;
        }
        st.maybe_dispatch();
        if st.abort.is_some() {
            drop(guard);
            abort_panic();
        }
    }
    loop {
        match GRANT.load(Ordering::Acquire) {
            g if g == slot => return,
            ABORTED => abort_panic(),
            _ => std::thread::yield_now(),
        }
    }
}

/// Fast-path gate for the atomic hooks: true only while an installed
/// explore round carries a weak-memory machine. Keeps instrumented
/// atomics inert (no extra yields, no value rewrites) for PCT rounds
/// and for non-weak explore windows, so their schedules and baseline
/// counts are untouched by the instrumentation.
static WEAK_ON: AtomicBool = AtomicBool::new(false);

/// Hook table handed to `cds-atomic` (once per process; the gate above
/// keeps it inert between weak windows).
static ATOMIC_HOOKS: cds_atomic::stress::AtomicHooks = cds_atomic::stress::AtomicHooks {
    pre: atomic_pre,
    load: atomic_load,
    store: atomic_store,
    rmw: atomic_rmw,
    fence: atomic_fence,
    publish: atomic_publish,
    check: atomic_check,
};

/// The registered slot of the calling thread, when a weak window is
/// active. `None` short-circuits every hook for unregistered threads
/// (the driver doing setup/teardown runs at real-memory semantics,
/// which is correct: real memory always holds the latest value).
#[inline]
fn weak_slot() -> Option<usize> {
    if !WEAK_ON.load(Ordering::Acquire) {
        return None;
    }
    super::current_slot()
}

fn atomic_pre(addr: usize, is_write: bool, _order: cds_atomic::Ordering) {
    if weak_slot().is_none() {
        return;
    }
    let tag = if addr == 0 {
        // Fences have no location; conservatively dependent on all.
        YieldTag::None
    } else if is_write {
        YieldTag::Write(addr)
    } else {
        YieldTag::Read(addr)
    };
    super::yield_point_tagged(tag);
}

fn atomic_load(addr: usize, order: cds_atomic::Ordering, current: u64) -> u64 {
    let Some(slot) = weak_slot() else {
        return current;
    };
    let mut guard = exp_lock();
    let Some(st) = guard.as_mut() else {
        return current;
    };
    let bit = 1u64 << slot;
    if st.weak.is_none() || st.registered & bit == 0 || st.finished & bit != 0 {
        return current;
    }
    match st.weak_load(slot, addr, order, current) {
        Some(v) => v,
        None => {
            drop(guard);
            abort_panic()
        }
    }
}

fn atomic_store(addr: usize, order: cds_atomic::Ordering, prev: u64, new: u64) {
    let Some(slot) = weak_slot() else { return };
    let mut guard = exp_lock();
    let Some(st) = guard.as_mut() else { return };
    let bit = 1u64 << slot;
    if st.registered & bit == 0 || st.finished & bit != 0 {
        return;
    }
    if let Some(w) = st.weak.as_mut() {
        w.store(slot, addr, order, prev, new);
    }
}

fn atomic_rmw(addr: usize, order: cds_atomic::Ordering, prev: u64, new: Option<u64>) {
    let Some(slot) = weak_slot() else { return };
    let mut guard = exp_lock();
    let Some(st) = guard.as_mut() else { return };
    let bit = 1u64 << slot;
    if st.registered & bit == 0 || st.finished & bit != 0 {
        return;
    }
    if let Some(w) = st.weak.as_mut() {
        w.rmw(slot, addr, order, prev, new);
    }
}

fn atomic_fence(order: cds_atomic::Ordering) {
    let Some(slot) = weak_slot() else { return };
    let mut guard = exp_lock();
    let Some(st) = guard.as_mut() else { return };
    let bit = 1u64 << slot;
    if st.registered & bit == 0 || st.finished & bit != 0 {
        return;
    }
    if let Some(w) = st.weak.as_mut() {
        w.fence(slot, order);
    }
}

fn atomic_publish(base: usize, len: usize) {
    if !WEAK_ON.load(Ordering::Acquire) {
        return;
    }
    let slot = super::current_slot();
    let mut guard = exp_lock();
    let Some(st) = guard.as_mut() else { return };
    let writer =
        slot.filter(|&s| st.registered & (1u64 << s) != 0 && st.finished & (1u64 << s) == 0);
    if let Some(w) = st.weak.as_mut() {
        w.publish(writer, base, len);
    }
}

fn atomic_check(addr: usize, len: usize) {
    let Some(slot) = weak_slot() else { return };
    let mut guard = exp_lock();
    let Some(st) = guard.as_mut() else { return };
    let bit = 1u64 << slot;
    if st.registered & bit == 0 || st.finished & bit != 0 {
        return;
    }
    let Some(w) = st.weak.as_ref() else { return };
    if let Err(race) = w.check(slot, addr, len) {
        drop(guard);
        // Deterministic message (no raw addresses, which ASLR would
        // perturb): replays of the same trace panic byte-identically.
        panic!(
            "weak-memory race: thread {} dereferenced a region published by thread {} \
             (event {}) without synchronizing with its release",
            race.accessor, race.writer, race.stamp
        );
    }
}

/// Real-time completion edge for weak windows: the harness calls this
/// (via [`super::op_boundary`]) on the worker thread between its
/// consecutive operations. No-op outside weak windows.
pub(super) fn op_boundary(slot: usize) {
    if !WEAK_ON.load(Ordering::Acquire) {
        return;
    }
    let mut guard = exp_lock();
    let Some(st) = guard.as_mut() else { return };
    let bit = 1u64 << slot;
    if st.registered & bit == 0 {
        return;
    }
    if let Some(w) = st.weak.as_mut() {
        w.op_boundary(slot);
    }
}

/// An installed explore round; uninstalls on drop. Returned by
/// [`Explorer::begin`] / [`begin_replay`] and consumed by
/// [`Explorer::finish`] / [`finish_replay`] after the workers joined.
pub struct ExploreRun {
    _exclusive: MutexGuard<'static, ()>,
}

impl std::fmt::Debug for ExploreRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExploreRun").finish_non_exhaustive()
    }
}

impl Drop for ExploreRun {
    fn drop(&mut self) {
        WEAK_ON.store(false, Ordering::Release);
        ACTIVE.store(false, Ordering::Release);
        EXPLORING.store(false, Ordering::Release);
        *exp_lock() = None;
        GRANT.store(IDLE, Ordering::Release);
    }
}

fn install_run(state: ExpState) -> ExploreRun {
    install_quiet_hook();
    let exclusive = RUN_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
    // Route `cds-sync` backoff yields into the tagged entry point, same
    // as a PCT install — and answer the `cds_sync::Parker`'s "is a
    // schedule driving?" question, so parked threads spin through
    // explorable yield points instead of a native condvar the driver
    // could never preempt.
    cds_sync::stress::set_yield_hook(super::yield_point_tagged);
    cds_sync::stress::set_active_hook(super::is_active);
    // Same inversion one layer lower: `cds-atomic` reaches the weak
    // machine through its hook table. Registered once; the WEAK_ON
    // gate keeps the hooks inert outside weak windows.
    cds_atomic::stress::set_hooks(&ATOMIC_HOOKS);
    WEAK_ON.store(state.weak.is_some(), Ordering::Release);
    *exp_lock() = Some(state);
    GRANT.store(IDLE, Ordering::Release);
    EXPLORING.store(true, Ordering::Release);
    ACTIVE.store(true, Ordering::Release);
    ExploreRun {
        _exclusive: exclusive,
    }
}

fn harvest(run: ExploreRun) -> ExpState {
    let state = exp_lock().take().expect("explore state missing at finish");
    drop(run);
    state
}

/// A node of the DFS tree, one per decision along the current path:
/// either a scheduling choice or (weak mode) a read-from choice.
#[derive(Debug, Clone, Copy)]
enum Node {
    Thread {
        /// Threads choosable at this node when it was first reached.
        enabled: u64,
        /// Sleep set inherited at this node.
        sleep: u64,
        /// Child currently (or last) being explored.
        chosen: usize,
        /// Children explored so far, including `chosen`.
        done: u64,
    },
    Read {
        /// Current read-from choice. Children are explored from the
        /// latest store (`count - 1`, the SC-like default the first
        /// execution took) down to the stalest (`0`), so the choice
        /// doubles as the remaining-work counter.
        chosen: usize,
    },
}

/// Depth-first enumerator of thread schedules with sleep-set pruning.
///
/// Drive it in a loop: [`begin`](Explorer::begin), run the worker window
/// to completion, [`finish`](Explorer::finish), inspect the outcome, and
/// [`advance`](Explorer::advance) until it returns `false` (search space
/// exhausted). See `cds_lincheck::explore` for the packaged harness.
pub struct Explorer {
    threads: usize,
    bounds: ExploreBounds,
    stack: Vec<Node>,
    plan: Vec<PlanStep>,
    plan_reads: Vec<usize>,
    /// Interleaved decision log of the most recent execution.
    last: Vec<LogEntry>,
    /// Total planned decisions (thread + read) of the current branch.
    plan_len: usize,
    schedules: u64,
    redundant: u64,
    stuck: u64,
    executions: u64,
    exhausted: bool,
}

impl std::fmt::Debug for Explorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Explorer")
            .field("threads", &self.threads)
            .field("depth", &self.stack.len())
            .field("schedules", &self.schedules)
            .field("redundant", &self.redundant)
            .field("stuck", &self.stuck)
            .field("executions", &self.executions)
            .field("exhausted", &self.exhausted)
            .finish()
    }
}

impl Explorer {
    /// Creates an explorer for windows of `threads` worker threads
    /// (registered as slots `0..threads`).
    pub fn new(threads: usize, bounds: ExploreBounds) -> Self {
        assert!(
            (1..=MAX_THREADS).contains(&threads),
            "explore thread count {threads} out of range"
        );
        Explorer {
            threads,
            bounds,
            stack: Vec::new(),
            plan: Vec::new(),
            plan_reads: Vec::new(),
            last: Vec::new(),
            plan_len: 0,
            schedules: 0,
            redundant: 0,
            stuck: 0,
            executions: 0,
            exhausted: false,
        }
    }

    /// Installs the explore scheduler for the next execution of the
    /// window. Workers must [`register`](super::register) slots
    /// `0..threads` and hit yield points as usual.
    pub fn begin(&mut self) -> ExploreRun {
        assert!(!self.exhausted, "explorer already exhausted");
        self.plan_len = self.plan.len() + self.plan_reads.len();
        install_run(ExpState::new(
            self.threads,
            self.plan.clone(),
            self.plan_reads.clone(),
            false,
            &self.bounds,
        ))
    }

    /// Harvests the execution started by the matching
    /// [`begin`](Explorer::begin) (after all workers joined), growing the
    /// DFS tree with the fresh decisions.
    pub fn finish(&mut self, run: ExploreRun) -> Outcome {
        let st = harvest(run);
        self.executions += 1;
        for e in &st.log[self.plan_len.min(st.log.len())..] {
            self.stack.push(match *e {
                LogEntry::Thread(d) => Node::Thread {
                    enabled: d.enabled,
                    sleep: d.sleep,
                    chosen: d.chosen,
                    done: 1u64 << d.chosen,
                },
                LogEntry::Read { chosen } => Node::Read { chosen },
            });
        }
        self.last = st.log;
        match st.abort {
            None => {
                self.schedules += 1;
                Outcome::Complete
            }
            Some(AbortKind::Redundant) => {
                self.redundant += 1;
                Outcome::Redundant
            }
            Some(AbortKind::Stuck) => {
                self.stuck += 1;
                Outcome::Stuck
            }
            Some(AbortKind::Diverged) => Outcome::Diverged,
        }
    }

    /// Backtracks to the deepest node with an unexplored, non-slept
    /// child and re-plans. Returns `false` when the whole bounded space
    /// has been covered.
    pub fn advance(&mut self) -> bool {
        while let Some(top) = self.stack.last_mut() {
            match top {
                Node::Thread {
                    enabled,
                    sleep,
                    chosen,
                    done,
                } => {
                    let cands = *enabled & !*sleep & !*done;
                    if cands != 0 {
                        let c = cands.trailing_zeros() as usize;
                        *done |= 1u64 << c;
                        *chosen = c;
                        self.replan();
                        return true;
                    }
                }
                Node::Read { chosen } => {
                    // First execution chose the latest store
                    // (`count - 1`); walk down toward the stalest.
                    if *chosen > 0 {
                        *chosen -= 1;
                        self.replan();
                        return true;
                    }
                }
            }
            self.stack.pop();
        }
        self.exhausted = true;
        false
    }

    /// Rebuilds the two plan queues from the DFS stack.
    fn replan(&mut self) {
        self.plan.clear();
        self.plan_reads.clear();
        for n in &self.stack {
            match *n {
                Node::Thread { chosen, done, .. } => self.plan.push(PlanStep {
                    chosen,
                    extra_sleep: done & !(1u64 << chosen),
                }),
                Node::Read { chosen } => self.plan_reads.push(chosen),
            }
        }
    }

    /// Thread choices of the most recent execution, in order — the
    /// schedule a trace stores and [`begin_replay`] re-executes.
    pub fn last_schedule(&self) -> Vec<usize> {
        self.last
            .iter()
            .filter_map(|e| match e {
                LogEntry::Thread(d) => Some(d.chosen),
                LogEntry::Read { .. } => None,
            })
            .collect()
    }

    /// Read-from choices of the most recent execution, in order — what
    /// trace format v3 stores alongside the schedule (one entry per
    /// load that had more than one candidate).
    pub fn last_reads(&self) -> Vec<usize> {
        self.last
            .iter()
            .filter_map(|e| match e {
                LogEntry::Read { chosen } => Some(*chosen),
                LogEntry::Thread(_) => None,
            })
            .collect()
    }

    /// Completed (non-redundant, non-stuck) schedules explored so far.
    pub fn schedules(&self) -> u64 {
        self.schedules
    }

    /// Branches pruned by the sleep-set discipline.
    pub fn redundant(&self) -> u64 {
        self.redundant
    }

    /// Executions aborted by the step or forced-wake bounds.
    pub fn stuck(&self) -> u64 {
        self.stuck
    }

    /// Total executions attempted (complete + redundant + stuck).
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Whether the bounded search space has been fully covered.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }
}

/// Installs the explore scheduler in replay mode: the recorded
/// `schedule` (thread choice per step) and `reads` (read-from choice
/// per multi-candidate load; empty outside weak mode) are forced
/// verbatim, with no pruning. Use with the same worker window that
/// produced them.
pub fn begin_replay(
    threads: usize,
    schedule: &[usize],
    reads: &[usize],
    bounds: &ExploreBounds,
) -> ExploreRun {
    assert!(
        (1..=MAX_THREADS).contains(&threads),
        "explore thread count {threads} out of range"
    );
    let plan = schedule
        .iter()
        .map(|&chosen| {
            assert!(chosen < threads, "schedule step names thread {chosen}");
            PlanStep {
                chosen,
                extra_sleep: 0,
            }
        })
        .collect();
    install_run(ExpState::new(threads, plan, reads.to_vec(), true, bounds))
}

/// Harvests a replay started by [`begin_replay`]. `Ok` carries the
/// executed schedule (equal to the recorded one, possibly extended where
/// the window kept running past it); `Err` reports an abort.
pub fn finish_replay(run: ExploreRun) -> Result<Vec<usize>, ReplayError> {
    let st = harvest(run);
    let schedule = st.decisions.iter().map(|d| d.chosen).collect();
    match st.abort {
        None => Ok(schedule),
        Some(AbortKind::Diverged) => Err(ReplayError::Diverged),
        Some(_) => Err(ReplayError::Stuck),
    }
}

/// Failure replaying a recorded schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// The schedule named a thread that was not enabled at that step —
    /// the trace does not match this window (stale or corrupted).
    Diverged,
    /// The replay hit the step or forced-wake bound.
    Stuck,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Diverged => write!(f, "schedule diverged from recorded behaviour"),
            ReplayError::Stuck => write!(f, "replay exceeded exploration bounds"),
        }
    }
}

impl std::error::Error for ReplayError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs one execution of a window where every worker executes `f`.
    fn run_window(explorer: &mut Explorer, f: impl Fn(usize) + Sync) -> Outcome {
        let run = explorer.begin();
        let start = std::sync::Barrier::new(explorer.threads);
        std::thread::scope(|s| {
            for t in 0..explorer.threads {
                let f = &f;
                let start = &start;
                s.spawn(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _slot = crate::stress::register(t);
                        start.wait();
                        f(t);
                    }));
                    if let Err(payload) = result {
                        if payload.downcast_ref::<ExploreAbort>().is_none() {
                            std::panic::resume_unwind(payload);
                        }
                    }
                });
            }
        });
        explorer.finish(run)
    }

    #[test]
    fn two_thread_two_step_window_is_exhaustive() {
        // Two threads × two untagged (hence pairwise dependent) steps:
        // exactly C(4, 2) = 6 interleavings, none prunable.
        let mut ex = Explorer::new(2, ExploreBounds::default());
        loop {
            let out = run_window(&mut ex, |_| {
                crate::stress::yield_point();
                crate::stress::yield_point();
            });
            assert_eq!(out, Outcome::Complete);
            if !ex.advance() {
                break;
            }
        }
        assert!(ex.exhausted());
        assert_eq!(ex.schedules(), 6);
        assert_eq!(ex.redundant(), 0);
    }

    #[test]
    fn independent_steps_are_pruned() {
        // One tagged write to a distinct location per thread: the two
        // interleavings are equivalent, so sleep sets prune one of them.
        let mut ex = Explorer::new(2, ExploreBounds::default());
        loop {
            let out = run_window(&mut ex, |t| {
                crate::stress::yield_point_tagged(YieldTag::Write(0x1000 + t));
            });
            assert_ne!(out, Outcome::Stuck);
            if !ex.advance() {
                break;
            }
        }
        assert!(ex.exhausted());
        assert_eq!(ex.schedules(), 1);
        assert_eq!(ex.redundant(), 1);
    }

    #[test]
    fn conflicting_steps_are_not_pruned() {
        // Same location, both writing: both orders must be kept.
        let mut ex = Explorer::new(2, ExploreBounds::default());
        loop {
            let out = run_window(&mut ex, |_| {
                crate::stress::yield_point_tagged(YieldTag::Write(0x2000));
            });
            assert_eq!(out, Outcome::Complete);
            if !ex.advance() {
                break;
            }
        }
        assert!(ex.exhausted());
        assert_eq!(ex.schedules(), 2);
        assert_eq!(ex.redundant(), 0);
    }

    #[test]
    fn blocked_livelock_is_detected_as_stuck() {
        let mut ex = Explorer::new(
            1,
            ExploreBounds {
                max_steps: 64,
                ..ExploreBounds::default()
            },
        );
        let out = run_window(&mut ex, |_| loop {
            crate::stress::yield_point_tagged(YieldTag::Blocked(0xdead));
        });
        assert_eq!(out, Outcome::Stuck);
        assert_eq!(ex.stuck(), 1);
    }

    #[test]
    fn replay_forces_recorded_schedule() {
        use std::sync::Mutex;
        let order = Mutex::new(Vec::new());
        let body = |t: usize| {
            for _ in 0..3 {
                crate::stress::yield_point();
                order.lock().unwrap().push(t);
            }
        };

        let mut ex = Explorer::new(2, ExploreBounds::default());
        // Walk a few branches in so the schedule is not the trivial one.
        for _ in 0..3 {
            assert_eq!(run_window(&mut ex, body), Outcome::Complete);
            assert!(ex.advance());
        }
        order.lock().unwrap().clear();
        assert_eq!(run_window(&mut ex, body), Outcome::Complete);
        let schedule = ex.last_schedule();
        let recorded = std::mem::take(&mut *order.lock().unwrap());

        let run = begin_replay(2, &schedule, &[], &ExploreBounds::default());
        let start = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            for t in 0..2 {
                let body = &body;
                let start = &start;
                s.spawn(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _slot = crate::stress::register(t);
                        start.wait();
                        body(t);
                    }));
                    if let Err(payload) = result {
                        if payload.downcast_ref::<ExploreAbort>().is_none() {
                            std::panic::resume_unwind(payload);
                        }
                    }
                });
            }
        });
        let replayed = finish_replay(run).expect("replay should complete");
        assert_eq!(replayed, schedule);
        assert_eq!(*order.lock().unwrap(), recorded);
    }
}

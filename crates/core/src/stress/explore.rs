//! Bounded-exhaustive systematic exploration ("model-checking mode") for
//! the stress scheduler.
//!
//! Where the PCT scheduler ([module docs](super)) *samples* schedules from
//! a seeded distribution, this module *enumerates* them: it serializes the
//! worker threads so that exactly one runs between consecutive yield
//! points, records every scheduling decision, and drives a depth-first
//! search over all such decision sequences. For the small operation
//! windows lincheck specs use (2–3 threads × 3–5 ops), the search
//! typically finishes in well under a second and the verdict is a proof
//! over *all* inequivalent interleavings at yield-point granularity — not
//! a lucky sample.
//!
//! # Pruning: sleep sets over tagged independence
//!
//! Exhaustive enumeration is exponential in schedule length, so the
//! explorer prunes with *sleep sets* (Godefroid), the classic
//! partial-order-reduction device: after fully exploring child `t` of a
//! node, `t` is put to sleep for the node's remaining children and stays
//! asleep down a branch until a step *dependent* on `t` executes. A branch
//! whose every enabled thread is asleep is redundant — some already
//! explored branch reaches the same state — and is abandoned early.
//!
//! The independence relation comes from the [`YieldTag`]s instrumented
//! code attaches to its yield points: two steps commute iff both are
//! tagged, with different addresses or neither writing. Untagged steps
//! ([`YieldTag::None`]) are conservatively dependent on everything, so a
//! structure with no tags at all degrades to plain exhaustive DFS —
//! pruning is an optimization, never a soundness assumption. This is
//! deliberately simpler than vector-clock DPOR (Flanagan & Godefroid):
//! sleep sets alone never skip a Mazurkiewicz trace, they only avoid
//! *some* equivalent reorderings, which is the right trade for windows
//! this small.
//!
//! Checking one representative schedule per trace is sound for
//! linearizability because the histories the harness checks are built
//! from invocation/response events that always follow untagged (hence
//! never-commuted) driver yields: equivalent schedules produce histories
//! with identical precedence constraints.
//!
//! # Blocked threads and livelock bounds
//!
//! A thread pausing with [`YieldTag::Blocked`] declares its next step a
//! pure recheck: re-running it before any other thread moves would change
//! nothing and land back at the same yield point. The explorer therefore
//! *disables* such a thread until any other thread completes a step —
//! sound, because the skipped stutter steps do not alter shared state and
//! schedules containing them are equivalent to ones without. Two bounds
//! make every search terminate even on livelocking or deadlocking
//! targets: a per-execution step budget ([`ExploreBounds::max_steps`])
//! and a cap on consecutive forced wakes of all-blocked thread sets; both
//! abort the execution as [`Outcome::Stuck`].
//!
//! # Mechanics
//!
//! [`Explorer::begin`] installs the explore scheduler (sharing the
//! process-wide run lock, [`register`](super::register), and yield-point
//! plumbing with the PCT mode). Worker threads pause at every yield
//! point; when all are paused or finished, the deepest paused thread
//! permitted by the current DFS *plan* is granted one step. Aborts
//! (redundant branch, budget exhausted) unwind the workers with a
//! dedicated panic payload ([`ExploreAbort`]) that the harness catches
//! and a process-wide panic hook mutes. [`Explorer::finish`] harvests the
//! decision log, grows the DFS tree, and [`Explorer::advance`] moves to
//! the next unexplored branch. The decision sequence of a failing
//! execution — just the chosen thread per step — is a *schedule* that
//! [`begin_replay`] re-executes verbatim, which is what the lincheck
//! trace format v2 stores.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, Once};

use super::{YieldTag, ACTIVE, MAX_THREADS, RUN_LOCK};

/// `GRANT` value meaning "no thread may step".
const IDLE: usize = usize::MAX;
/// `GRANT` value meaning "execution aborted; unwind at the next yield".
const ABORTED: usize = usize::MAX - 1;
/// Consecutive forced wakes of an all-blocked thread set before the
/// execution is declared stuck (each requires a full quiescent spin of
/// pure rechecks, so genuine progress resets the counter quickly).
const FORCED_WAKE_BOUND: u32 = 128;

/// Search bounds for one exploration.
#[derive(Debug, Clone)]
pub struct ExploreBounds {
    /// Maximum scheduling decisions per execution before it is declared
    /// [`Outcome::Stuck`] (livelock/deadlock backstop). A window of `t`
    /// threads × `k` ops needs roughly `t·k` times the per-op yield
    /// count, so the default is generous for lincheck-sized windows.
    pub max_steps: u64,
}

impl Default for ExploreBounds {
    fn default() -> Self {
        ExploreBounds { max_steps: 4096 }
    }
}

/// One recorded scheduling decision of an execution.
#[derive(Debug, Clone, Copy)]
struct Decision {
    /// Thread granted the step.
    chosen: usize,
    /// Mask of threads that could have been chosen (paused, not
    /// disabled-blocked).
    enabled: u64,
    /// Sleep set inherited at this decision point.
    sleep: u64,
}

/// One forced step of a DFS plan (the path from the root to the branch
/// being explored).
#[derive(Debug, Clone, Copy)]
struct PlanStep {
    chosen: usize,
    /// Siblings already fully explored at this node; they join the sleep
    /// set for this branch per the sleep-set discipline.
    extra_sleep: u64,
}

/// Why an execution stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbortKind {
    /// Every enabled thread was asleep: an equivalent branch was already
    /// explored.
    Redundant,
    /// Step budget or forced-wake bound exhausted.
    Stuck,
    /// A forced plan step named a thread that is not enabled — the
    /// target behaved differently than when the plan was recorded.
    Diverged,
}

/// Result of one explored execution, as classified by
/// [`Explorer::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The execution ran to completion; its history is meaningful and
    /// counts as one explored schedule.
    Complete,
    /// Pruned by the sleep-set discipline; equivalent to an already
    /// explored schedule. The (partial) history must be discarded.
    Redundant,
    /// Aborted by the step budget or the forced-wake bound — the target
    /// livelocked or deadlocked under this schedule.
    Stuck,
    /// A replayed plan diverged from the recorded behaviour; the target
    /// is nondeterministic beyond schedule choice (or the trace is stale).
    Diverged,
}

/// Panic payload used to unwind worker threads out of an aborted
/// execution. The harness catches it with `catch_unwind`; the panic hook
/// installed by [`Explorer::begin`] keeps it off stderr.
#[derive(Debug)]
pub struct ExploreAbort;

fn abort_panic() -> ! {
    std::panic::panic_any(ExploreAbort);
}

/// Whether the explore scheduler (not PCT) owns the current stress round.
static EXPLORING: AtomicBool = AtomicBool::new(false);
/// Slot currently granted a step, or [`IDLE`] / [`ABORTED`]. Paused
/// workers spin on this instead of the state mutex.
static GRANT: AtomicUsize = AtomicUsize::new(IDLE);
static EXP: Mutex<Option<ExpState>> = Mutex::new(None);
static HOOK: Once = Once::new();

fn exp_lock() -> MutexGuard<'static, Option<ExpState>> {
    EXP.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Installs a forwarding panic hook that mutes [`ExploreAbort`] unwinds
/// (they are control flow, not failures) and defers everything else to
/// the previously installed hook.
fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ExploreAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Live state of one explored execution.
struct ExpState {
    threads: usize,
    plan: Vec<PlanStep>,
    /// Replay mode: never prune as redundant, ignore sleep sets beyond
    /// the plan.
    replay_only: bool,
    max_steps: u64,
    /// Bitmasks over worker slots.
    registered: u64,
    paused: u64,
    finished: u64,
    /// Blocked threads that have not seen another thread step since
    /// pausing; at most the most recent pauser, by construction.
    disabled: u64,
    running: Option<usize>,
    tags: [YieldTag; MAX_THREADS],
    sleep: u64,
    decisions: Vec<Decision>,
    steps: u64,
    forced_wakes: u32,
    abort: Option<AbortKind>,
}

/// Two steps commute iff both are tagged and they cannot conflict:
/// different locations, or the same location with neither writing.
/// [`YieldTag::Blocked`] counts as a read of its location.
fn independent(a: YieldTag, b: YieldTag) -> bool {
    fn access(t: YieldTag) -> Option<(usize, bool)> {
        match t {
            YieldTag::None => None,
            YieldTag::Read(a) | YieldTag::Blocked(a) => Some((a, false)),
            YieldTag::Write(a) => Some((a, true)),
        }
    }
    match (access(a), access(b)) {
        (Some((aa, aw)), Some((ba, bw))) => aa != ba || (!aw && !bw),
        _ => false,
    }
}

impl ExpState {
    fn new(threads: usize, plan: Vec<PlanStep>, replay_only: bool, max_steps: u64) -> Self {
        ExpState {
            threads,
            plan,
            replay_only,
            max_steps,
            registered: 0,
            paused: 0,
            finished: 0,
            disabled: 0,
            running: None,
            tags: [YieldTag::None; MAX_THREADS],
            sleep: 0,
            decisions: Vec::new(),
            steps: 0,
            forced_wakes: 0,
            abort: None,
        }
    }

    fn full_mask(&self) -> u64 {
        if self.threads == 64 {
            u64::MAX
        } else {
            (1u64 << self.threads) - 1
        }
    }

    fn trigger_abort(&mut self, kind: AbortKind) {
        self.abort = Some(kind);
        GRANT.store(ABORTED, Ordering::Release);
    }

    /// Grants one thread a step if the execution is quiescent: every
    /// expected worker registered and now paused or finished, none
    /// running. Called after every pause and finish.
    fn maybe_dispatch(&mut self) {
        if self.abort.is_some() || self.running.is_some() {
            return;
        }
        let full = self.full_mask();
        if self.registered != full {
            return;
        }
        if (self.paused | self.finished) != full || self.finished == full {
            return;
        }
        let mut enabled = self.paused & !self.disabled;
        if enabled == 0 {
            // Everyone left is blocked with nothing moved since: force a
            // recheck round, bounded so a real deadlock still terminates.
            self.forced_wakes += 1;
            if self.forced_wakes > FORCED_WAKE_BOUND {
                return self.trigger_abort(AbortKind::Stuck);
            }
            self.disabled = 0;
            enabled = self.paused;
        }
        let idx = self.decisions.len();
        let (chosen, extra_sleep) = if idx < self.plan.len() {
            let p = self.plan[idx];
            if enabled & (1u64 << p.chosen) == 0 {
                return self.trigger_abort(AbortKind::Diverged);
            }
            (p.chosen, p.extra_sleep)
        } else {
            let cands = enabled & !self.sleep;
            if cands == 0 {
                if self.replay_only {
                    (enabled.trailing_zeros() as usize, 0)
                } else {
                    return self.trigger_abort(AbortKind::Redundant);
                }
            } else {
                (cands.trailing_zeros() as usize, 0)
            }
        };
        self.decisions.push(Decision {
            chosen,
            enabled,
            sleep: self.sleep,
        });
        // Sleep-set propagation: already-explored siblings (and inherited
        // sleepers) stay asleep down this branch only while independent
        // of the step just granted.
        let inherited = (self.sleep | extra_sleep) & self.paused & !(1u64 << chosen);
        let mut new_sleep = 0u64;
        let mut bits = inherited;
        while bits != 0 {
            let u = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if independent(self.tags[u], self.tags[chosen]) {
                new_sleep |= 1u64 << u;
            }
        }
        self.sleep = new_sleep;
        self.steps += 1;
        if self.steps > self.max_steps {
            return self.trigger_abort(AbortKind::Stuck);
        }
        self.paused &= !(1u64 << chosen);
        self.running = Some(chosen);
        GRANT.store(chosen, Ordering::Release);
    }
}

/// Whether the explore scheduler owns the active stress round.
#[inline]
pub(super) fn mode_active() -> bool {
    EXPLORING.load(Ordering::Acquire)
}

/// Registers `index` with the explore round, if one is installed.
/// Returns `false` when no explore round is active (PCT registration
/// should proceed instead).
pub(super) fn register(index: usize) -> bool {
    if !mode_active() {
        return false;
    }
    let mut guard = exp_lock();
    let Some(st) = guard.as_mut() else {
        return false;
    };
    assert!(
        index < st.threads,
        "worker index {index} out of range for explore round of {} threads",
        st.threads
    );
    let bit = 1u64 << index;
    assert!(
        st.registered & bit == 0,
        "worker index {index} registered twice"
    );
    st.registered |= bit;
    true
}

/// Removes a finished worker from the explore round. Returns `true` when
/// the explore round handled the deregistration. Must never panic: it
/// runs from `Drop` during abort unwinds.
pub(super) fn deregister(slot: usize) -> bool {
    if !mode_active() {
        return false;
    }
    let mut guard = exp_lock();
    let Some(st) = guard.as_mut() else {
        return true;
    };
    let bit = 1u64 << slot;
    if st.registered & bit == 0 {
        return true;
    }
    if st.running == Some(slot) {
        st.running = None;
        st.steps += 1;
        if GRANT.load(Ordering::Acquire) == slot {
            GRANT.store(IDLE, Ordering::Release);
        }
    }
    st.paused &= !bit;
    st.finished |= bit;
    st.sleep &= !bit;
    st.disabled = 0;
    st.forced_wakes = 0;
    st.maybe_dispatch();
    true
}

/// The explore-mode yield point: pause, hand the scheduler the access
/// tag for the next step, and wait to be granted that step. Panics with
/// [`ExploreAbort`] when the execution is aborted.
pub(super) fn on_yield(slot: usize, tag: YieldTag) {
    {
        let mut guard = exp_lock();
        let Some(st) = guard.as_mut() else { return };
        if st.abort.is_some() {
            drop(guard);
            abort_panic();
        }
        let bit = 1u64 << slot;
        if st.registered & bit == 0 || st.finished & bit != 0 {
            return;
        }
        if st.running == Some(slot) {
            st.running = None;
            if GRANT.load(Ordering::Acquire) == slot {
                GRANT.store(IDLE, Ordering::Release);
            }
        }
        st.paused |= bit;
        st.tags[slot] = tag;
        // This thread just completed a step (or arrived), so every other
        // blocked thread's "nothing has moved" premise is void; its own
        // sticks only if this pause itself declares a pure recheck.
        if matches!(tag, YieldTag::Blocked(_)) {
            st.disabled = bit;
        } else {
            st.disabled = 0;
            st.forced_wakes = 0;
        }
        st.maybe_dispatch();
        if st.abort.is_some() {
            drop(guard);
            abort_panic();
        }
    }
    loop {
        match GRANT.load(Ordering::Acquire) {
            g if g == slot => return,
            ABORTED => abort_panic(),
            _ => std::thread::yield_now(),
        }
    }
}

/// An installed explore round; uninstalls on drop. Returned by
/// [`Explorer::begin`] / [`begin_replay`] and consumed by
/// [`Explorer::finish`] / [`finish_replay`] after the workers joined.
pub struct ExploreRun {
    _exclusive: MutexGuard<'static, ()>,
}

impl std::fmt::Debug for ExploreRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExploreRun").finish_non_exhaustive()
    }
}

impl Drop for ExploreRun {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::Release);
        EXPLORING.store(false, Ordering::Release);
        *exp_lock() = None;
        GRANT.store(IDLE, Ordering::Release);
    }
}

fn install_run(state: ExpState) -> ExploreRun {
    install_quiet_hook();
    let exclusive = RUN_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
    // Route `cds-sync` backoff yields into the tagged entry point, same
    // as a PCT install — and answer the `cds_sync::Parker`'s "is a
    // schedule driving?" question, so parked threads spin through
    // explorable yield points instead of a native condvar the driver
    // could never preempt.
    cds_sync::stress::set_yield_hook(super::yield_point_tagged);
    cds_sync::stress::set_active_hook(super::is_active);
    *exp_lock() = Some(state);
    GRANT.store(IDLE, Ordering::Release);
    EXPLORING.store(true, Ordering::Release);
    ACTIVE.store(true, Ordering::Release);
    ExploreRun {
        _exclusive: exclusive,
    }
}

fn harvest(run: ExploreRun) -> ExpState {
    let state = exp_lock().take().expect("explore state missing at finish");
    drop(run);
    state
}

/// A node of the DFS tree, one per scheduling decision along the current
/// path.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Threads choosable at this node when it was first reached.
    enabled: u64,
    /// Sleep set inherited at this node.
    sleep: u64,
    /// Child currently (or last) being explored.
    chosen: usize,
    /// Children explored so far, including `chosen`.
    done: u64,
}

/// Depth-first enumerator of thread schedules with sleep-set pruning.
///
/// Drive it in a loop: [`begin`](Explorer::begin), run the worker window
/// to completion, [`finish`](Explorer::finish), inspect the outcome, and
/// [`advance`](Explorer::advance) until it returns `false` (search space
/// exhausted). See `cds_lincheck::explore` for the packaged harness.
pub struct Explorer {
    threads: usize,
    bounds: ExploreBounds,
    stack: Vec<Node>,
    plan: Vec<PlanStep>,
    /// Decision log of the most recent execution.
    last: Vec<Decision>,
    plan_len: usize,
    schedules: u64,
    redundant: u64,
    stuck: u64,
    executions: u64,
    exhausted: bool,
}

impl std::fmt::Debug for Explorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Explorer")
            .field("threads", &self.threads)
            .field("depth", &self.stack.len())
            .field("schedules", &self.schedules)
            .field("redundant", &self.redundant)
            .field("stuck", &self.stuck)
            .field("executions", &self.executions)
            .field("exhausted", &self.exhausted)
            .finish()
    }
}

impl Explorer {
    /// Creates an explorer for windows of `threads` worker threads
    /// (registered as slots `0..threads`).
    pub fn new(threads: usize, bounds: ExploreBounds) -> Self {
        assert!(
            (1..=MAX_THREADS).contains(&threads),
            "explore thread count {threads} out of range"
        );
        Explorer {
            threads,
            bounds,
            stack: Vec::new(),
            plan: Vec::new(),
            last: Vec::new(),
            plan_len: 0,
            schedules: 0,
            redundant: 0,
            stuck: 0,
            executions: 0,
            exhausted: false,
        }
    }

    /// Installs the explore scheduler for the next execution of the
    /// window. Workers must [`register`](super::register) slots
    /// `0..threads` and hit yield points as usual.
    pub fn begin(&mut self) -> ExploreRun {
        assert!(!self.exhausted, "explorer already exhausted");
        self.plan_len = self.plan.len();
        install_run(ExpState::new(
            self.threads,
            self.plan.clone(),
            false,
            self.bounds.max_steps,
        ))
    }

    /// Harvests the execution started by the matching
    /// [`begin`](Explorer::begin) (after all workers joined), growing the
    /// DFS tree with the fresh decisions.
    pub fn finish(&mut self, run: ExploreRun) -> Outcome {
        let st = harvest(run);
        self.executions += 1;
        for d in &st.decisions[self.plan_len.min(st.decisions.len())..] {
            self.stack.push(Node {
                enabled: d.enabled,
                sleep: d.sleep,
                chosen: d.chosen,
                done: 1u64 << d.chosen,
            });
        }
        self.last = st.decisions;
        match st.abort {
            None => {
                self.schedules += 1;
                Outcome::Complete
            }
            Some(AbortKind::Redundant) => {
                self.redundant += 1;
                Outcome::Redundant
            }
            Some(AbortKind::Stuck) => {
                self.stuck += 1;
                Outcome::Stuck
            }
            Some(AbortKind::Diverged) => Outcome::Diverged,
        }
    }

    /// Backtracks to the deepest node with an unexplored, non-slept
    /// child and re-plans. Returns `false` when the whole bounded space
    /// has been covered.
    pub fn advance(&mut self) -> bool {
        while let Some(top) = self.stack.last_mut() {
            let cands = top.enabled & !top.sleep & !top.done;
            if cands != 0 {
                let c = cands.trailing_zeros() as usize;
                top.done |= 1u64 << c;
                top.chosen = c;
                self.plan = self
                    .stack
                    .iter()
                    .map(|n| PlanStep {
                        chosen: n.chosen,
                        extra_sleep: n.done & !(1u64 << n.chosen),
                    })
                    .collect();
                return true;
            }
            self.stack.pop();
        }
        self.exhausted = true;
        false
    }

    /// Thread choices of the most recent execution, in order — the
    /// schedule a trace stores and [`begin_replay`] re-executes.
    pub fn last_schedule(&self) -> Vec<usize> {
        self.last.iter().map(|d| d.chosen).collect()
    }

    /// Completed (non-redundant, non-stuck) schedules explored so far.
    pub fn schedules(&self) -> u64 {
        self.schedules
    }

    /// Branches pruned by the sleep-set discipline.
    pub fn redundant(&self) -> u64 {
        self.redundant
    }

    /// Executions aborted by the step or forced-wake bounds.
    pub fn stuck(&self) -> u64 {
        self.stuck
    }

    /// Total executions attempted (complete + redundant + stuck).
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Whether the bounded search space has been fully covered.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }
}

/// Installs the explore scheduler in replay mode: the recorded
/// `schedule` (thread choice per step) is forced verbatim, with no
/// pruning. Use with the same worker window that produced the schedule.
pub fn begin_replay(threads: usize, schedule: &[usize], bounds: &ExploreBounds) -> ExploreRun {
    assert!(
        (1..=MAX_THREADS).contains(&threads),
        "explore thread count {threads} out of range"
    );
    let plan = schedule
        .iter()
        .map(|&chosen| {
            assert!(chosen < threads, "schedule step names thread {chosen}");
            PlanStep {
                chosen,
                extra_sleep: 0,
            }
        })
        .collect();
    install_run(ExpState::new(threads, plan, true, bounds.max_steps))
}

/// Harvests a replay started by [`begin_replay`]. `Ok` carries the
/// executed schedule (equal to the recorded one, possibly extended where
/// the window kept running past it); `Err` reports an abort.
pub fn finish_replay(run: ExploreRun) -> Result<Vec<usize>, ReplayError> {
    let st = harvest(run);
    let schedule = st.decisions.iter().map(|d| d.chosen).collect();
    match st.abort {
        None => Ok(schedule),
        Some(AbortKind::Diverged) => Err(ReplayError::Diverged),
        Some(_) => Err(ReplayError::Stuck),
    }
}

/// Failure replaying a recorded schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// The schedule named a thread that was not enabled at that step —
    /// the trace does not match this window (stale or corrupted).
    Diverged,
    /// The replay hit the step or forced-wake bound.
    Stuck,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Diverged => write!(f, "schedule diverged from recorded behaviour"),
            ReplayError::Stuck => write!(f, "replay exceeded exploration bounds"),
        }
    }
}

impl std::error::Error for ReplayError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs one execution of a window where every worker executes `f`.
    fn run_window(explorer: &mut Explorer, f: impl Fn(usize) + Sync) -> Outcome {
        let run = explorer.begin();
        let start = std::sync::Barrier::new(explorer.threads);
        std::thread::scope(|s| {
            for t in 0..explorer.threads {
                let f = &f;
                let start = &start;
                s.spawn(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _slot = crate::stress::register(t);
                        start.wait();
                        f(t);
                    }));
                    if let Err(payload) = result {
                        if payload.downcast_ref::<ExploreAbort>().is_none() {
                            std::panic::resume_unwind(payload);
                        }
                    }
                });
            }
        });
        explorer.finish(run)
    }

    #[test]
    fn two_thread_two_step_window_is_exhaustive() {
        // Two threads × two untagged (hence pairwise dependent) steps:
        // exactly C(4, 2) = 6 interleavings, none prunable.
        let mut ex = Explorer::new(2, ExploreBounds::default());
        loop {
            let out = run_window(&mut ex, |_| {
                crate::stress::yield_point();
                crate::stress::yield_point();
            });
            assert_eq!(out, Outcome::Complete);
            if !ex.advance() {
                break;
            }
        }
        assert!(ex.exhausted());
        assert_eq!(ex.schedules(), 6);
        assert_eq!(ex.redundant(), 0);
    }

    #[test]
    fn independent_steps_are_pruned() {
        // One tagged write to a distinct location per thread: the two
        // interleavings are equivalent, so sleep sets prune one of them.
        let mut ex = Explorer::new(2, ExploreBounds::default());
        loop {
            let out = run_window(&mut ex, |t| {
                crate::stress::yield_point_tagged(YieldTag::Write(0x1000 + t));
            });
            assert_ne!(out, Outcome::Stuck);
            if !ex.advance() {
                break;
            }
        }
        assert!(ex.exhausted());
        assert_eq!(ex.schedules(), 1);
        assert_eq!(ex.redundant(), 1);
    }

    #[test]
    fn conflicting_steps_are_not_pruned() {
        // Same location, both writing: both orders must be kept.
        let mut ex = Explorer::new(2, ExploreBounds::default());
        loop {
            let out = run_window(&mut ex, |_| {
                crate::stress::yield_point_tagged(YieldTag::Write(0x2000));
            });
            assert_eq!(out, Outcome::Complete);
            if !ex.advance() {
                break;
            }
        }
        assert!(ex.exhausted());
        assert_eq!(ex.schedules(), 2);
        assert_eq!(ex.redundant(), 0);
    }

    #[test]
    fn blocked_livelock_is_detected_as_stuck() {
        let mut ex = Explorer::new(1, ExploreBounds { max_steps: 64 });
        let out = run_window(&mut ex, |_| loop {
            crate::stress::yield_point_tagged(YieldTag::Blocked(0xdead));
        });
        assert_eq!(out, Outcome::Stuck);
        assert_eq!(ex.stuck(), 1);
    }

    #[test]
    fn replay_forces_recorded_schedule() {
        use std::sync::Mutex;
        let order = Mutex::new(Vec::new());
        let body = |t: usize| {
            for _ in 0..3 {
                crate::stress::yield_point();
                order.lock().unwrap().push(t);
            }
        };

        let mut ex = Explorer::new(2, ExploreBounds::default());
        // Walk a few branches in so the schedule is not the trivial one.
        for _ in 0..3 {
            assert_eq!(run_window(&mut ex, body), Outcome::Complete);
            assert!(ex.advance());
        }
        order.lock().unwrap().clear();
        assert_eq!(run_window(&mut ex, body), Outcome::Complete);
        let schedule = ex.last_schedule();
        let recorded = std::mem::take(&mut *order.lock().unwrap());

        let run = begin_replay(2, &schedule, &ExploreBounds::default());
        let start = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            for t in 0..2 {
                let body = &body;
                let start = &start;
                s.spawn(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _slot = crate::stress::register(t);
                        start.wait();
                        body(t);
                    }));
                    if let Err(payload) = result {
                        if payload.downcast_ref::<ExploreAbort>().is_none() {
                            std::panic::resume_unwind(payload);
                        }
                    }
                });
            }
        });
        let replayed = finish_replay(run).expect("replay should complete");
        assert_eq!(replayed, schedule);
        assert_eq!(*order.lock().unwrap(), recorded);
    }
}

//! Weak-memory execution layer for the systematic explorer.
//!
//! The DPOR explorer enumerates *interleavings*; this module makes each
//! interleaving additionally enumerate the *values* C11 permits loads to
//! observe under the structures' actual `Ordering` annotations. The
//! model is a release/acquire machine in the style of operational RC11
//! presentations (equivalently: per-location modification order plus
//! per-thread store buffers):
//!
//! - Every store appends a [`StoreRec`] to its location's modification
//!   order, stamped with the writing thread's event counter. A release
//!   store snapshots the writer's vector view; an acquire load that
//!   reads it joins that snapshot (the synchronizes-with edge).
//! - A load may read any record not hidden from the thread: newer-or-
//!   equal (per-location coherence) than the newest record it has
//!   already observed, not older than the newest record it is
//!   *synchronized with* (happens-before coherence), and within the
//!   [`ExploreBounds::weak_window`](super::explore::ExploreBounds)
//!   newest records (the search bound). Those floors make the candidate
//!   set a contiguous suffix of the modification order, so a read-from
//!   choice is just an offset the DFS can branch on.
//! - RMWs always read the latest record (C11 atomicity); a relaxed RMW
//!   inherits its predecessor's release view, modeling release-sequence
//!   continuation. A failed CAS is a load of the latest record with the
//!   failure ordering.
//! - `SeqCst` accesses are modeled as acquire/release that read/write
//!   the latest record. This is *stronger* than C11's total order S in
//!   some mixed-ordering corners, which is the sound direction for a
//!   bug-finder: the model under-approximates weak behaviors, so every
//!   behavior it exhibits is real, and `SeqCst`-correct code never
//!   false-positives.
//! - Fences are conservative: an acquire-ish fence joins every thread's
//!   full event count (over-synchronizing, again the sound direction);
//!   a release-ish fence marks the thread so its subsequent relaxed
//!   stores carry release views, per the C11 fence rules.
//!
//! # Real-time completion edges
//!
//! Linearizability is checked against *real-time* operation order, but
//! pure release/acquire semantics lets a load read a value that was
//! stale before the reading operation even began — legal C11, yet the
//! checker would flag it on *correctly annotated* code (e.g. a dequeue
//! that starts strictly after an enqueue completed may not miss it).
//! [`WeakState::op_boundary`] therefore joins the calling thread's view
//! into a global completion view and back at every operation boundary,
//! confining weak behaviors to operations that actually overlap —
//! exactly linearizability's real-time requirement.
//!
//! # Region race detection
//!
//! Ordering bugs whose only symptom is a data race on *non-atomic*
//! payload (e.g. a node's value fields published by a demoted-release
//! link CAS) never surface through atomic load values. For those,
//! publication sites ([`cds_atomic::stress::publish_region`], called by
//! `cds-reclaim`'s `Owned::into_shared`) register the node's byte range
//! stamped with the publisher's next event, and every `Shared::deref`
//! checks the accessor has synchronized with that stamp — loom's
//! discipline, reported as a deterministic panic (no raw addresses, so
//! failure messages replay byte-identically across ASLR).

use std::collections::{BTreeMap, HashMap};

use cds_atomic::Ordering;

/// Pseudo-writer for records that predate the window (initial values,
/// setup-thread stores): known to every thread.
const INIT_WRITER: usize = usize::MAX;

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Per-thread vector of event counters ("has observed events `..=n` of
/// thread `t`").
#[derive(Debug, Clone, PartialEq, Eq)]
struct VClock(Vec<u64>);

impl VClock {
    fn new(threads: usize) -> Self {
        VClock(vec![0; threads])
    }

    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    fn get(&self, t: usize) -> u64 {
        self.0[t]
    }

    fn set(&mut self, t: usize, v: u64) {
        self.0[t] = v;
    }
}

/// One entry of a location's modification order.
#[derive(Debug, Clone)]
struct StoreRec {
    value: u64,
    writer: usize,
    /// The writer's event counter at this store.
    stamp: u64,
    /// Release view snapshot; `None` for plain relaxed stores.
    sync: Option<VClock>,
}

#[derive(Debug)]
struct Loc {
    hist: Vec<StoreRec>,
    /// Coherence floor: per thread, the newest history index already
    /// observed (read or written).
    seen: Vec<usize>,
}

/// A published heap region guarded by atomic publication.
#[derive(Debug, Clone, Copy)]
struct Region {
    len: usize,
    writer: usize,
    stamp: u64,
}

/// A detected unsynchronized access to a published region.
#[derive(Debug, Clone, Copy)]
pub(super) struct RegionRace {
    pub accessor: usize,
    pub writer: usize,
    pub stamp: u64,
}

/// Weak-memory state of one explored execution.
pub(super) struct WeakState {
    threads: usize,
    window: usize,
    detect_races: bool,
    /// Per-thread event counters; bumped at every store/RMW-write.
    counts: Vec<u64>,
    views: Vec<VClock>,
    /// Completion view accumulated at operation boundaries.
    global: VClock,
    /// Set once a thread executes a release-ish fence; its later stores
    /// then carry release views even when relaxed.
    fenced_release: Vec<bool>,
    locs: HashMap<usize, Loc>,
    regions: BTreeMap<usize, Region>,
}

impl WeakState {
    pub fn new(threads: usize, window: usize, detect_races: bool) -> Self {
        WeakState {
            threads,
            window: window.max(1),
            detect_races,
            counts: vec![0; threads],
            views: (0..threads).map(|_| VClock::new(threads)).collect(),
            global: VClock::new(threads),
            fenced_release: vec![false; threads],
            locs: HashMap::new(),
            regions: BTreeMap::new(),
        }
    }

    fn bump(&mut self, t: usize) -> u64 {
        self.counts[t] += 1;
        self.views[t].set(t, self.counts[t]);
        self.counts[t]
    }

    fn known(views: &[VClock], t: usize, rec: &StoreRec) -> bool {
        rec.writer == INIT_WRITER || rec.writer == t || views[t].get(rec.writer) >= rec.stamp
    }

    /// Lazily creates the location's modification order; the initial
    /// record carries the real current value and is known to everyone
    /// (it predates the window or was written unregistered, e.g. by the
    /// setup thread — real time already ordered it before every window
    /// op).
    fn ensure(&mut self, addr: usize, current: u64) {
        let threads = self.threads;
        self.locs.entry(addr).or_insert_with(|| Loc {
            hist: vec![StoreRec {
                value: current,
                writer: INIT_WRITER,
                stamp: 0,
                sync: None,
            }],
            seen: vec![0; threads],
        });
    }

    /// Number of modification-order records a load by `t` may legally
    /// read; the candidates are exactly the newest `count` records.
    pub fn load_candidates(
        &mut self,
        t: usize,
        addr: usize,
        order: Ordering,
        current: u64,
    ) -> usize {
        self.ensure(addr, current);
        let loc = &self.locs[&addr];
        let n = loc.hist.len();
        if order == Ordering::SeqCst {
            return 1;
        }
        let mut newest_known = 0;
        for i in (0..n).rev() {
            if Self::known(&self.views, t, &loc.hist[i]) {
                newest_known = i;
                break;
            }
        }
        let first = newest_known
            .max(loc.seen[t])
            .max(n.saturating_sub(self.window));
        n - first
    }

    /// Commits a read-from choice made by the DFS: `offset` in
    /// `0..count`, where `count - 1` is the latest record. Returns the
    /// observed value.
    pub fn load_commit(
        &mut self,
        t: usize,
        addr: usize,
        order: Ordering,
        count: usize,
        offset: usize,
    ) -> u64 {
        let loc = self.locs.get_mut(&addr).expect("location vanished");
        let n = loc.hist.len();
        let i = n - count + offset;
        loc.seen[t] = loc.seen[t].max(i);
        let value = loc.hist[i].value;
        let sync = if is_acquire(order) {
            loc.hist[i].sync.clone()
        } else {
            None
        };
        if let Some(s) = sync {
            self.views[t].join(&s);
        }
        value
    }

    /// A plain store replacing `prev` with `new`.
    pub fn store(&mut self, t: usize, addr: usize, order: Ordering, prev: u64, new: u64) {
        self.ensure(addr, prev);
        let stamp = self.bump(t);
        let sync = (is_release(order) || self.fenced_release[t]).then(|| self.views[t].clone());
        let loc = self.locs.get_mut(&addr).expect("location vanished");
        loc.hist.push(StoreRec {
            value: new,
            writer: t,
            stamp,
            sync,
        });
        let last = loc.hist.len() - 1;
        loc.seen[t] = last;
    }

    /// A read-modify-write: always reads the latest record (C11
    /// atomicity); `new` is `None` for a failed CAS.
    pub fn rmw(&mut self, t: usize, addr: usize, order: Ordering, prev: u64, new: Option<u64>) {
        self.ensure(addr, prev);
        let loc = self.locs.get_mut(&addr).expect("location vanished");
        let last = loc.hist.len() - 1;
        debug_assert_eq!(
            loc.hist[last].value, prev,
            "modification order diverged from real memory"
        );
        let read_sync = if is_acquire(order) {
            loc.hist[last].sync.clone()
        } else {
            None
        };
        loc.seen[t] = loc.seen[t].max(last);
        if let Some(s) = read_sync {
            self.views[t].join(&s);
        }
        let Some(new) = new else { return };
        // Release-sequence continuation: a relaxed RMW extends the
        // predecessor's release view, so acquire readers of the RMW
        // still synchronize with the original release store.
        let inherited = self.locs[&addr].hist[last].sync.clone();
        let stamp = self.bump(t);
        let sync = if is_release(order) || self.fenced_release[t] {
            Some(self.views[t].clone())
        } else {
            inherited
        };
        let loc = self.locs.get_mut(&addr).expect("location vanished");
        loc.hist.push(StoreRec {
            value: new,
            writer: t,
            stamp,
            sync,
        });
        let n = loc.hist.len() - 1;
        loc.seen[t] = n;
    }

    pub fn fence(&mut self, t: usize, order: Ordering) {
        if is_acquire(order) {
            // Conservative: join everything issued so far. Synchronizes
            // more than C11's fence rules, never less — sound for
            // bug-finding (may mask fence bugs, documented in DESIGN).
            for u in 0..self.threads {
                let c = self.counts[u];
                if self.views[t].get(u) < c {
                    self.views[t].set(u, c);
                }
            }
        }
        if is_release(order) {
            self.fenced_release[t] = true;
        }
    }

    /// Real-time completion edge (see module docs): called by the
    /// harness between consecutive operations of a thread.
    pub fn op_boundary(&mut self, t: usize) {
        self.global.join(&self.views[t]);
        let g = self.global.clone();
        self.views[t].join(&g);
    }

    /// Registers a published heap region. `writer` is `None` for
    /// unregistered (setup) threads, whose publications are known to
    /// everyone.
    pub fn publish(&mut self, writer: Option<usize>, base: usize, len: usize) {
        if !self.detect_races {
            return;
        }
        let (writer, stamp) = match writer {
            // Stamped with the *next* event: exactly the release-ish
            // stores sequenced after this publication carry views that
            // reach the stamp.
            Some(t) => (t, self.counts[t] + 1),
            None => (INIT_WRITER, 0),
        };
        self.regions.insert(base, Region { len, writer, stamp });
    }

    /// Checks a non-atomic access against the publication discipline.
    pub fn check(&self, t: usize, addr: usize, _len: usize) -> Result<(), RegionRace> {
        if !self.detect_races {
            return Ok(());
        }
        if let Some((base, r)) = self.regions.range(..=addr).next_back() {
            if addr < base + r.len
                && r.writer != INIT_WRITER
                && r.writer != t
                && self.views[t].get(r.writer) < r.stamp
            {
                return Err(RegionRace {
                    accessor: t,
                    writer: r.writer,
                    stamp: r.stamp,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: usize = 0x100;
    const Y: usize = 0x200;

    #[test]
    fn relaxed_store_is_not_synchronizing() {
        // Message passing with relaxed publication: the reader may see
        // the flag yet miss the payload.
        let mut w = WeakState::new(2, 4, false);
        w.store(0, Y, Ordering::Relaxed, 0, 41); // payload
        w.store(0, X, Ordering::Relaxed, 0, 1); // flag, relaxed: no sync
        let c = w.load_candidates(1, X, Ordering::Acquire, 1);
        assert_eq!(c, 2, "flag may be seen or missed");
        let v = w.load_commit(1, X, Ordering::Acquire, c, c - 1);
        assert_eq!(v, 1, "latest candidate is the flag store");
        // Even having read the flag, the relaxed store gave no edge:
        // the payload may still read 0.
        let c = w.load_candidates(1, Y, Ordering::Acquire, 41);
        assert_eq!(c, 2, "payload remains unordered: stale 0 is legal");
    }

    #[test]
    fn release_acquire_synchronizes_payload() {
        let mut w = WeakState::new(2, 4, false);
        w.store(0, Y, Ordering::Relaxed, 0, 41);
        w.store(0, X, Ordering::Release, 0, 1);
        let c = w.load_candidates(1, X, Ordering::Acquire, 1);
        assert_eq!(c, 2);
        w.load_commit(1, X, Ordering::Acquire, c, c - 1); // reads the flag
        let c = w.load_candidates(1, Y, Ordering::Acquire, 41);
        assert_eq!(c, 1, "acquire of the release flag orders the payload");
        assert_eq!(w.load_commit(1, Y, Ordering::Acquire, c, 0), 41);
    }

    #[test]
    fn coherence_forbids_rereading_older_values() {
        let mut w = WeakState::new(2, 8, false);
        w.store(0, X, Ordering::Relaxed, 0, 1);
        w.store(0, X, Ordering::Relaxed, 1, 2);
        let c = w.load_candidates(1, X, Ordering::Relaxed, 2);
        assert_eq!(c, 3);
        // Read the middle store; older records are now hidden from t1.
        let v = w.load_commit(1, X, Ordering::Relaxed, c, 1);
        assert_eq!(v, 1);
        let c = w.load_candidates(1, X, Ordering::Relaxed, 2);
        assert_eq!(c, 2, "init record is below the coherence floor now");
    }

    #[test]
    fn rmw_reads_latest_and_continues_release_sequence() {
        let mut w = WeakState::new(3, 8, false);
        w.store(0, Y, Ordering::Relaxed, 0, 41);
        w.store(0, X, Ordering::Release, 0, 1);
        // Relaxed RMW by t1 on top of the release store.
        w.rmw(1, X, Ordering::Relaxed, 1, Some(2));
        // Acquire reader of the RMW record must still synchronize with
        // t0's release (release-sequence continuation).
        let c = w.load_candidates(2, X, Ordering::Acquire, 2);
        let v = w.load_commit(2, X, Ordering::Acquire, c, c - 1);
        assert_eq!(v, 2);
        let c = w.load_candidates(2, Y, Ordering::Relaxed, 41);
        assert_eq!(c, 1, "payload ordered through the release sequence");
    }

    #[test]
    fn seqcst_load_reads_latest_only() {
        let mut w = WeakState::new(2, 8, false);
        w.store(0, X, Ordering::Relaxed, 0, 1);
        w.store(0, X, Ordering::Relaxed, 1, 2);
        assert_eq!(w.load_candidates(1, X, Ordering::SeqCst, 2), 1);
    }

    #[test]
    fn window_bounds_staleness() {
        let mut w = WeakState::new(2, 2, false);
        for i in 0..10 {
            w.store(0, X, Ordering::Relaxed, i, i + 1);
        }
        assert_eq!(w.load_candidates(1, X, Ordering::Relaxed, 10), 2);
    }

    #[test]
    fn op_boundary_is_a_completion_edge() {
        let mut w = WeakState::new(2, 4, false);
        w.store(0, X, Ordering::Relaxed, 0, 1);
        // t0's operation completes; t1's next operation begins.
        w.op_boundary(0);
        w.op_boundary(1);
        assert_eq!(
            w.load_candidates(1, X, Ordering::Relaxed, 1),
            1,
            "non-overlapping ops must not observe staleness"
        );
    }

    #[test]
    fn release_fence_upgrades_later_relaxed_stores() {
        let mut w = WeakState::new(2, 4, false);
        w.store(0, Y, Ordering::Relaxed, 0, 41);
        w.fence(0, Ordering::Release);
        w.store(0, X, Ordering::Relaxed, 0, 1);
        let c = w.load_candidates(1, X, Ordering::Acquire, 1);
        w.load_commit(1, X, Ordering::Acquire, c, c - 1);
        assert_eq!(w.load_candidates(1, Y, Ordering::Relaxed, 41), 1);
    }

    #[test]
    fn region_race_detected_without_synchronization() {
        let mut w = WeakState::new(2, 4, true);
        w.publish(Some(0), 0x1000, 64);
        // Publication followed by a relaxed (non-release) link store.
        w.store(0, X, Ordering::Relaxed, 0, 0x1000);
        let c = w.load_candidates(1, X, Ordering::Acquire, 0x1000);
        w.load_commit(1, X, Ordering::Acquire, c, c - 1);
        assert!(
            w.check(1, 0x1010, 8).is_err(),
            "relaxed link leaks the region"
        );

        // With a release link and an acquire read, the access is clean.
        let mut w = WeakState::new(2, 4, true);
        w.publish(Some(0), 0x1000, 64);
        w.store(0, X, Ordering::Release, 0, 0x1000);
        let c = w.load_candidates(1, X, Ordering::Acquire, 0x1000);
        w.load_commit(1, X, Ordering::Acquire, c, c - 1);
        assert!(w.check(1, 0x1010, 8).is_ok());
        // The publisher itself may always access its region.
        assert!(w.check(0, 0x1010, 8).is_ok());
    }
}

//! PCT-style deterministic stress scheduling hooks.
//!
//! The structure crates are instrumented with [`yield_point`] calls at
//! their interesting interleaving points — lock acquisitions (via the
//! `parking_lot` shim), CAS retry loops, and publication points. In a
//! normal build the hook compiles to an empty inline function and costs
//! nothing. With the `stress` feature enabled *and* a scheduler installed,
//! the hooks become preemption points under a randomized
//! priority-based scheduler in the style of PCT (Burckhardt et al., *A
//! Randomized Scheduler with Probabilistic Guarantees of Finding Bugs*,
//! ASPLOS 2010):
//!
//! * every registered worker thread gets a priority derived
//!   deterministically from the run seed and its worker index;
//! * only the highest-priority runnable thread (the *token holder*) makes
//!   progress past yield points; the others spin;
//! * at seeded priority-change points the token holder is demoted below
//!   every other thread, forcing a context switch exactly there.
//!
//! Because priorities, change points, and forced-backoff injections are
//! all derived from one [`SplitMix64`] stream seeded by
//! [`StressConfig::seed`], re-running a round with the same seed replays
//! the same schedule decisions. Replay is *best effort*: if the token
//! holder blocks in the kernel (e.g. on a contended lock), waiting
//! threads fall through after a bounded number of yields rather than
//! deadlock, which can perturb the schedule. In practice the failing
//! schedules the suite finds reproduce from their printed seed.
//!
//! Threads that never call [`register`] (the test runner, unrelated
//! concurrent tests) pass through yield points untouched even while a
//! scheduler is active.

use std::cell::Cell;
use std::fmt;
// The scheduler's own state must stay invisible to the instrumented
// atomics layer it drives, hence `raw`.
use cds_atomic::raw::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

#[cfg(feature = "stress")]
pub mod explore;
#[cfg(feature = "stress")]
mod weak;

pub use cds_sync::stress::YieldTag;

/// Maximum worker threads a stress round may register.
pub const MAX_THREADS: usize = 64;

/// How many `yield_now` spins a non-token thread performs before falling
/// through a yield point anyway (deadlock avoidance when the token holder
/// is blocked in the kernel).
#[cfg_attr(not(feature = "stress"), allow(dead_code))]
const FAIRNESS_BOUND: u32 = 1 << 14;

/// SplitMix64: the deterministic seed stream behind every stress
/// scheduling decision (Steele et al., OOPSLA 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Mixes a seed with a stream index into an independent-looking value;
/// used to derive per-thread priorities and per-round seeds.
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    SplitMix64::new(seed ^ stream.wrapping_mul(0xa0761d6478bd642f)).next_u64()
}

/// Configuration of one stress-scheduled round.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Root seed; priorities, change points, and backoff all derive from it.
    pub seed: u64,
    /// Average number of token-holder steps between priority-change
    /// points (the PCT depth knob). `0` disables preemption injection.
    pub change_period: u64,
    /// Forced-backoff injection: on average one in `backoff_denom`
    /// token-holder steps spins [`backoff_spins`](Self::backoff_spins)
    /// times before proceeding. `0` disables injection.
    pub backoff_denom: u64,
    /// Spin count per injected backoff.
    pub backoff_spins: u32,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            seed: 0,
            change_period: 3,
            backoff_denom: 0,
            backoff_spins: 0,
        }
    }
}

// Most fields only feed `yield_point_slow`, which is compiled under the
// `stress` feature; the struct itself stays so install/register keep one
// shape either way.
#[cfg_attr(not(feature = "stress"), allow(dead_code))]
struct SchedState {
    rng: SplitMix64,
    seed: u64,
    priorities: [u64; MAX_THREADS],
    registered: [bool; MAX_THREADS],
    token: Option<usize>,
    steps: u64,
    next_change: u64,
    change_period: u64,
    next_demotion: u64,
    backoff_denom: u64,
    backoff_spins: u32,
}

impl SchedState {
    fn recompute_token(&mut self) {
        self.token = (0..MAX_THREADS)
            .filter(|&i| self.registered[i])
            .max_by_key(|&i| self.priorities[i]);
        // Mirror into the lock-free cache that waiters spin on.
        TOKEN.store(self.token.unwrap_or(usize::MAX), Ordering::Release);
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static DEMOTIONS: cds_atomic::raw::AtomicU64 = cds_atomic::raw::AtomicU64::new(0);
/// Cache of `SchedState::token` (`usize::MAX` = none): non-token threads
/// wait on this atomic instead of hammering the state mutex, which would
/// otherwise serialize the token holder against every spinner.
static TOKEN: cds_atomic::raw::AtomicUsize = cds_atomic::raw::AtomicUsize::new(usize::MAX);
static STATE: Mutex<Option<SchedState>> = Mutex::new(None);
static RUN_LOCK: Mutex<()> = Mutex::new(());

thread_local! {
    static CUR_SLOT: Cell<Option<usize>> = const { Cell::new(None) };
}

fn state_lock() -> MutexGuard<'static, Option<SchedState>> {
    STATE.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// An installed stress scheduler; uninstalls on drop.
///
/// Holding this guard serializes stress rounds process-wide (the
/// scheduler state is global), so concurrently running stress tests take
/// turns instead of corrupting each other's schedules.
pub struct StressRun {
    _exclusive: MutexGuard<'static, ()>,
}

impl fmt::Debug for StressRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StressRun").finish_non_exhaustive()
    }
}

impl Drop for StressRun {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::Release);
        *state_lock() = None;
        TOKEN.store(usize::MAX, Ordering::Release);
    }
}

/// Installs a scheduler for one round. Worker threads must then
/// [`register`] with distinct indices; the round ends when the returned
/// guard drops.
pub fn install(cfg: StressConfig) -> StressRun {
    let exclusive = RUN_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
    // `cds-sync` sits below this crate, so its `Backoff` loops reach the
    // scheduler through an injected hook rather than a direct call.
    #[cfg(feature = "stress")]
    cds_sync::stress::set_yield_hook(yield_point_tagged);
    // The factored `cds_sync::Parker` likewise cannot ask this crate
    // whether a schedule is driving; give it the same answer `is_active`
    // gives the structure crates.
    #[cfg(feature = "stress")]
    cds_sync::stress::set_active_hook(is_active);
    let change_period = cfg.change_period;
    *state_lock() = Some(SchedState {
        rng: SplitMix64::new(mix_seed(cfg.seed, 0x5ced)),
        seed: cfg.seed,
        priorities: [0; MAX_THREADS],
        registered: [false; MAX_THREADS],
        token: None,
        steps: 0,
        next_change: change_period.max(1),
        change_period,
        // Demotions count down from well below every initial priority
        // (initial priorities have the top bit set), so each demoted
        // thread lands below all others — the PCT discipline.
        next_demotion: 1 << 32,
        backoff_denom: cfg.backoff_denom,
        backoff_spins: cfg.backoff_spins,
    });
    TOKEN.store(usize::MAX, Ordering::Release);
    ACTIVE.store(true, Ordering::Release);
    StressRun {
        _exclusive: exclusive,
    }
}

/// A worker thread's registration with the active scheduler; deregisters
/// (and hands the token onward) on drop.
pub struct ThreadSlot {
    slot: Option<usize>,
}

impl fmt::Debug for ThreadSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadSlot")
            .field("slot", &self.slot)
            .finish()
    }
}

impl Drop for ThreadSlot {
    fn drop(&mut self) {
        let Some(slot) = self.slot else { return };
        CUR_SLOT.with(|c| c.set(None));
        #[cfg(feature = "stress")]
        if explore::deregister(slot) {
            return;
        }
        if let Some(st) = state_lock().as_mut() {
            st.registered[slot] = false;
            st.recompute_token();
        }
    }
}

/// Registers the calling thread as worker `index` (0-based, < [`MAX_THREADS`]).
///
/// The worker's priority is a pure function of the run seed and `index`,
/// so schedules do not depend on the order in which the OS happens to
/// start the workers. A no-op returning an inert guard when no scheduler
/// is installed.
pub fn register(index: usize) -> ThreadSlot {
    assert!(index < MAX_THREADS, "worker index {index} out of range");
    #[cfg(feature = "stress")]
    if explore::register(index) {
        CUR_SLOT.with(|c| c.set(Some(index)));
        return ThreadSlot { slot: Some(index) };
    }
    let mut guard = state_lock();
    let Some(st) = guard.as_mut() else {
        return ThreadSlot { slot: None };
    };
    assert!(
        !st.registered[index],
        "worker index {index} registered twice"
    );
    st.registered[index] = true;
    // Top bit set keeps every initial priority above the demotion range.
    st.priorities[index] = mix_seed(st.seed, index as u64 + 1) | (1 << 63);
    st.recompute_token();
    drop(guard);
    CUR_SLOT.with(|c| c.set(Some(index)));
    ThreadSlot { slot: Some(index) }
}

/// A scheduling point; the hook the structure crates are instrumented with.
///
/// Without the `stress` feature this is an empty `#[inline]` function.
/// With it, registered workers cooperate under the installed scheduler as
/// described in the [module docs](self); unregistered threads and rounds
/// with no scheduler pass straight through.
#[inline]
pub fn yield_point() {
    yield_point_tagged(YieldTag::None);
}

/// [`yield_point`] carrying an access tag describing what the next step
/// touches (see [`YieldTag`]).
///
/// The PCT scheduler ignores tags; the systematic [`explore`] scheduler
/// derives its independence relation from them. Untagged points are
/// conservatively dependent on everything, so tagging is an optimization,
/// never a correctness requirement for instrumented code.
#[inline]
pub fn yield_point_tagged(tag: YieldTag) {
    #[cfg(feature = "stress")]
    yield_point_slow(tag);
    #[cfg(not(feature = "stress"))]
    let _ = tag;
}

#[cfg(feature = "stress")]
fn yield_point_slow(tag: YieldTag) {
    if !ACTIVE.load(Ordering::Acquire) {
        return;
    }
    let Some(slot) = CUR_SLOT.with(|c| c.get()) else {
        return;
    };
    if explore::mode_active() {
        explore::on_yield(slot, tag);
        return;
    }
    let mut spins: u32 = 0;
    loop {
        // Lock-free wait: only the (apparent) token holder touches the
        // state mutex, so spinners never serialize against its updates.
        let tok = TOKEN.load(Ordering::Acquire);
        if tok != slot && tok != usize::MAX {
            spins += 1;
            if spins > FAIRNESS_BOUND {
                // The token holder is stuck in the kernel (e.g. on a lock
                // we hold); fall through rather than deadlock.
                return;
            }
            std::thread::yield_now();
            continue;
        }
        let mut backoff = 0u32;
        {
            let mut guard = state_lock();
            let Some(st) = guard.as_mut() else { return };
            if !st.registered[slot] {
                return;
            }
            match st.token {
                Some(token) if token == slot => {
                    st.steps += 1;
                    if st.backoff_denom > 0 && st.rng.below(st.backoff_denom) == 0 {
                        backoff = st.backoff_spins;
                    }
                    if st.change_period > 0 && st.steps >= st.next_change {
                        st.next_change = st.steps + 1 + st.rng.below(st.change_period.max(1));
                        st.next_demotion -= 1;
                        st.priorities[slot] = st.next_demotion;
                        st.recompute_token();
                        DEMOTIONS.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Some(_) => {
                    // Raced with a token change; resume waiting.
                    drop(guard);
                    continue;
                }
                None => {}
            }
        }
        for _ in 0..backoff {
            std::hint::spin_loop();
        }
        return;
    }
}

/// The slot the calling thread registered with, if any.
#[cfg_attr(not(feature = "stress"), allow(dead_code))]
pub(crate) fn current_slot() -> Option<usize> {
    CUR_SLOT.with(|c| c.get())
}

/// Operation-boundary marker for weak-memory exploration.
///
/// Harnesses that drive per-thread operation sequences (the lincheck
/// explore driver) call this on the worker thread before each operation
/// and once after its last, giving the weak-memory model the real-time
/// completion edges linearizability is defined against: weak behaviors
/// stay confined to operations that actually overlap. A no-op in every
/// other configuration (default builds, PCT rounds, non-weak explore
/// windows), so callers need not gate it.
#[inline]
pub fn op_boundary() {
    #[cfg(feature = "stress")]
    if explore::mode_active() {
        if let Some(slot) = current_slot() {
            explore::op_boundary(slot);
        }
    }
}

/// Whether a stress scheduler is currently installed and active.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// Total priority-change (preemption) events injected since process start.
///
/// Diagnostics: a stress test can assert this moved to prove the `stress`
/// feature (and thus live scheduling) is compiled in.
pub fn demotions() -> u64 {
    DEMOTIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn yield_point_is_inert_without_scheduler() {
        // Must not block or panic from an unregistered thread.
        yield_point();
        assert!(!is_active());
    }

    #[test]
    fn install_register_uninstall_round_trip() {
        let run = install(StressConfig {
            seed: 42,
            ..StressConfig::default()
        });
        assert!(is_active());
        let worker = std::thread::spawn(|| {
            let _slot = register(0);
            for _ in 0..32 {
                yield_point();
            }
        });
        worker.join().unwrap();
        drop(run);
        assert!(!is_active());
    }

    #[cfg(feature = "stress")]
    #[test]
    fn two_workers_make_progress_under_scheduler() {
        use cds_atomic::raw::AtomicUsize;
        use std::sync::Arc;
        let run = install(StressConfig {
            seed: 7,
            change_period: 2,
            ..StressConfig::default()
        });
        let hits = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let hits = Arc::clone(&hits);
                std::thread::spawn(move || {
                    let _slot = register(i);
                    for _ in 0..100 {
                        yield_point();
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(run);
        assert_eq!(hits.load(Ordering::Relaxed), 200);
    }
}

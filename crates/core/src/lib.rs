//! Common traits for the `cds` concurrent data structure family.
//!
//! Every abstract type in the family — stack, queue, set, map, priority
//! queue, counter — is described by a trait here, and every implementation
//! crate provides several interchangeable implementations of the relevant
//! trait:
//!
//! | Trait | Coarse-grained | Fine-grained | Lock-free |
//! |---|---|---|---|
//! | [`ConcurrentStack`] | `cds-stack::CoarseStack` | `cds-stack::EliminationBackoffStack`, `cds-stack::FcStack` | `cds-stack::TreiberStack` |
//! | [`ConcurrentQueue`] | `cds-queue::CoarseQueue` | `cds-queue::TwoLockQueue`, `cds-queue::FcQueue` | `cds-queue::MsQueue`, `cds-queue::BoundedQueue` |
//! | [`ConcurrentSet`] | `cds-list::CoarseList`, … | `cds-list::FineList`, `cds-list::LazyList`, … | `cds-list::HarrisMichaelList`, `cds-skiplist::LockFreeSkipList`, `cds-tree::LockFreeBst` |
//! | [`ConcurrentMap`] | `cds-map::CoarseMap` | `cds-map::StripedHashMap` | `cds-map::SplitOrderedHashMap` |
//! | [`ConcurrentPriorityQueue`] | `cds-prio::CoarseBinaryHeap` | — | `cds-prio::SkipListPriorityQueue` |
//! | [`ConcurrentCounter`] | `cds-counter::LockCounter` | `cds-counter::ShardedCounter`, `cds-counter::CombiningTreeCounter` | `cds-counter::AtomicCounter` |
//!
//! The traits let the test suite, the linearizability checker, and the
//! benchmark harness be written once and instantiated for every
//! implementation.
//!
//! # Semantics
//!
//! All operations are **linearizable** unless an implementation documents a
//! weaker guarantee (e.g. `ShardedCounter::get` is only quiescently
//! consistent). Sets and maps follow the literature's *dictionary*
//! semantics: `insert` is insert-if-absent and reports whether it inserted;
//! `remove` reports whether the element was present.
//!
//! # Example
//!
//! ```
//! use cds_core::ConcurrentStack;
//!
//! fn drain<T, S: ConcurrentStack<T>>(stack: &S) -> Vec<T> {
//!     std::iter::from_fn(|| stack.pop()).collect()
//! }
//! ```

#![warn(missing_docs)]

mod bound;
pub mod stress;

/// Contention telemetry (re-export of [`cds_obs`]): allocation-free event
/// counters compiled in by the `telemetry` feature, no-ops otherwise.
pub use cds_obs as telemetry;

pub use bound::Bound;

/// A thread-safe last-in-first-out stack.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentStack;
///
/// fn push_two<S: ConcurrentStack<i32>>(s: &S) {
///     s.push(1);
///     s.push(2);
///     assert_eq!(s.pop(), Some(2));
/// }
/// ```
pub trait ConcurrentStack<T>: Send + Sync {
    /// A short implementation name for benchmark reports, e.g. `"treiber"`.
    const NAME: &'static str;

    /// Pushes `value` onto the top of the stack.
    fn push(&self, value: T);

    /// Pops the most recently pushed element, or `None` if the stack is
    /// empty at the linearization point.
    fn pop(&self) -> Option<T>;

    /// Returns `true` if the stack was empty at some point during the call.
    fn is_empty(&self) -> bool;
}

/// A thread-safe first-in-first-out queue.
///
/// Bounded implementations may spin briefly when full; use their inherent
/// `try_` methods for non-blocking access.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentQueue;
///
/// fn transfer<Q: ConcurrentQueue<u32>>(q: &Q) {
///     q.enqueue(1);
///     assert_eq!(q.dequeue(), Some(1));
/// }
/// ```
pub trait ConcurrentQueue<T>: Send + Sync {
    /// A short implementation name for benchmark reports, e.g. `"ms"`.
    const NAME: &'static str;

    /// Appends `value` at the tail.
    fn enqueue(&self, value: T);

    /// Removes the element at the head, or `None` if the queue is empty at
    /// the linearization point.
    fn dequeue(&self) -> Option<T>;

    /// Returns `true` if the queue was empty at some point during the call.
    fn is_empty(&self) -> bool;
}

/// A thread-safe set of ordered keys (a *dictionary* in the classical
/// terminology).
///
/// `insert` is insert-if-absent: concurrent inserts of the same key agree
/// on exactly one winner.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentSet;
///
/// fn dedup<S: ConcurrentSet<u64>>(s: &S, xs: &[u64]) -> usize {
///     xs.iter().filter(|&&x| s.insert(x)).count()
/// }
/// ```
pub trait ConcurrentSet<T>: Send + Sync {
    /// A short implementation name for benchmark reports, e.g. `"lazy"`.
    const NAME: &'static str;

    /// Inserts `value` if absent; returns `true` if this call inserted it.
    fn insert(&self, value: T) -> bool;

    /// Removes `value` if present; returns `true` if this call removed it.
    fn remove(&self, value: &T) -> bool;

    /// Returns `true` if `value` was in the set at the linearization point.
    fn contains(&self, value: &T) -> bool;

    /// Number of elements.
    ///
    /// For lock-free implementations this may take linear time and is only
    /// quiescently consistent; it is intended for tests and diagnostics.
    fn len(&self) -> usize;

    /// Returns `true` if the set contains no elements (see [`len`](ConcurrentSet::len)).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A thread-safe key-to-value map with dictionary semantics.
///
/// `V: Clone` because lock-free implementations cannot move a value out of
/// a node that concurrent readers may still be examining; `get` therefore
/// returns a clone.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentMap;
///
/// fn cache_lookup<M: ConcurrentMap<u64, String>>(m: &M, k: u64) -> String {
///     if let Some(v) = m.get(&k) {
///         return v;
///     }
///     let v = format!("value-{k}");
///     m.insert(k, v.clone());
///     v
/// }
/// ```
pub trait ConcurrentMap<K, V: Clone>: Send + Sync {
    /// A short implementation name for benchmark reports, e.g. `"striped"`.
    const NAME: &'static str;

    /// Inserts `(key, value)` if `key` is absent; returns `true` if this
    /// call inserted it (the value is dropped otherwise).
    fn insert(&self, key: K, value: V) -> bool;

    /// Removes `key` if present; returns `true` if this call removed it.
    fn remove(&self, key: &K) -> bool;

    /// Returns a clone of the value for `key`, if present at the
    /// linearization point.
    fn get(&self, key: &K) -> Option<V>;

    /// Returns `true` if `key` was present at the linearization point.
    fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries (may be linear-time; tests/diagnostics only).
    fn len(&self) -> usize;

    /// Returns `true` if the map contains no entries (see [`len`](ConcurrentMap::len)).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A thread-safe priority queue delivering the minimum element first.
///
/// `T: Clone` for the same reason as [`ConcurrentMap`]: lock-free
/// implementations return the minimum by clone, not by move.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentPriorityQueue;
///
/// fn schedule<P: ConcurrentPriorityQueue<u32>>(p: &P) {
///     p.insert(30);
///     p.insert(10);
///     assert_eq!(p.remove_min(), Some(10));
/// }
/// ```
pub trait ConcurrentPriorityQueue<T: Ord + Clone>: Send + Sync {
    /// A short implementation name for benchmark reports, e.g. `"skiplist"`.
    const NAME: &'static str;

    /// Inserts `value`; returns `true` if it was not already present
    /// (set-like priority queues reject duplicates).
    fn insert(&self, value: T) -> bool;

    /// Removes and returns the smallest element, or `None` if empty at the
    /// linearization point.
    fn remove_min(&self) -> Option<T>;

    /// Returns a clone of the smallest element without removing it.
    fn peek_min(&self) -> Option<T>;

    /// Number of elements (may be linear-time; tests/diagnostics only).
    fn len(&self) -> usize;

    /// Returns `true` if empty (see [`len`](ConcurrentPriorityQueue::len)).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A thread-safe counter.
///
/// The simplest shared object, and the classic vehicle for studying
/// contention: a single hot atomic scales poorly, so the literature builds
/// sharded and combining-tree counters that trade read precision or latency
/// for write throughput.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentCounter;
///
/// fn count_events<C: ConcurrentCounter>(c: &C, events: usize) {
///     for _ in 0..events {
///         c.increment();
///     }
///     assert!(c.get() >= events as i64);
/// }
/// ```
pub trait ConcurrentCounter: Send + Sync {
    /// A short implementation name for benchmark reports, e.g. `"sharded"`.
    const NAME: &'static str;

    /// Adds one to the counter.
    fn increment(&self) {
        self.add(1);
    }

    /// Adds `delta` (may be negative).
    fn add(&self, delta: i64);

    /// Reads the current value.
    ///
    /// Implementations document whether the read is linearizable or only
    /// quiescently consistent.
    fn get(&self) -> i64;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The traits must remain implementable and object-usable via generics;
    /// a toy implementation exercises the default methods.
    struct ToyCounter(cds_atomic::raw::AtomicI64);

    impl ConcurrentCounter for ToyCounter {
        const NAME: &'static str = "toy";

        fn add(&self, delta: i64) {
            self.0.fetch_add(delta, cds_atomic::raw::Ordering::Relaxed);
        }

        fn get(&self) -> i64 {
            self.0.load(cds_atomic::raw::Ordering::Relaxed)
        }
    }

    #[test]
    fn default_increment_adds_one() {
        let c = ToyCounter(cds_atomic::raw::AtomicI64::new(0));
        c.increment();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(ToyCounter::NAME, "toy");
    }
}

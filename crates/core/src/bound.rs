//! Sentinel-extended keys for ordered structures with head/tail sentinels.

use std::cmp::Ordering;

/// A key extended with −∞ and +∞ sentinels.
///
/// Ordered structures (lists, skiplists, trees) keep permanent head (−∞)
/// and sometimes tail (+∞) sentinel nodes so every real node has a
/// predecessor and successor; `Bound` gives those sentinels a total order
/// against real keys without requiring `T` itself to have extreme values.
///
/// # Example
///
/// ```
/// use cds_core::Bound;
///
/// assert!(Bound::NegInf < Bound::Finite(i64::MIN));
/// assert!(Bound::Finite(i64::MAX) < Bound::PosInf);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound<T> {
    /// Less than every finite key.
    NegInf,
    /// An ordinary key.
    Finite(T),
    /// Greater than every finite key.
    PosInf,
}

impl<T> Bound<T> {
    /// Returns the finite key, if this is one.
    pub fn finite(&self) -> Option<&T> {
        match self {
            Bound::Finite(v) => Some(v),
            _ => None,
        }
    }

    /// Consumes the bound, returning the finite key if present.
    pub fn into_finite(self) -> Option<T> {
        match self {
            Bound::Finite(v) => Some(v),
            _ => None,
        }
    }
}

impl<T: Ord> Bound<T> {
    /// Compares against a finite key.
    pub fn cmp_key(&self, key: &T) -> Ordering {
        match self {
            Bound::NegInf => Ordering::Less,
            Bound::Finite(v) => v.cmp(key),
            Bound::PosInf => Ordering::Greater,
        }
    }
}

impl<T: Ord> PartialOrd for Bound<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for Bound<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        use Bound::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Ordering::Equal,
            (NegInf, _) | (_, PosInf) => Ordering::Less,
            (_, NegInf) | (PosInf, _) => Ordering::Greater,
            (Finite(a), Finite(b)) => a.cmp(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_with_sentinels() {
        assert!(Bound::NegInf < Bound::Finite(i32::MIN));
        assert!(Bound::Finite(i32::MAX) < Bound::PosInf);
        assert!(Bound::Finite(1) < Bound::Finite(2));
        assert_eq!(Bound::Finite(3), Bound::Finite(3));
        assert!(Bound::<i32>::NegInf < Bound::PosInf);
    }

    #[test]
    fn cmp_key_matches_order() {
        assert_eq!(Bound::NegInf.cmp_key(&5), Ordering::Less);
        assert_eq!(Bound::PosInf.cmp_key(&5), Ordering::Greater);
        assert_eq!(Bound::Finite(5).cmp_key(&5), Ordering::Equal);
        assert_eq!(Bound::Finite(4).cmp_key(&5), Ordering::Less);
    }

    #[test]
    fn finite_accessors() {
        assert_eq!(Bound::Finite(7).finite(), Some(&7));
        assert_eq!(Bound::<i32>::PosInf.finite(), None);
        assert_eq!(Bound::Finite(7).into_finite(), Some(7));
        assert_eq!(Bound::<i32>::NegInf.into_finite(), None);
    }
}

use cds_atomic::{AtomicBool, AtomicI64, Ordering};
use std::fmt;

use cds_core::ConcurrentCounter;
use cds_sync::CachePadded;

use crate::sharded::thread_index;

/// One tree node: a parking area for deltas plus a try-lock electing the
/// thread that carries combined deltas toward the root.
struct Node {
    pending: AtomicI64,
    combining: AtomicBool,
}

/// A software combining-tree counter (Goodman, Vernon & Woest; Herlihy &
/// Shavit ch. 12).
///
/// Threads are assigned to the leaves of a binary tree and climb toward the
/// root to apply their increment. At each node exactly one climber — the
/// *combiner*, elected with a try-lock — proceeds upward, **absorbing** the
/// deltas that other threads parked at the node; losers deposit their delta
/// and return immediately. Under p-thread contention the root sees far
/// fewer than p read-modify-writes, which was the point on the bus-based
/// multiprocessors the technique was invented for.
///
/// This implementation specializes the classical tree to operations that
/// need no return value (`add`), which removes the result-distribution
/// phase: a parked delta is simply carried up by a later combiner or
/// included in a read. The invariant maintained is
/// `true total = root + Σ node.pending`, so:
///
/// * `add` is **linearizable** (the delta is globally visible once parked
///   or applied);
/// * `get` sums the root and every node's parking area and is
///   **quiescently consistent**, exact whenever no `add` is in flight —
///   the same guarantee as [`ShardedCounter`](crate::ShardedCounter).
///
/// On modern cache-coherent hardware the striped counter usually wins;
/// experiment E1 measures precisely this historical trade-off.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentCounter;
/// use cds_counter::CombiningTreeCounter;
///
/// let c = CombiningTreeCounter::new();
/// c.add(3);
/// assert_eq!(c.get(), 3);
/// ```
pub struct CombiningTreeCounter {
    /// Implicit binary tree: node `i`'s parent is `(i - 1) / 2`; the last
    /// `(len + 1) / 2` nodes are leaves.
    nodes: Box<[CachePadded<Node>]>,
    root: CachePadded<AtomicI64>,
    leaves: usize,
}

impl CombiningTreeCounter {
    /// Default number of leaves (threads hash onto them).
    const DEFAULT_LEAVES: usize = 8;

    /// Creates a tree with the default width.
    pub fn new() -> Self {
        Self::with_leaves(Self::DEFAULT_LEAVES)
    }

    /// Creates a tree with `leaves` leaf nodes (rounded up to a power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero.
    pub fn with_leaves(leaves: usize) -> Self {
        assert!(leaves > 0, "need at least one leaf");
        let leaves = leaves.next_power_of_two();
        let node_count = 2 * leaves - 1;
        CombiningTreeCounter {
            nodes: (0..node_count)
                .map(|_| {
                    CachePadded::new(Node {
                        pending: AtomicI64::new(0),
                        combining: AtomicBool::new(false),
                    })
                })
                .collect(),
            root: CachePadded::new(AtomicI64::new(0)),
            leaves,
        }
    }

    fn leaf_index(&self) -> usize {
        let first_leaf = self.nodes.len() - self.leaves;
        first_leaf + (thread_index() & (self.leaves - 1))
    }
}

impl Default for CombiningTreeCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentCounter for CombiningTreeCounter {
    const NAME: &'static str = "combining";

    fn add(&self, delta: i64) {
        let mut carry = delta;
        let mut index = self.leaf_index();
        loop {
            cds_core::stress::yield_point();
            let node = &self.nodes[index];
            let elected = node
                .combining
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok();
            cds_obs::cas_outcome(elected);
            if elected {
                // We are the combiner here: absorb parked deltas and climb.
                carry += node.pending.swap(0, Ordering::AcqRel);
                node.combining.store(false, Ordering::Release);
                if index == 0 {
                    // One full climb committed at the root = one combining
                    // round (the tree analogue of a flat-combining pass).
                    cds_obs::count(cds_obs::Event::FcCombineRounds);
                    self.root.fetch_add(carry, Ordering::AcqRel);
                    return;
                }
                index = (index - 1) / 2;
            } else {
                // A combiner is active at this node: park the delta for it
                // (or for a later climber / reader) and leave. The sum
                // invariant makes the delta immediately visible to `get`.
                node.pending.fetch_add(carry, Ordering::AcqRel);
                return;
            }
        }
    }

    fn get(&self) -> i64 {
        // total = root + Σ pending (see type-level docs).
        let mut total = self.root.load(Ordering::Acquire);
        for node in self.nodes.iter() {
            total += node.pending.load(Ordering::Acquire);
        }
        total
    }
}

impl fmt::Debug for CombiningTreeCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CombiningTreeCounter")
            .field("leaves", &self.leaves)
            .field("value", &self.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentCounter;
    use std::sync::Arc;

    #[test]
    fn sequential_adds_are_exact() {
        let c = CombiningTreeCounter::with_leaves(2);
        for i in 1..=10 {
            c.add(i);
        }
        assert_eq!(c.get(), 55);
    }

    #[test]
    fn parked_deltas_are_visible_to_get() {
        let c = CombiningTreeCounter::with_leaves(1);
        // Manually park a delta by holding the root's combining flag.
        c.nodes[0].combining.store(true, Ordering::SeqCst);
        c.add(5); // must park, not spin
        assert_eq!(c.get(), 5, "parked delta invisible");
        c.nodes[0].combining.store(false, Ordering::SeqCst);
        c.add(1); // climbs, absorbing the parked 5
        assert_eq!(c.get(), 6);
        assert_eq!(c.root.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn quiescent_total_is_exact_under_contention() {
        let c = Arc::new(CombiningTreeCounter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        c.increment();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 16_000);
    }
}

use std::fmt;

use cds_core::ConcurrentCounter;
use parking_lot::Mutex;

/// A mutex-protected counter: the coarse-grained baseline of experiment E1.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentCounter;
/// use cds_counter::LockCounter;
///
/// let c = LockCounter::new();
/// c.increment();
/// assert_eq!(c.get(), 1);
/// ```
#[derive(Default)]
pub struct LockCounter {
    value: Mutex<i64>,
}

impl LockCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ConcurrentCounter for LockCounter {
    const NAME: &'static str = "lock";

    fn add(&self, delta: i64) {
        *self.value.lock() += delta;
    }

    fn get(&self) -> i64 {
        *self.value.lock()
    }
}

impl fmt::Debug for LockCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockCounter")
            .field("value", &self.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentCounter;

    #[test]
    fn add_and_get() {
        let c = LockCounter::new();
        c.add(3);
        c.add(-1);
        assert_eq!(c.get(), 2);
    }
}

use cds_atomic::{AtomicI64, Ordering};
use std::fmt;

use cds_core::ConcurrentCounter;

/// A single-atomic counter: one `fetch_add` per increment.
///
/// The fastest possible counter for one thread and the reference point for
/// contention studies: every increment is a read-modify-write on the same
/// cache line, so throughput *per core* falls as cores are added
/// (experiment E1 shows the curve).
///
/// Both `add` and `get` are linearizable.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentCounter;
/// use cds_counter::AtomicCounter;
///
/// let c = AtomicCounter::new();
/// c.add(41);
/// c.increment();
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Default)]
pub struct AtomicCounter {
    value: AtomicI64,
}

impl AtomicCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ConcurrentCounter for AtomicCounter {
    const NAME: &'static str = "atomic";

    fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    fn get(&self) -> i64 {
        self.value.load(Ordering::SeqCst)
    }
}

impl fmt::Debug for AtomicCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicCounter")
            .field("value", &self.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentCounter;

    #[test]
    fn add_and_get() {
        let c = AtomicCounter::new();
        c.add(7);
        assert_eq!(c.get(), 7);
    }
}

//! Concurrent counters — the classic vehicle for studying contention.
//!
//! A shared counter is the smallest possible shared object, yet a single
//! hot cache line caps its throughput no matter how many cores increment
//! it. The literature's progression, all implemented here behind
//! [`cds_core::ConcurrentCounter`]:
//!
//! * [`LockCounter`] — a mutex around an integer; the coarse baseline.
//! * [`AtomicCounter`] — `fetch_add` on one atomic; optimal uncontended,
//!   but serializes on the cache line under contention.
//! * [`ShardedCounter`] — per-thread-striped cells summed on read;
//!   linearizable `add`, *quiescently consistent* `get` (the value is exact
//!   whenever no increments are in flight).
//! * [`FcCounter`] — a flat-combining counter (Hendler et al., 2010):
//!   the modern take on combining.
//! * [`CombiningTreeCounter`] — a software combining tree (Goodman et al.;
//!   Herlihy & Shavit ch. 12): concurrent increments climbing the tree
//!   merge into one, so `p` threads issue far fewer than `p` RMWs on the
//!   root. Historically important; usually slower than sharding on modern
//!   cache-coherent hardware — exactly the comparison experiment E1 draws.
//!
//! # Example
//!
//! ```
//! use cds_core::ConcurrentCounter;
//! use cds_counter::ShardedCounter;
//!
//! let c = ShardedCounter::new();
//! c.add(5);
//! c.increment();
//! assert_eq!(c.get(), 6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod atomic;
mod combining;
mod fc;
mod lock;
mod sharded;

pub use atomic::AtomicCounter;
pub use combining::CombiningTreeCounter;
pub use fc::FcCounter;
pub use lock::LockCounter;
pub use sharded::ShardedCounter;

#[cfg(test)]
mod tests {
    use cds_core::ConcurrentCounter;
    use std::sync::Arc;

    fn exact_total<C: ConcurrentCounter + Default + 'static>() {
        const THREADS: i64 = 4;
        const PER_THREAD: i64 = 10_000;
        let c = Arc::new(C::default());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.increment();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), THREADS * PER_THREAD);
    }

    #[test]
    fn all_counters_count_exactly() {
        exact_total::<super::LockCounter>();
        exact_total::<super::AtomicCounter>();
        exact_total::<super::ShardedCounter>();
        exact_total::<super::CombiningTreeCounter>();
        exact_total::<super::FcCounter>();
    }

    #[test]
    fn negative_deltas() {
        use super::*;
        let c = AtomicCounter::new();
        c.add(10);
        c.add(-4);
        assert_eq!(c.get(), 6);
        let s = ShardedCounter::new();
        s.add(-3);
        assert_eq!(s.get(), -3);
    }
}

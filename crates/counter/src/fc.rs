use std::fmt;

use cds_core::ConcurrentCounter;
use cds_sync::{FcStructure, FlatCombining};

struct SeqCounter(i64);

impl FcStructure for SeqCounter {
    type Op = i64;
    type Res = i64;

    fn apply(&mut self, delta: i64) -> i64 {
        self.0 += delta;
        self.0
    }
}

/// A **flat-combining** counter (Hendler et al., SPAA 2010).
///
/// One combiner thread applies everyone's published deltas per lock
/// acquisition. Included in experiment E1 as the modern software-combining
/// alternative to the classical
/// [`CombiningTreeCounter`](crate::CombiningTreeCounter): same idea
/// (combine instead of contend), flat publication array instead of a tree.
///
/// Both `add` and `get` are **linearizable** (every operation executes
/// under the combiner lock).
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentCounter;
/// use cds_counter::FcCounter;
///
/// let c = FcCounter::new();
/// c.add(5);
/// assert_eq!(c.get(), 5);
/// ```
pub struct FcCounter {
    fc: FlatCombining<SeqCounter>,
}

impl FcCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        FcCounter {
            fc: FlatCombining::new(SeqCounter(0)),
        }
    }
}

impl Default for FcCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentCounter for FcCounter {
    const NAME: &'static str = "flat-combining";

    fn add(&self, delta: i64) {
        cds_core::stress::yield_point();
        self.fc.apply(delta);
    }

    fn get(&self) -> i64 {
        cds_core::stress::yield_point();
        self.fc.apply(0)
    }
}

impl fmt::Debug for FcCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FcCounter").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentCounter;

    #[test]
    fn add_and_get() {
        let c = FcCounter::new();
        c.add(3);
        c.increment();
        assert_eq!(c.get(), 4);
    }
}

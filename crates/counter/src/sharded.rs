use cds_atomic::{AtomicI64, AtomicUsize, Ordering};
use std::fmt;

use cds_core::ConcurrentCounter;
use cds_sync::CachePadded;

/// Returns a small dense id for the calling thread, assigned on first use.
///
/// Used by the striped structures to spread threads across shards without
/// hashing `ThreadId` (whose values are not dense).
pub(crate) fn thread_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    INDEX.with(|i| *i)
}

/// A striped counter: per-thread shards summed on read.
///
/// Each thread increments its own cache-line-padded cell, so increments
/// from different threads never contend — write throughput scales linearly
/// with cores (the design of Java's `LongAdder`). The price is paid on
/// reads: [`get`](ConcurrentCounter::get) sums all shards and is only
/// **quiescently consistent** — it returns the exact total whenever no
/// increments are concurrently in flight, but a concurrent read may miss
/// in-flight increments (it never double-counts).
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentCounter;
/// use cds_counter::ShardedCounter;
///
/// let c = ShardedCounter::new();
/// c.add(2);
/// assert_eq!(c.get(), 2);
/// ```
pub struct ShardedCounter {
    shards: Box<[CachePadded<AtomicI64>]>,
}

impl ShardedCounter {
    /// Default number of shards (covers typical core counts).
    const DEFAULT_SHARDS: usize = 32;

    /// Creates a counter with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }

    /// Creates a counter with `shards` stripes (rounded up to a power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let shards = shards.next_power_of_two();
        ShardedCounter {
            shards: (0..shards)
                .map(|_| CachePadded::new(AtomicI64::new(0)))
                .collect(),
        }
    }

    fn my_shard(&self) -> &AtomicI64 {
        &self.shards[thread_index() & (self.shards.len() - 1)]
    }
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentCounter for ShardedCounter {
    const NAME: &'static str = "sharded";

    fn add(&self, delta: i64) {
        cds_core::stress::yield_point();
        self.my_shard().fetch_add(delta, Ordering::Relaxed);
    }

    fn get(&self) -> i64 {
        self.shards
            .iter()
            .map(|s| {
                cds_core::stress::yield_point();
                s.load(Ordering::Acquire)
            })
            .sum()
    }
}

impl fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedCounter")
            .field("shards", &self.shards.len())
            .field("value", &self.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentCounter;
    use std::sync::Arc;

    #[test]
    fn single_thread_is_exact() {
        let c = ShardedCounter::with_shards(4);
        for _ in 0..100 {
            c.increment();
        }
        c.add(-50);
        assert_eq!(c.get(), 50);
    }

    #[test]
    fn quiescent_reads_are_exact() {
        let c = Arc::new(ShardedCounter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.increment();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn thread_indices_are_distinct() {
        let a = thread_index();
        let b = std::thread::spawn(thread_index).join().unwrap();
        assert_ne!(a, b);
        // Stable within a thread.
        assert_eq!(a, thread_index());
    }
}

//! Concurrent queues and work-stealing deques.
//!
//! Implementations of [`cds_core::ConcurrentQueue`] covering the classical
//! design space, plus the two specialized producers/consumers structures
//! the literature treats alongside queues:
//!
//! * [`CoarseQueue`] — `VecDeque` behind one mutex; the baseline.
//! * [`TwoLockQueue`] — Michael & Scott's two-lock queue: separate head and
//!   tail locks let one enqueuer and one dequeuer run in parallel.
//! * [`FcQueue`] — a flat-combining queue (Hendler et al., 2010).
//! * [`MsQueue`] — Michael & Scott's lock-free queue (PODC '96), the
//!   algorithm inside `java.util.concurrent.ConcurrentLinkedQueue`, with
//!   epoch-based reclamation.
//! * [`BoundedQueue`] — a fixed-capacity MPMC array queue using per-slot
//!   sequence numbers (Vyukov's design); no allocation after construction.
//! * [`SpscRingBuffer`] — Lamport's single-producer single-consumer ring:
//!   wait-free, synchronization by two indices only.
//! * [`ChaseLevDeque`] — the Chase–Lev work-stealing deque: the owner
//!   pushes and pops at the bottom without synchronization in the common
//!   case; thieves steal from the top with a CAS.
//!
//! # Example
//!
//! ```
//! use cds_core::ConcurrentQueue;
//! use cds_queue::MsQueue;
//!
//! let q = MsQueue::new();
//! q.enqueue("job");
//! assert_eq!(q.dequeue(), Some("job"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bounded;
mod chase_lev;
mod coarse;
mod fc;
mod ms;
mod spsc;
mod two_lock;

#[cfg(feature = "stress")]
#[doc(hidden)]
pub use bounded::set_claim_window_yields;
pub use bounded::BoundedQueue;
pub use chase_lev::{ChaseLevDeque, Steal, Stealer, Worker, MAX_BATCH};
pub use coarse::CoarseQueue;
pub use fc::FcQueue;
#[cfg(feature = "stress")]
pub use ms::set_relaxed_link;
pub use ms::MsQueue;
pub use spsc::{spsc_ring_buffer, SpscConsumer, SpscProducer, SpscRingBuffer};
pub use two_lock::TwoLockQueue;

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentQueue;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn fifo_when_sequential<Q: ConcurrentQueue<u32>>(q: Q) {
        assert!(q.is_empty());
        assert_eq!(q.dequeue(), None);
        for i in 0..100 {
            q.enqueue(i);
        }
        assert!(!q.is_empty());
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert!(q.is_empty());
    }

    fn no_loss_no_duplication<Q: ConcurrentQueue<u64> + 'static>(q: Q) {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 2_000;
        let q = Arc::new(q);
        let producers: Vec<_> = (0..THREADS)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        q.enqueue(t * PER_THREAD + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..THREADS)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..PER_THREAD / 2 {
                        if let Some(v) = q.dequeue() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut seen: HashSet<u64> = HashSet::new();
        for c in consumers {
            for v in c.join().unwrap() {
                assert!(seen.insert(v), "duplicate dequeue of {v}");
            }
        }
        while let Some(v) = q.dequeue() {
            assert!(seen.insert(v), "duplicate dequeue of {v}");
        }
        assert_eq!(seen.len() as u64, THREADS * PER_THREAD, "lost elements");
    }

    fn per_producer_order_is_preserved<Q: ConcurrentQueue<u64> + 'static>(q: Q) {
        // FIFO per producer: a consumer must see each producer's elements in
        // increasing order.
        const THREADS: u64 = 2;
        const PER_THREAD: u64 = 3_000;
        let q = Arc::new(q);
        let producers: Vec<_> = (0..THREADS)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        q.enqueue(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut last = vec![-1i64; THREADS as usize];
        while let Some(v) = q.dequeue() {
            let t = (v / 1_000_000) as usize;
            let i = (v % 1_000_000) as i64;
            assert!(i > last[t], "per-producer order violated");
            last[t] = i;
        }
    }

    #[test]
    fn all_implementations_are_fifo() {
        fifo_when_sequential(CoarseQueue::new());
        fifo_when_sequential(TwoLockQueue::new());
        fifo_when_sequential(MsQueue::new());
        fifo_when_sequential(BoundedQueue::with_capacity(128));
        fifo_when_sequential(FcQueue::new());
    }

    #[test]
    fn no_element_lost_or_duplicated_under_contention() {
        no_loss_no_duplication(CoarseQueue::new());
        no_loss_no_duplication(TwoLockQueue::new());
        no_loss_no_duplication(MsQueue::new());
        // Capacity must cover all in-flight elements: consumers stop after a
        // fixed pop budget, so a smaller queue would leave producers spinning
        // on a full queue forever.
        no_loss_no_duplication(BoundedQueue::with_capacity(16_384));
        no_loss_no_duplication(FcQueue::new());
    }

    #[test]
    fn per_producer_fifo_order() {
        per_producer_order_is_preserved(CoarseQueue::new());
        per_producer_order_is_preserved(TwoLockQueue::new());
        per_producer_order_is_preserved(MsQueue::new());
        per_producer_order_is_preserved(BoundedQueue::with_capacity(8192));
    }
}

use cds_atomic::{AtomicPtr, Ordering};
use std::fmt;
use std::ptr;

use cds_core::ConcurrentQueue;
use parking_lot::Mutex;

struct Node<T> {
    /// `None` only for the sentinel.
    value: Option<T>,
    /// Atomic because when the queue is empty the enqueuer (under the tail
    /// lock) writes the sentinel's `next` while a dequeuer (under the head
    /// lock) reads it — the algorithm's one deliberate cross-lock access.
    next: AtomicPtr<Node<T>>,
}

/// Michael & Scott's **two-lock** queue (PODC '96).
///
/// A singly-linked list with a permanent sentinel at the head. Enqueue
/// touches only the tail pointer, dequeue only the head pointer, so each
/// gets its own lock and one producer can run concurrently with one
/// consumer. The sentinel guarantees head and tail never point at the same
/// *mutable* node, which is what makes the two critical sections
/// independent.
///
/// The classic halfway point between [`CoarseQueue`](crate::CoarseQueue)
/// and the lock-free [`MsQueue`](crate::MsQueue) in experiment E3.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentQueue;
/// use cds_queue::TwoLockQueue;
///
/// let q = TwoLockQueue::new();
/// q.enqueue("x");
/// assert_eq!(q.dequeue(), Some("x"));
/// ```
pub struct TwoLockQueue<T> {
    head: Mutex<*mut Node<T>>,
    tail: Mutex<*mut Node<T>>,
}

// SAFETY: nodes are only touched under the appropriate lock; values move
// across threads by `T: Send`.
unsafe impl<T: Send> Send for TwoLockQueue<T> {}
unsafe impl<T: Send> Sync for TwoLockQueue<T> {}

impl<T> TwoLockQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let sentinel = Box::into_raw(Box::new(Node {
            value: None,
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        TwoLockQueue {
            head: Mutex::new(sentinel),
            tail: Mutex::new(sentinel),
        }
    }
}

impl<T> Default for TwoLockQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> ConcurrentQueue<T> for TwoLockQueue<T> {
    const NAME: &'static str = "two-lock";

    fn enqueue(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            value: Some(value),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        let mut tail = self.tail.lock();
        // SAFETY: `*tail` is the last node, owned by the queue; only the
        // tail-lock holder writes its `next`. Release publishes the node's
        // initialization to the dequeuer's Acquire load.
        unsafe { (**tail).next.store(node, Ordering::Release) };
        *tail = node;
    }

    fn dequeue(&self) -> Option<T> {
        let mut head = self.head.lock();
        let sentinel = *head;
        // SAFETY: the sentinel is owned by the queue and freed only by the
        // head-lock holder (us). Acquire pairs with the enqueuer's Release
        // store so the new node's fields are visible.
        let next = unsafe { (*sentinel).next.load(Ordering::Acquire) };
        if next.is_null() {
            return None;
        }
        // SAFETY: `next` is fully initialized (its fields were written
        // before it was linked under the tail lock, and linking stores are
        // ordered by the mutex release).
        let value = unsafe { (*next).value.take() };
        *head = next; // `next` becomes the new sentinel
        drop(head);
        // SAFETY: the old sentinel is unlinked and only we reference it.
        unsafe { drop(Box::from_raw(sentinel)) };
        debug_assert!(value.is_some(), "non-sentinel node without a value");
        value
    }

    fn is_empty(&self) -> bool {
        let head = self.head.lock();
        // SAFETY: as in `dequeue`.
        unsafe { (**head).next.load(Ordering::Acquire).is_null() }
    }
}

impl<T> Drop for TwoLockQueue<T> {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: unique access; all nodes belong to the queue.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next.load(Ordering::Relaxed);
        }
    }
}

impl<T> fmt::Debug for TwoLockQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TwoLockQueue").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn sequential_fifo() {
        let q = TwoLockQueue::new();
        for i in 0..10 {
            q.enqueue(i);
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn drop_frees_unconsumed_values() {
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let q = TwoLockQueue::new();
            for _ in 0..6 {
                q.enqueue(D(Arc::clone(&drops)));
            }
            drop(q.dequeue());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn producer_and_consumer_in_parallel() {
        let q = Arc::new(TwoLockQueue::new());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    q.enqueue(i);
                }
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut expected = 0;
                while expected < 5_000 {
                    match q.dequeue() {
                        Some(v) => {
                            assert_eq!(v, expected);
                            expected += 1;
                        }
                        None => std::thread::yield_now(),
                    }
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert!(q.is_empty());
    }
}

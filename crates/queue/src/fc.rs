use std::collections::VecDeque;
use std::fmt;

use cds_core::ConcurrentQueue;
use cds_sync::{FcStructure, FlatCombining};

struct SeqQueue<T>(VecDeque<T>);

enum Op<T> {
    Enqueue(T),
    Dequeue,
}

impl<T> FcStructure for SeqQueue<T> {
    type Op = Op<T>;
    type Res = Option<T>;

    fn apply(&mut self, op: Op<T>) -> Option<T> {
        match op {
            Op::Enqueue(v) => {
                self.0.push_back(v);
                None
            }
            Op::Dequeue => self.0.pop_front(),
        }
    }
}

/// A **flat-combining** queue (Hendler et al., SPAA 2010).
///
/// A `VecDeque` driven through [`cds_sync::FlatCombining`]: one combiner
/// services a whole batch of published enqueues/dequeues per lock
/// acquisition, amortizing synchronization — the design the original flat
/// combining paper evaluated against the Michael–Scott queue. Included in
/// experiment E3.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentQueue;
/// use cds_queue::FcQueue;
///
/// let q = FcQueue::new();
/// q.enqueue(1);
/// q.enqueue(2);
/// assert_eq!(q.dequeue(), Some(1));
/// ```
pub struct FcQueue<T> {
    fc: FlatCombining<SeqQueue<T>>,
}

impl<T> FcQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        FcQueue {
            fc: FlatCombining::new(SeqQueue(VecDeque::new())),
        }
    }

    /// Returns `true` if there are no elements (serviced under the
    /// combiner lock).
    pub fn is_empty(&self) -> bool {
        self.fc.with(|q| q.0.is_empty())
    }

    /// Number of elements (serviced under the combiner lock).
    pub fn len(&self) -> usize {
        self.fc.with(|q| q.0.len())
    }
}

impl<T> Default for FcQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> ConcurrentQueue<T> for FcQueue<T> {
    const NAME: &'static str = "flat-combining";

    fn enqueue(&self, value: T) {
        cds_core::stress::yield_point();
        self.fc.apply(Op::Enqueue(value));
    }

    fn dequeue(&self) -> Option<T> {
        cds_core::stress::yield_point();
        self.fc.apply(Op::Dequeue)
    }

    fn is_empty(&self) -> bool {
        self.fc.with(|q| q.0.is_empty())
    }
}

impl<T> fmt::Debug for FcQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FcQueue").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = FcQueue::new();
        for i in 0..10 {
            q.enqueue(i);
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn combined_transfer() {
        let q = Arc::new(FcQueue::new());
        let producers: Vec<_> = (0..2)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        q.enqueue(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut n = 0;
        while q.dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, 2_000);
    }
}

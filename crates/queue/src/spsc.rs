use cds_atomic::{AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::Arc;

use cds_sync::CachePadded;

/// Lamport's single-producer single-consumer ring buffer (1977).
///
/// The oldest wait-free queue: because exactly one thread writes `tail` and
/// exactly one writes `head`, no read-modify-write operations are needed at
/// all — each side publishes its own index with a release store and reads
/// the other's with an acquire load. Both operations complete in a bounded
/// number of steps unconditionally (wait-freedom), something no MPMC queue
/// achieves.
///
/// The single-producer/single-consumer restriction is enforced by the type
/// system: [`spsc_ring_buffer`] returns a non-cloneable
/// [`SpscProducer`]/[`SpscConsumer`] pair, each `Send` but usable by one
/// thread at a time.
///
/// # Example
///
/// ```
/// use cds_queue::spsc_ring_buffer;
///
/// let (producer, consumer) = spsc_ring_buffer::<u32>(8);
/// let t = std::thread::spawn(move || {
///     for i in 0..100 {
///         let mut v = i;
///         while let Err(back) = producer.try_push(v) {
///             v = back;
///         }
///     }
/// });
/// let mut received = 0;
/// while received < 100 {
///     if let Some(v) = consumer.try_pop() {
///         assert_eq!(v, received);
///         received += 1;
///     }
/// }
/// t.join().unwrap();
/// ```
pub struct SpscRingBuffer<T> {
    buffer: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next index the consumer will read. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next index the producer will write. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the producer/consumer split guarantees each slot is accessed by
// one side at a time (ownership alternates via the head/tail protocol).
unsafe impl<T: Send> Send for SpscRingBuffer<T> {}
unsafe impl<T: Send> Sync for SpscRingBuffer<T> {}

impl<T> SpscRingBuffer<T> {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let capacity = capacity.next_power_of_two();
        SpscRingBuffer {
            buffer: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: capacity - 1,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Maximum number of buffered elements.
    pub fn capacity(&self) -> usize {
        self.buffer.len()
    }
}

impl<T> Drop for SpscRingBuffer<T> {
    fn drop(&mut self) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for i in head..tail {
            // SAFETY: unique access; indices in [head, tail) hold live values.
            unsafe { (*self.buffer[i & self.mask].get()).assume_init_drop() };
        }
    }
}

impl<T> fmt::Debug for SpscRingBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpscRingBuffer")
            .field("capacity", &self.capacity())
            .finish()
    }
}

/// Creates a wait-free SPSC ring with room for `capacity` elements
/// (rounded up to a power of two); see [`SpscRingBuffer`].
pub fn spsc_ring_buffer<T>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    let ring = Arc::new(SpscRingBuffer::new(capacity));
    (
        SpscProducer {
            ring: Arc::clone(&ring),
            cached_head: std::cell::Cell::new(0),
        },
        SpscConsumer {
            ring,
            cached_tail: std::cell::Cell::new(0),
        },
    )
}

/// The producing half of an SPSC ring; see [`SpscRingBuffer`].
pub struct SpscProducer<T> {
    ring: Arc<SpscRingBuffer<T>>,
    /// Consumer index cached to avoid reading the shared `head` on every
    /// push (a standard optimization: refresh only when the ring looks
    /// full).
    cached_head: std::cell::Cell<usize>,
}

// SAFETY: one logical producer; may migrate between threads (Send), never
// shared (no Sync, enforced by !Sync via Cell).
unsafe impl<T: Send> Send for SpscProducer<T> {}

impl<T> SpscProducer<T> {
    /// Attempts to push; returns the value back if the ring is full.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        if tail - self.cached_head.get() == ring.buffer.len() {
            self.cached_head.set(ring.head.load(Ordering::Acquire));
            if tail - self.cached_head.get() == ring.buffer.len() {
                return Err(value);
            }
        }
        // SAFETY: slot `tail` is owned by the producer until the release
        // store below transfers it.
        unsafe { (*ring.buffer[tail & ring.mask].get()).write(value) };
        ring.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Pushes, backing off (and eventually yielding) while the ring is
    /// full.
    pub fn push(&self, value: T) {
        let mut value = value;
        let backoff = cds_sync::Backoff::new();
        loop {
            cds_core::stress::yield_point();
            match self.try_push(value) {
                Ok(()) => return,
                Err(v) => value = v,
            }
            backoff.snooze();
        }
    }
}

impl<T> fmt::Debug for SpscProducer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpscProducer").finish_non_exhaustive()
    }
}

/// The consuming half of an SPSC ring; see [`SpscRingBuffer`].
pub struct SpscConsumer<T> {
    ring: Arc<SpscRingBuffer<T>>,
    /// Producer index cached symmetrically to `SpscProducer::cached_head`.
    cached_tail: std::cell::Cell<usize>,
}

// SAFETY: one logical consumer (see SpscProducer).
unsafe impl<T: Send> Send for SpscConsumer<T> {}

impl<T> SpscConsumer<T> {
    /// Attempts to pop; returns `None` if the ring is empty.
    pub fn try_pop(&self) -> Option<T> {
        let ring = &*self.ring;
        let head = self.ring.head.load(Ordering::Relaxed);
        if head == self.cached_tail.get() {
            self.cached_tail.set(ring.tail.load(Ordering::Acquire));
            if head == self.cached_tail.get() {
                return None;
            }
        }
        // SAFETY: slot `head` was published by the producer's release store;
        // we own it until the store below returns it.
        let value = unsafe { (*ring.buffer[head & ring.mask].get()).assume_init_read() };
        ring.head.store(head + 1, Ordering::Release);
        Some(value)
    }
}

impl<T> fmt::Debug for SpscConsumer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpscConsumer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_atomic::AtomicUsize as Counter;

    #[test]
    fn fills_and_drains() {
        let (p, c) = spsc_ring_buffer::<u32>(4);
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        assert_eq!(p.try_push(99), Err(99));
        for i in 0..4 {
            assert_eq!(c.try_pop(), Some(i));
        }
        assert_eq!(c.try_pop(), None);
    }

    #[test]
    fn cross_thread_transfer_in_order() {
        let (p, c) = spsc_ring_buffer::<u64>(64);
        const N: u64 = 5_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                p.push(i);
            }
        });
        let consumer = std::thread::spawn(move || {
            let mut expected = 0;
            while expected < N {
                match c.try_pop() {
                    Some(v) => {
                        assert_eq!(v, expected);
                        expected += 1;
                    }
                    // Single core: let the producer run.
                    None => std::thread::yield_now(),
                }
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
    }

    #[test]
    fn drop_frees_buffered_values() {
        struct D(Arc<Counter>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(Counter::new(0));
        {
            let (p, _c) = spsc_ring_buffer(8);
            for _ in 0..3 {
                p.try_push(D(Arc::clone(&drops))).ok().unwrap();
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), 3);
    }
}

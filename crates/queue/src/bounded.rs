use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

use cds_core::ConcurrentQueue;
use cds_sync::{Backoff, CachePadded};

struct Slot<T> {
    /// Ticket machinery: a slot is writable when `sequence == pos` and
    /// readable when `sequence == pos + 1`.
    sequence: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer multi-consumer array queue (Vyukov's design).
///
/// A power-of-two ring of slots, each carrying a *sequence number* that
/// encodes whose turn the slot is: producers and consumers claim positions
/// with a fetch-style CAS on their own cursor and then synchronize with the
/// slot's sequence, so a producer and a consumer operating on different
/// slots never touch the same cache line. No allocation happens after
/// construction — the reason bounded queues dominate in latency-sensitive
/// systems.
///
/// The [`ConcurrentQueue`] impl spins when the queue is full; use
/// [`try_enqueue`](BoundedQueue::try_enqueue) /
/// [`try_dequeue`](BoundedQueue::try_dequeue) for non-blocking access.
///
/// # Example
///
/// ```
/// use cds_queue::BoundedQueue;
///
/// let q = BoundedQueue::with_capacity(4);
/// assert!(q.try_enqueue(1).is_ok());
/// assert_eq!(q.try_dequeue(), Some(1));
/// assert_eq!(q.try_dequeue(), None);
/// ```
pub struct BoundedQueue<T> {
    buffer: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// SAFETY: slot access is serialized by the sequence-number protocol.
unsafe impl<T: Send> Send for BoundedQueue<T> {}
unsafe impl<T: Send> Sync for BoundedQueue<T> {}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero. Capacity is rounded up to the next
    /// power of two.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let capacity = capacity.next_power_of_two();
        let buffer: Box<[Slot<T>]> = (0..capacity)
            .map(|i| Slot {
                sequence: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        BoundedQueue {
            buffer,
            mask: capacity - 1,
            enqueue_pos: CachePadded::new(AtomicUsize::new(0)),
            dequeue_pos: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.buffer.len()
    }

    /// Approximate number of stored elements (racy; diagnostics only).
    pub fn len(&self) -> usize {
        let enq = self.enqueue_pos.load(Ordering::Relaxed);
        let deq = self.dequeue_pos.load(Ordering::Relaxed);
        enq.saturating_sub(deq)
    }

    /// Whether the queue appears empty (racy; diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue without blocking; returns the value back if the
    /// queue is full.
    pub fn try_enqueue(&self, value: T) -> Result<(), T> {
        let backoff = Backoff::new();
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            cds_core::stress::yield_point();
            let slot = &self.buffer[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            match seq as isize - pos as isize {
                0 => {
                    // Our turn: claim the position.
                    match self.enqueue_pos.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the claim gives exclusive write access
                            // to this slot until we bump its sequence.
                            unsafe { (*slot.value.get()).write(value) };
                            slot.sequence.store(pos + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(actual) => {
                            pos = actual;
                            backoff.spin();
                        }
                    }
                }
                d if d < 0 => return Err(value), // a full lap behind: full
                _ => pos = self.enqueue_pos.load(Ordering::Relaxed),
            }
        }
    }

    /// Attempts to dequeue without blocking; returns `None` if empty.
    pub fn try_dequeue(&self) -> Option<T> {
        let backoff = Backoff::new();
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            cds_core::stress::yield_point();
            let slot = &self.buffer[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            match seq as isize - (pos + 1) as isize {
                0 => {
                    match self.dequeue_pos.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the claim gives exclusive read access;
                            // the producer's Release store made the value
                            // visible.
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            // Free the slot for the producer one lap ahead.
                            slot.sequence.store(pos + self.mask + 1, Ordering::Release);
                            return Some(value);
                        }
                        Err(actual) => {
                            pos = actual;
                            backoff.spin();
                        }
                    }
                }
                d if d < 0 => return None, // slot not yet produced: empty
                _ => pos = self.dequeue_pos.load(Ordering::Relaxed),
            }
        }
    }
}

impl<T> Default for BoundedQueue<T> {
    /// A queue with a default capacity of 1024 slots.
    fn default() -> Self {
        Self::with_capacity(1024)
    }
}

impl<T: Send> ConcurrentQueue<T> for BoundedQueue<T> {
    const NAME: &'static str = "bounded";

    /// Enqueues, spinning while the queue is full.
    fn enqueue(&self, value: T) {
        let mut value = value;
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            match self.try_enqueue(value) {
                Ok(()) => return,
                Err(v) => value = v,
            }
            backoff.snooze();
        }
    }

    fn dequeue(&self) -> Option<T> {
        self.try_dequeue()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for BoundedQueue<T> {
    fn drop(&mut self) {
        // Drain undequeued values.
        while self.try_dequeue().is_some() {}
    }
}

impl<T> fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;
    use std::sync::Arc;

    #[test]
    fn capacity_rounds_up() {
        let q: BoundedQueue<u8> = BoundedQueue::with_capacity(5);
        assert_eq!(q.capacity(), 8);
    }

    #[test]
    fn full_queue_rejects() {
        let q = BoundedQueue::with_capacity(2);
        assert!(q.try_enqueue(1).is_ok());
        assert!(q.try_enqueue(2).is_ok());
        assert_eq!(q.try_enqueue(3), Err(3));
        assert_eq!(q.try_dequeue(), Some(1));
        assert!(q.try_enqueue(3).is_ok());
    }

    #[test]
    fn wraps_around_many_times() {
        let q = BoundedQueue::with_capacity(4);
        for i in 0..100 {
            q.try_enqueue(i).unwrap();
            assert_eq!(q.try_dequeue(), Some(i));
        }
    }

    #[test]
    fn drop_frees_undequeued() {
        struct D(Arc<Counter>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(Counter::new(0));
        {
            let q = BoundedQueue::with_capacity(8);
            for _ in 0..5 {
                q.try_enqueue(D(Arc::clone(&drops))).ok().unwrap();
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), 5);
    }
}

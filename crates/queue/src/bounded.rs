use cds_atomic::{AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;

use cds_core::ConcurrentQueue;
use cds_sync::{Backoff, CachePadded};

struct Slot<T> {
    /// Ticket machinery: a slot is writable when `sequence == pos` and
    /// readable when `sequence == pos + 1`.
    sequence: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer multi-consumer array queue (Vyukov's design).
///
/// A power-of-two ring of slots, each carrying a *sequence number* that
/// encodes whose turn the slot is: producers and consumers claim positions
/// with a fetch-style CAS on their own cursor and then synchronize with the
/// slot's sequence, so a producer and a consumer operating on different
/// slots never touch the same cache line. No allocation happens after
/// construction — the reason bounded queues dominate in latency-sensitive
/// systems.
///
/// The [`ConcurrentQueue`] impl spins when the queue is full; use
/// [`try_enqueue`](BoundedQueue::try_enqueue) /
/// [`try_dequeue`](BoundedQueue::try_dequeue) for non-blocking access.
///
/// # Example
///
/// ```
/// use cds_queue::BoundedQueue;
///
/// let q = BoundedQueue::with_capacity(4);
/// assert!(q.try_enqueue(1).is_ok());
/// assert_eq!(q.try_dequeue(), Some(1));
/// assert_eq!(q.try_dequeue(), None);
/// ```
pub struct BoundedQueue<T> {
    buffer: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// SAFETY: slot access is serialized by the sequence-number protocol.
unsafe impl<T: Send> Send for BoundedQueue<T> {}
unsafe impl<T: Send> Sync for BoundedQueue<T> {}

/// Planted-regression toggle (stress builds only): when set, the
/// claim→publish windows of [`BoundedQueue::try_enqueue`] /
/// [`BoundedQueue::try_dequeue`] contain an extra yield point, so a
/// schedule can preempt a thread *between* claiming a position and
/// touching the slot's value. Combined with
/// [`BoundedQueue::with_capacity_unchecked`] this re-arms the capacity-1
/// overwrite bug fixed in an earlier revision, as a known-answer target
/// for the systematic-exploration suite. Ordinary builds and ordinary
/// stress runs (toggle off) are unaffected; the extra yields would
/// otherwise perturb every pinned-seed schedule.
///
/// Ideally this would be `#[cfg(test)]`, but the exploration suite lives
/// in the workspace integration tests, which cannot see a library's
/// `cfg(test)` items — `stress` + `#[doc(hidden)]` is the nearest gate.
#[cfg(feature = "stress")]
static CLAIM_WINDOW_YIELDS: cds_atomic::raw::AtomicBool = cds_atomic::raw::AtomicBool::new(false);

/// See [`CLAIM_WINDOW_YIELDS`]. Returns the previous setting.
#[cfg(feature = "stress")]
#[doc(hidden)]
pub fn set_claim_window_yields(on: bool) -> bool {
    CLAIM_WINDOW_YIELDS.swap(on, Ordering::SeqCst)
}

#[inline]
fn claim_window_yield() {
    #[cfg(feature = "stress")]
    if CLAIM_WINDOW_YIELDS.load(Ordering::Relaxed) {
        cds_core::stress::yield_point();
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero. Capacity is rounded up to the next
    /// power of two, and to no less than **2**: with a single slot the
    /// sequence stamp a producer publishes ("value at position `p`",
    /// stamp `p + 1`) coincides with the stamp a consumer frees the slot
    /// with ("ready for position `p + 1`", stamp `p + capacity`), so the
    /// next producer could claim the slot while the consumer is still
    /// reading it and overwrite an undelivered value. Two slots keep the
    /// stamps one lap apart, which is what the protocol's full/empty
    /// discrimination relies on.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let capacity = capacity.next_power_of_two().max(2);
        let buffer: Box<[Slot<T>]> = (0..capacity)
            .map(|i| Slot {
                sequence: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        BoundedQueue {
            buffer,
            mask: capacity - 1,
            enqueue_pos: CachePadded::new(AtomicUsize::new(0)),
            dequeue_pos: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Like [`with_capacity`](Self::with_capacity) but *without* the
    /// minimum-capacity clamp: a capacity-1 ring is built as requested,
    /// re-arming the sequence-stamp collision documented there. Exists
    /// solely so the exploration suite can prove the systematic scheduler
    /// finds that historical bug; never use it for real queues.
    #[cfg(feature = "stress")]
    #[doc(hidden)]
    pub fn with_capacity_unchecked(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let capacity = capacity.next_power_of_two();
        let buffer: Box<[Slot<T>]> = (0..capacity)
            .map(|i| Slot {
                sequence: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        BoundedQueue {
            buffer,
            mask: capacity - 1,
            enqueue_pos: CachePadded::new(AtomicUsize::new(0)),
            dequeue_pos: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.buffer.len()
    }

    /// Approximate number of stored elements (racy; diagnostics only).
    ///
    /// The two cursors are read with independent `Relaxed` loads, so the
    /// raw difference is *not* a consistent snapshot: a reader can observe
    /// a fresh `enqueue_pos` next to a stale `dequeue_pos` (nothing orders
    /// the two loads against the slot hand-off) and the difference can
    /// then exceed the ring size.
    /// The result is therefore clamped to
    /// `0 ..= `[`capacity()`](Self::capacity); within that band it is
    /// best-effort only — both ends are reachable while operations are in
    /// flight, so neither `len` nor [`is_empty`](Self::is_empty) may be
    /// used for synchronization decisions.
    pub fn len(&self) -> usize {
        let enq = self.enqueue_pos.load(Ordering::Relaxed);
        let deq = self.dequeue_pos.load(Ordering::Relaxed);
        enq.saturating_sub(deq).min(self.capacity())
    }

    /// Whether the queue appears empty (racy; diagnostics only — see
    /// [`len`](Self::len) for why the answer may be stale).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue; returns the value back if the queue is full.
    ///
    /// "Full" is a *corroborated* verdict: the slot's stamp lagging a lap
    /// is not enough (that read can be stale, or the consumer freeing it
    /// can be mid-flight), so the verdict is confirmed against the
    /// consumer cursor with `SeqCst` before `Err` is returned. If the
    /// stamp lags but the cursors show a consumer mid-consumption, the
    /// call briefly waits for that consumer's stamp (it has at most two
    /// instructions left) instead of reporting a spurious full.
    pub fn try_enqueue(&self, value: T) -> Result<(), T> {
        let backoff = Backoff::new();
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            cds_core::stress::yield_point();
            let slot = &self.buffer[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            match seq as isize - pos as isize {
                0 => {
                    // Our turn: claim the position. SeqCst so the claim
                    // participates in the single total order that the
                    // empty/full corroboration loads read from.
                    match self.enqueue_pos.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            claim_window_yield();
                            // SAFETY: the claim gives exclusive write access
                            // to this slot until we bump its sequence.
                            unsafe { (*slot.value.get()).write(value) };
                            slot.sequence.store(pos + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(actual) => {
                            pos = actual;
                            backoff.spin();
                        }
                    }
                }
                d if d < 0 => {
                    // The stamp is a lap behind: the slot still holds the
                    // value from position `pos - capacity` in our view.
                    // Declaring the queue full from the stamp alone is not
                    // linearizable — the lagging stamp may simply be a
                    // stale read long after the consumer freed the slot
                    // (the `weak_bounded_queue_window` exploration finds
                    // the dequeue-side twin of that history). Corroborate:
                    // if no consumer has claimed `pos - capacity`, a full
                    // lap of claims is outstanding and `Err` linearizes at
                    // this load.
                    if self.dequeue_pos.load(Ordering::SeqCst) + self.buffer.len() == pos {
                        return Err(value);
                    }
                    // A consumer claimed the slot but has not stamped it
                    // free (or our stamp view is stale): wait for the
                    // stamp. Pure re-check loop, so `Blocked` is sound and
                    // collapses the stutter branching under exploration.
                    // SeqCst for freshness; see the dequeue-side wait.
                    let wait = Backoff::new();
                    while (slot.sequence.load(Ordering::SeqCst) as isize) < pos as isize {
                        wait.snooze_tagged(cds_core::stress::YieldTag::Blocked(
                            &slot.sequence as *const _ as usize,
                        ));
                    }
                }
                _ => pos = self.enqueue_pos.load(Ordering::Relaxed),
            }
        }
    }

    /// Attempts to dequeue; returns `None` if the queue is empty.
    ///
    /// "Empty" is a *corroborated* verdict, symmetric to
    /// [`try_enqueue`](Self::try_enqueue): a lagging slot stamp alone can
    /// be a stale read taken long after the producer published (and
    /// returned), and a `None` built on it is not linearizable — the
    /// `weak_bounded_queue_window` exploration finds exactly that
    /// history: a dequeuer that loses its claim CAS, moves to the next
    /// slot, reads its stamp stale, and reports empty between two
    /// completed enqueues. The verdict is confirmed against the producer
    /// cursor with `SeqCst`; a stamp that lags while the cursors show a
    /// producer mid-publication is waited out instead.
    pub fn try_dequeue(&self) -> Option<T> {
        let backoff = Backoff::new();
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            cds_core::stress::yield_point();
            let slot = &self.buffer[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            match seq as isize - (pos + 1) as isize {
                0 => {
                    // SeqCst: see the enqueue-side claim.
                    match self.dequeue_pos.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            claim_window_yield();
                            // SAFETY: the claim gives exclusive read access;
                            // the producer's Release store made the value
                            // visible.
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            // Free the slot for the producer one lap ahead.
                            slot.sequence.store(pos + self.mask + 1, Ordering::Release);
                            return Some(value);
                        }
                        Err(actual) => {
                            pos = actual;
                            backoff.spin();
                        }
                    }
                }
                d if d < 0 => {
                    // Slot not produced in our view. Corroborate before
                    // declaring empty: if no producer has claimed `pos`,
                    // every claim ever made is matched by a consumer claim
                    // below `pos`, so `None` linearizes at this load.
                    if self.enqueue_pos.load(Ordering::SeqCst) == pos {
                        return None;
                    }
                    // A producer claimed `pos` but has not stamped it (or
                    // our stamp view is stale): wait for the stamp rather
                    // than report a spurious empty. Pure re-check loop, so
                    // `Blocked` is sound for the exploration scheduler.
                    // SeqCst (not Acquire) deliberately: the wait only
                    // cares about *freshness*, the synchronizing Acquire
                    // happens at the loop head once the stamp lands — and
                    // under the weak-memory explorer a SeqCst load always
                    // reads the newest stamp, so the wait does not fork a
                    // read-from branch per re-check.
                    let wait = Backoff::new();
                    while (slot.sequence.load(Ordering::SeqCst) as isize) < (pos + 1) as isize {
                        wait.snooze_tagged(cds_core::stress::YieldTag::Blocked(
                            &slot.sequence as *const _ as usize,
                        ));
                    }
                }
                _ => pos = self.dequeue_pos.load(Ordering::Relaxed),
            }
        }
    }
}

impl<T> Default for BoundedQueue<T> {
    /// A queue with a default capacity of 1024 slots.
    fn default() -> Self {
        Self::with_capacity(1024)
    }
}

impl<T: Send> ConcurrentQueue<T> for BoundedQueue<T> {
    const NAME: &'static str = "bounded";

    /// Enqueues, spinning while the queue is full.
    fn enqueue(&self, value: T) {
        let mut value = value;
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            match self.try_enqueue(value) {
                Ok(()) => return,
                Err(v) => value = v,
            }
            backoff.snooze();
        }
    }

    fn dequeue(&self) -> Option<T> {
        self.try_dequeue()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for BoundedQueue<T> {
    fn drop(&mut self) {
        // Drain undequeued values by walking the ring directly: `&mut self`
        // rules out concurrent claims, so a slot holds a value exactly when
        // its sequence says "readable at this position". A `try_dequeue`
        // loop would be equivalent on a well-formed ring but can spin
        // forever on a corrupted one (its `dif > 0` arm waits for another
        // consumer to advance the cursor — at drop time there is none), so
        // the walk is bounded by the capacity instead.
        let enq = *self.enqueue_pos.get_mut();
        let mut pos = *self.dequeue_pos.get_mut();
        for _ in 0..self.buffer.len() {
            if pos == enq {
                break;
            }
            let slot = &mut self.buffer[pos & self.mask];
            if *slot.sequence.get_mut() == pos.wrapping_add(1) {
                // SAFETY: the sequence stamp says a produced, unconsumed
                // value sits in this slot, and `&mut self` makes us its
                // only reader.
                unsafe { slot.value.get_mut().assume_init_drop() };
            }
            pos = pos.wrapping_add(1);
        }
    }
}

impl<T> fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_atomic::AtomicUsize as Counter;
    use std::sync::Arc;

    #[test]
    fn capacity_rounds_up() {
        let q: BoundedQueue<u8> = BoundedQueue::with_capacity(5);
        assert_eq!(q.capacity(), 8);
    }

    /// Regression: a capacity-1 ring must round up to 2 slots. With one
    /// slot the dequeuer's freeing stamp (`pos + capacity`) equals the
    /// enqueuer's publishing stamp (`pos + 1`), so a producer could claim
    /// the slot mid-read and overwrite an undelivered value — found as a
    /// lost executor task by `tests/exec.rs` driving a "capacity-1"
    /// injector under the PCT scheduler. The storm half of this test
    /// hammers the two-slot ring SPSC and checks conservation.
    #[test]
    fn capacity_one_rounds_up_to_two_and_conserves() {
        let q: BoundedQueue<u64> = BoundedQueue::with_capacity(1);
        assert_eq!(q.capacity(), 2);

        const N: u64 = 20_000;
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut i = 0;
                while i < N {
                    if q.try_enqueue(i).is_ok() {
                        i += 1;
                    } else {
                        // Yield on full: on a single-hardware-thread host
                        // the partner needs the CPU to make progress.
                        std::thread::yield_now();
                    }
                }
            });
            s.spawn(|| {
                let mut expect = 0;
                while expect < N {
                    if let Some(v) = q.try_dequeue() {
                        assert_eq!(v, expect, "lost or reordered element");
                        expect += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
        assert_eq!(q.try_dequeue(), None);
    }

    #[test]
    fn full_queue_rejects() {
        let q = BoundedQueue::with_capacity(2);
        assert!(q.try_enqueue(1).is_ok());
        assert!(q.try_enqueue(2).is_ok());
        assert_eq!(q.try_enqueue(3), Err(3));
        assert_eq!(q.try_dequeue(), Some(1));
        assert!(q.try_enqueue(3).is_ok());
    }

    #[test]
    fn wraps_around_many_times() {
        let q = BoundedQueue::with_capacity(4);
        for i in 0..100 {
            q.try_enqueue(i).unwrap();
            assert_eq!(q.try_dequeue(), Some(i));
        }
    }

    #[test]
    fn len_is_bounded_during_producer_consumer_storm() {
        // Regression for the unclamped len(): with a tiny ring and four
        // threads churning the cursors, an observer hammering len() used
        // to see enqueue_pos - dequeue_pos exceed capacity() whenever its
        // dequeue-cursor load was stale. The clamp bounds every answer.
        use cds_atomic::AtomicBool;
        let q = Arc::new(BoundedQueue::with_capacity(4));
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..4)
            .map(|i| {
                let q = Arc::clone(&q);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if i % 2 == 0 {
                            let _ = q.try_enqueue(i);
                        } else {
                            let _ = q.try_dequeue();
                        }
                    }
                })
            })
            .collect();
        for _ in 0..200_000 {
            let len = q.len();
            assert!(
                len <= q.capacity(),
                "len {len} exceeds capacity {}",
                q.capacity()
            );
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn drop_frees_undequeued() {
        struct D(Arc<Counter>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(Counter::new(0));
        {
            let q = BoundedQueue::with_capacity(8);
            for _ in 0..5 {
                q.try_enqueue(D(Arc::clone(&drops))).ok().unwrap();
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), 5);
    }
}

use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::Ordering;

use cds_core::ConcurrentQueue;
use cds_reclaim::epoch::{self, Atomic, Guard, Owned, Shared};
use cds_sync::Backoff;

struct Node<T> {
    /// Uninitialized for the node currently serving as the sentinel (the
    /// initial sentinel was never initialized; a dequeued node's value has
    /// been moved out). Initialized for every node after the sentinel.
    value: MaybeUninit<T>,
    next: Atomic<Node<T>>,
}

/// The Michael–Scott lock-free queue (PODC '96).
///
/// The algorithm behind `java.util.concurrent.ConcurrentLinkedQueue`: a
/// singly-linked list with a sentinel head. Enqueue links at the tail with
/// one CAS (plus a tail-swing CAS that any thread may *help* complete);
/// dequeue advances the head with one CAS. The helping protocol is what
/// makes the queue lock-free: a stalled enqueuer cannot block others,
/// because the next operation finishes its tail swing for it.
///
/// Unlinked nodes go to the epoch collector ([`cds_reclaim::epoch`]).
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentQueue;
/// use cds_queue::MsQueue;
///
/// let q = MsQueue::new();
/// q.enqueue(1);
/// q.enqueue(2);
/// assert_eq!(q.dequeue(), Some(1));
/// ```
pub struct MsQueue<T> {
    head: Atomic<Node<T>>,
    tail: Atomic<Node<T>>,
}

// SAFETY: values move across threads (enqueue on one, dequeue on another).
unsafe impl<T: Send> Send for MsQueue<T> {}
unsafe impl<T: Send> Sync for MsQueue<T> {}

impl<T> MsQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        // The permanent sentinel; its value is never initialized.
        let sentinel = Owned::new(Node {
            value: MaybeUninit::uninit(),
            next: Atomic::null(),
        });
        // SAFETY: the queue is not yet shared.
        let guard = unsafe { Guard::unprotected() };
        let sentinel = sentinel.into_shared(&guard);
        let q = MsQueue {
            head: Atomic::null(),
            tail: Atomic::null(),
        };
        q.head.store(sentinel, Ordering::Relaxed);
        q.tail.store(sentinel, Ordering::Relaxed);
        q
    }

    fn enqueue_internal(&self, value: T, guard: &Guard) {
        let node = Owned::new(Node {
            value: MaybeUninit::new(value),
            next: Atomic::null(),
        })
        .into_shared(guard);
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            let tail = self.tail.load(Ordering::Acquire, guard);
            // SAFETY: pinned; tail is never freed before head passes it.
            let t = unsafe { tail.deref() };
            let next = t.next.load(Ordering::Acquire, guard);
            if !next.is_null() {
                // Tail is lagging: help swing it and retry.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                );
                continue;
            }
            if t.next
                .compare_exchange(
                    Shared::null(),
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                )
                .is_ok()
            {
                // Linked; swing the tail (failure is fine — someone helped).
                let _ = self.tail.compare_exchange(
                    tail,
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                );
                return;
            }
            backoff.spin();
        }
    }

    fn dequeue_internal(&self, guard: &Guard) -> Option<T> {
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            let head = self.head.load(Ordering::Acquire, guard);
            // SAFETY: pinned.
            let h = unsafe { head.deref() };
            let next = h.next.load(Ordering::Acquire, guard);
            let next_ref = unsafe { next.as_ref() }?;
            // If the tail is still on the sentinel, help it forward so it
            // never lags behind the head.
            let tail = self.tail.load(Ordering::Relaxed, guard);
            if head == tail {
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                );
            }
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Relaxed, guard)
                .is_ok()
            {
                // SAFETY: winning the head CAS gives us unique rights to
                // `next`'s value (it becomes the new sentinel); the old
                // sentinel may still be read by peers, so defer it.
                unsafe {
                    let value = next_ref.value.assume_init_read();
                    guard.defer_destroy(head);
                    return Some(value);
                }
            }
            backoff.spin();
        }
    }
}

impl<T> Default for MsQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static> ConcurrentQueue<T> for MsQueue<T> {
    const NAME: &'static str = "ms";

    fn enqueue(&self, value: T) {
        let guard = epoch::pin();
        self.enqueue_internal(value, &guard);
    }

    fn dequeue(&self) -> Option<T> {
        let guard = epoch::pin();
        self.dequeue_internal(&guard)
    }

    fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        let head = self.head.load(Ordering::Acquire, &guard);
        // SAFETY: pinned.
        unsafe { head.deref() }
            .next
            .load(Ordering::Acquire, &guard)
            .is_null()
    }
}

impl<T> Drop for MsQueue<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self`: unique access.
        let guard = unsafe { Guard::unprotected() };
        // The first node is the sentinel: free it without touching its value.
        let mut cur = self.head.load(Ordering::Relaxed, &guard);
        let mut is_sentinel = true;
        while !cur.is_null() {
            // SAFETY: unique ownership of the whole chain.
            unsafe {
                let mut boxed = cur.into_owned().into_box();
                if !is_sentinel {
                    boxed.value.assume_init_drop();
                }
                is_sentinel = false;
                cur = boxed.next.load(Ordering::Relaxed, &guard);
            }
        }
    }
}

impl<T> fmt::Debug for MsQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MsQueue").finish_non_exhaustive()
    }
}

impl<T: Send + 'static> FromIterator<T> for MsQueue<T> {
    /// Collects into a queue preserving iteration order (first in, first
    /// out).
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let queue = MsQueue::new();
        for v in iter {
            queue.enqueue(v);
        }
        queue
    }
}

impl<T: Send + 'static> Extend<T> for MsQueue<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.enqueue(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn sequential_fifo() {
        let q = MsQueue::new();
        assert_eq!(q.dequeue(), None);
        for i in 0..32 {
            q.enqueue(i);
        }
        for i in 0..32 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn values_dropped_exactly_once() {
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let q = MsQueue::new();
            for _ in 0..10 {
                q.enqueue(D(Arc::clone(&drops)));
            }
            for _ in 0..4 {
                drop(q.dequeue());
            }
            assert_eq!(drops.load(Ordering::SeqCst), 4);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn mpmc_stress() {
        let q = Arc::new(MsQueue::new());
        let consumed = Arc::new(AtomicUsize::new(0));
        const N: usize = 1_000;
        let producers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..N {
                        q.enqueue(i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                std::thread::spawn(move || loop {
                    if q.dequeue().is_some() {
                        if consumed.fetch_add(1, Ordering::SeqCst) + 1 == 2 * N {
                            return;
                        }
                    } else if consumed.load(Ordering::SeqCst) == 2 * N {
                        return;
                    } else {
                        // Single core: don't starve the producers.
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::SeqCst), 2 * N);
        assert!(q.is_empty());
    }
}

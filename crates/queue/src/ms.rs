use cds_atomic::Ordering;
use std::fmt;
use std::marker::PhantomData;
use std::mem::MaybeUninit;

use cds_core::ConcurrentQueue;
use cds_reclaim::epoch::{Atomic, Guard, Owned, Shared};
use cds_reclaim::{Ebr, ReclaimGuard, Reclaimer};
use cds_sync::Backoff;

/// Stress-only planted ordering bug: demotes the tail-link CAS in
/// `enqueue_internal` from `Release` to `Relaxed`. The link CAS is the
/// enqueue's publication point: demoted, a dequeuer can observe the new
/// node through `head.next` without synchronizing with the enqueuer and
/// dereference a payload whose initialization it has no
/// happens-before edge to. The stale read happens through a *plain*
/// field (`value`), invisible to the atomics model — which is exactly
/// what the published-region race detector exists to catch, and what the
/// weak-memory explorer's known-answer test proves. Reads of the toggle
/// go through `raw` so the flag itself is never a modeled location.
///
/// Ideally this would be `#[cfg(test)]`, but the exploration suite lives
/// in the workspace integration tests, which cannot see a library's
/// `cfg(test)` items — `stress` + `#[doc(hidden)]` is the nearest gate.
#[cfg(feature = "stress")]
static RELAXED_LINK: cds_atomic::raw::AtomicBool = cds_atomic::raw::AtomicBool::new(false);

/// See [`RELAXED_LINK`]. Returns the previous setting.
#[cfg(feature = "stress")]
#[doc(hidden)]
pub fn set_relaxed_link(on: bool) -> bool {
    RELAXED_LINK.swap(on, cds_atomic::raw::Ordering::SeqCst)
}

/// The ordering of the enqueue link CAS: `Release`, unless the planted
/// demotion is armed.
#[inline]
fn link_ordering() -> Ordering {
    #[cfg(feature = "stress")]
    if RELAXED_LINK.load(cds_atomic::raw::Ordering::Relaxed) {
        return Ordering::Relaxed;
    }
    Ordering::Release
}

struct Node<T> {
    /// Uninitialized for the node currently serving as the sentinel (the
    /// initial sentinel was never initialized; a dequeued node's value has
    /// been moved out). Initialized for every node after the sentinel.
    value: MaybeUninit<T>,
    next: Atomic<Node<T>>,
}

/// Hazard slot for the node an operation anchors on (head or tail).
const SLOT_ANCHOR: usize = 0;
/// Hazard slot for the anchor's successor (dequeue only).
const SLOT_NEXT: usize = 1;

/// The Michael–Scott lock-free queue (PODC '96).
///
/// The algorithm behind `java.util.concurrent.ConcurrentLinkedQueue`: a
/// singly-linked list with a sentinel head. Enqueue links at the tail with
/// one CAS (plus a tail-swing CAS that any thread may *help* complete);
/// dequeue advances the head with one CAS. The helping protocol is what
/// makes the queue lock-free: a stalled enqueuer cannot block others,
/// because the next operation finishes its tail swing for it.
///
/// The queue is generic over its reclamation backend `R`
/// ([`cds_reclaim::Reclaimer`], default [`Ebr`]) and follows the
/// **per-pointer** discipline from Michael's hazard-pointer paper (2004):
/// each operation protects the node it anchors on (tail for enqueue, head
/// for dequeue), and dequeue additionally publishes protection for the
/// successor and re-validates that the head has not moved before touching
/// it. Two invariants make the unprotected CASes safe: a retired node's
/// `next` is non-null and never returns to null (so a stale enqueue CAS
/// fails), and retired nodes are never re-linked (so a successful
/// head/tail CAS proves the anchor was still linked).
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentQueue;
/// use cds_queue::MsQueue;
///
/// let q = MsQueue::new();
/// q.enqueue(1);
/// q.enqueue(2);
/// assert_eq!(q.dequeue(), Some(1));
/// ```
pub struct MsQueue<T, R: Reclaimer = Ebr> {
    head: Atomic<Node<T>>,
    tail: Atomic<Node<T>>,
    _reclaimer: PhantomData<R>,
}

// SAFETY: values move across threads (enqueue on one, dequeue on another).
unsafe impl<T: Send, R: Reclaimer> Send for MsQueue<T, R> {}
unsafe impl<T: Send, R: Reclaimer> Sync for MsQueue<T, R> {}

impl<T> MsQueue<T> {
    /// Creates an empty queue on the default ([`Ebr`]) backend.
    pub fn new() -> Self {
        Self::with_reclaimer()
    }
}

impl<T, R: Reclaimer> MsQueue<T, R> {
    /// Creates an empty queue on the reclamation backend `R`.
    pub fn with_reclaimer() -> Self {
        // The permanent sentinel; its value is never initialized.
        let sentinel = Owned::new(Node {
            value: MaybeUninit::uninit(),
            next: Atomic::null(),
        });
        // SAFETY: the queue is not yet shared.
        let guard = unsafe { Guard::unprotected() };
        let sentinel = sentinel.into_shared(&guard);
        let q = MsQueue {
            head: Atomic::null(),
            tail: Atomic::null(),
            _reclaimer: PhantomData,
        };
        q.head.store(sentinel, Ordering::Relaxed);
        q.tail.store(sentinel, Ordering::Relaxed);
        q
    }

    fn enqueue_internal<G: ReclaimGuard>(&self, value: T, guard: &G) {
        let node = Owned::new(Node {
            value: MaybeUninit::new(value),
            next: Atomic::null(),
        })
        .into_shared(guard);
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            // Protect-validate the tail before dereferencing it.
            let tail = guard.protect(SLOT_ANCHOR, &self.tail, Ordering::Acquire);
            // SAFETY: protected above; the tail is never null.
            let t = unsafe { tail.deref() };
            let next = t.next.load(Ordering::Acquire, guard);
            if !next.is_null() {
                // Tail is lagging: help swing it and retry. `next` is not
                // dereferenced, so it needs no protection.
                let swung = self
                    .tail
                    .compare_exchange(tail, next, Ordering::Release, Ordering::Relaxed, guard)
                    .is_ok();
                cds_obs::cas_outcome(swung);
                cds_obs::count(cds_obs::Event::MsQueueRetry);
                continue;
            }
            // Even if `t` was dequeued after the protect, its `next` became
            // non-null before retirement and never returns to null, so this
            // CAS can only succeed while `t` is the live tail.
            // Release (unless the planted demotion is armed): this CAS is
            // the publication point of the node and its payload.
            let linked = t
                .next
                .compare_exchange(
                    Shared::null(),
                    node,
                    link_ordering(),
                    Ordering::Relaxed,
                    guard,
                )
                .is_ok();
            cds_obs::cas_outcome(linked);
            if linked {
                // Linked; swing the tail (failure is fine — someone helped).
                let swung = self
                    .tail
                    .compare_exchange(tail, node, Ordering::Release, Ordering::Relaxed, guard)
                    .is_ok();
                cds_obs::cas_outcome(swung);
                return;
            }
            cds_obs::count(cds_obs::Event::MsQueueRetry);
            backoff.spin();
        }
    }

    fn dequeue_internal<G: ReclaimGuard>(&self, guard: &G) -> Option<T> {
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            // Protect-validate the head before dereferencing it.
            let head = guard.protect(SLOT_ANCHOR, &self.head, Ordering::Acquire);
            // SAFETY: protected above; the head is never null.
            let h = unsafe { head.deref() };
            let next = h.next.load(Ordering::Acquire, guard);
            // Publish protection for the successor, then re-validate that
            // the head has not moved: at that instant the successor was
            // still linked (a node is only retired after the head passes
            // it), so the already-published hazard keeps it alive.
            let next = guard.protect_ptr(SLOT_NEXT, next);
            if self.head.load(Ordering::Acquire, guard) != head {
                cds_obs::count(cds_obs::Event::MsQueueRetry);
                backoff.spin();
                continue;
            }
            // SAFETY: protected + re-validated above.
            let next_ref = unsafe { next.as_ref() }?;
            // If the tail is still on the sentinel, help it forward so it
            // never lags behind the head.
            let tail = self.tail.load(Ordering::Relaxed, guard);
            if head == tail {
                let swung = self
                    .tail
                    .compare_exchange(tail, next, Ordering::Release, Ordering::Relaxed, guard)
                    .is_ok();
                cds_obs::cas_outcome(swung);
            }
            let unlinked = self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Relaxed, guard)
                .is_ok();
            cds_obs::cas_outcome(unlinked);
            if unlinked {
                // SAFETY: winning the head CAS gives us unique rights to
                // `next`'s value (it becomes the new sentinel); the old
                // sentinel may still be read by peers, so retire it.
                unsafe {
                    let value = next_ref.value.assume_init_read();
                    guard.retire(head);
                    return Some(value);
                }
            }
            cds_obs::count(cds_obs::Event::MsQueueRetry);
            backoff.spin();
        }
    }
}

impl<T, R: Reclaimer> Default for MsQueue<T, R> {
    fn default() -> Self {
        Self::with_reclaimer()
    }
}

impl<T: Send + 'static, R: Reclaimer> ConcurrentQueue<T> for MsQueue<T, R> {
    const NAME: &'static str = "ms";

    fn enqueue(&self, value: T) {
        let guard = R::enter();
        self.enqueue_internal(value, &guard);
    }

    fn dequeue(&self) -> Option<T> {
        let guard = R::enter();
        self.dequeue_internal(&guard)
    }

    fn is_empty(&self) -> bool {
        let guard = R::enter();
        let head = guard.protect(SLOT_ANCHOR, &self.head, Ordering::Acquire);
        // SAFETY: protected above.
        unsafe { head.deref() }
            .next
            .load(Ordering::Acquire, &guard)
            .is_null()
    }
}

impl<T, R: Reclaimer> Drop for MsQueue<T, R> {
    fn drop(&mut self) {
        // SAFETY: `&mut self`: unique access; the unprotected guard is a
        // pure load witness on every backend. Nodes already retired
        // through `R` are unreachable from `head` and are freed by the
        // backend, not here.
        let guard = unsafe { Guard::unprotected() };
        // The first node is the sentinel: free it without touching its value.
        let mut cur = self.head.load(Ordering::Relaxed, &guard);
        let mut is_sentinel = true;
        while !cur.is_null() {
            // SAFETY: unique ownership of the whole chain.
            unsafe {
                let mut boxed = cur.into_owned().into_box();
                if !is_sentinel {
                    boxed.value.assume_init_drop();
                }
                is_sentinel = false;
                cur = boxed.next.load(Ordering::Relaxed, &guard);
            }
        }
    }
}

impl<T, R: Reclaimer> fmt::Debug for MsQueue<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MsQueue")
            .field("reclaimer", &R::NAME)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> FromIterator<T> for MsQueue<T> {
    /// Collects into a queue preserving iteration order (first in, first
    /// out).
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let queue = MsQueue::new();
        for v in iter {
            queue.enqueue(v);
        }
        queue
    }
}

impl<T: Send + 'static, R: Reclaimer> Extend<T> for MsQueue<T, R> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.enqueue(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_atomic::AtomicUsize;
    use cds_reclaim::{DebugReclaim, Hazard, Leak};
    use std::sync::Arc;

    #[test]
    fn sequential_fifo() {
        let q = MsQueue::new();
        assert_eq!(q.dequeue(), None);
        for i in 0..32 {
            q.enqueue(i);
        }
        for i in 0..32 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_on_every_backend() {
        fn run<R: Reclaimer>() {
            let q: MsQueue<u64, R> = MsQueue::with_reclaimer();
            for i in 0..100 {
                q.enqueue(i);
            }
            for i in 0..100 {
                assert_eq!(q.dequeue(), Some(i), "{} backend", R::NAME);
            }
            assert_eq!(q.dequeue(), None);
            R::collect();
        }
        run::<Ebr>();
        run::<Hazard>();
        run::<Leak>();
        run::<DebugReclaim>();
    }

    #[test]
    fn values_dropped_exactly_once() {
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let q = MsQueue::new();
            for _ in 0..10 {
                q.enqueue(D(Arc::clone(&drops)));
            }
            for _ in 0..4 {
                drop(q.dequeue());
            }
            assert_eq!(drops.load(Ordering::SeqCst), 4);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn mpmc_stress() {
        mpmc_stress_on::<Ebr>();
    }

    #[test]
    fn mpmc_stress_hazard_backend() {
        mpmc_stress_on::<Hazard>();
    }

    fn mpmc_stress_on<R: Reclaimer>() {
        let q: Arc<MsQueue<usize, R>> = Arc::new(MsQueue::with_reclaimer());
        let consumed = Arc::new(AtomicUsize::new(0));
        const N: usize = 1_000;
        let producers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..N {
                        q.enqueue(i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                std::thread::spawn(move || loop {
                    if q.dequeue().is_some() {
                        if consumed.fetch_add(1, Ordering::SeqCst) + 1 == 2 * N {
                            return;
                        }
                    } else if consumed.load(Ordering::SeqCst) == 2 * N {
                        return;
                    } else {
                        // Single core: don't starve the producers.
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::SeqCst), 2 * N);
        assert!(q.is_empty());
    }
}

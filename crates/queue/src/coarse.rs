use std::collections::VecDeque;
use std::fmt;

use cds_core::ConcurrentQueue;
use parking_lot::Mutex;

/// A coarse-grained lock-based queue: a `VecDeque` behind one mutex.
///
/// The baseline for experiment E3. Enqueuers and dequeuers exclude each
/// other even though they touch opposite ends of the queue — the exact
/// waste [`TwoLockQueue`](crate::TwoLockQueue) removes.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentQueue;
/// use cds_queue::CoarseQueue;
///
/// let q = CoarseQueue::new();
/// q.enqueue(1);
/// q.enqueue(2);
/// assert_eq!(q.dequeue(), Some(1));
/// ```
pub struct CoarseQueue<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> CoarseQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CoarseQueue {
            items: Mutex::new(VecDeque::new()),
        }
    }

    /// Number of elements currently stored.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for CoarseQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> ConcurrentQueue<T> for CoarseQueue<T> {
    const NAME: &'static str = "coarse";

    fn enqueue(&self, value: T) {
        self.items.lock().push_back(value);
    }

    fn dequeue(&self) -> Option<T> {
        self.items.lock().pop_front()
    }

    fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
}

impl<T> fmt::Debug for CoarseQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoarseQueue")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_order() {
        let q = CoarseQueue::new();
        q.enqueue('a');
        q.enqueue('b');
        assert_eq!(q.len(), 2);
        assert_eq!(q.dequeue(), Some('a'));
        assert_eq!(q.dequeue(), Some('b'));
        assert_eq!(q.dequeue(), None);
    }
}

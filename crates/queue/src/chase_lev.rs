use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, Ordering};
use std::sync::Arc;

use cds_reclaim::epoch::{Atomic, Guard, Owned};
use cds_reclaim::{Ebr, ReclaimGuard, Reclaimer};

/// Hazard slot protecting the current buffer generation during a steal.
const SLOT_BUFFER: usize = 0;

/// A growable circular buffer of possibly-uninitialized elements.
///
/// Entries are bitwise copies; ownership of an element is determined solely
/// by the `top`/`bottom` indices of the deque, never by the buffer, so the
/// buffer neither drops elements nor is it troubled by stale copies left in
/// abandoned generations.
struct Buffer<T> {
    storage: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T> Buffer<T> {
    fn new(capacity: usize) -> Self {
        Buffer {
            storage: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        }
    }

    fn capacity(&self) -> usize {
        self.storage.len()
    }

    /// # Safety
    /// The index must currently be owned by the caller per the deque
    /// protocol.
    unsafe fn write(&self, index: isize, value: T) {
        let slot = &self.storage[(index as usize) & (self.capacity() - 1)];
        // SAFETY: per the caller contract.
        unsafe { (*slot.get()).write(value) };
    }

    /// # Safety
    /// As for `write`; the caller must only treat the result as owned if it
    /// subsequently wins the index race (CAS on `top` / uncontended pop).
    unsafe fn read(&self, index: isize) -> T {
        let slot = &self.storage[(index as usize) & (self.capacity() - 1)];
        // SAFETY: per the caller contract.
        unsafe { (*slot.get()).assume_init_read() }
    }
}

/// The Chase–Lev work-stealing deque (SPAA '05).
///
/// The scheduler-building-block queue: the **owner** thread pushes and pops
/// at the *bottom* with plain loads and stores (one `SeqCst` fence in
/// `pop`), while any number of **thieves** steal from the *top* with a CAS.
/// Owner operations are wait-free except when the deque holds one element;
/// steals are lock-free.
///
/// Construction returns a [`Worker`]/[`Stealer`] pair: the worker is unique
/// and not cloneable (owner operations are unsynchronized against each
/// other); stealers clone freely.
///
/// The deque is generic over its reclamation backend `R`
/// ([`cds_reclaim::Reclaimer`], default [`Ebr`]), which manages buffer
/// generations: a thief may still be reading the old generation while the
/// owner installs a doubled one, so the old buffer is retired, not freed.
/// Only the steal path dereferences a buffer another thread may retire,
/// so it is the only place needing per-pointer protection
/// ([`ReclaimGuard::protect`]); the owner is the sole retirer and can
/// never race itself.
///
/// # Example
///
/// ```
/// use cds_queue::{ChaseLevDeque, Steal};
///
/// let (worker, stealer) = ChaseLevDeque::new();
/// worker.push(1);
/// worker.push(2);
/// assert_eq!(worker.pop(), Some(2));       // owner is LIFO
/// assert_eq!(stealer.steal(), Steal::Success(1)); // thieves are FIFO
/// ```
pub struct ChaseLevDeque<T, R: Reclaimer = Ebr> {
    /// Index one past the youngest element; written only by the owner.
    bottom: AtomicIsize,
    /// Index of the oldest element; CASed by thieves and the owner's
    /// last-element path.
    top: AtomicIsize,
    buffer: Atomic<Buffer<T>>,
    _reclaimer: std::marker::PhantomData<R>,
}

// SAFETY: elements cross threads by move; buffer generations are managed
// by the reclaimer.
unsafe impl<T: Send, R: Reclaimer> Send for ChaseLevDeque<T, R> {}
unsafe impl<T: Send, R: Reclaimer> Sync for ChaseLevDeque<T, R> {}

const INITIAL_CAPACITY: usize = 32;

impl<T> ChaseLevDeque<T> {
    /// Creates an empty deque on the default ([`Ebr`]) backend, returning
    /// its unique [`Worker`] and a cloneable [`Stealer`].
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (Worker<T>, Stealer<T>) {
        Self::with_reclaimer()
    }
}

impl<T, R: Reclaimer> ChaseLevDeque<T, R> {
    /// Creates an empty deque on the reclamation backend `R`.
    #[allow(clippy::new_ret_no_self)]
    pub fn with_reclaimer() -> (Worker<T, R>, Stealer<T, R>) {
        let deque = Arc::new(ChaseLevDeque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: Atomic::new(Buffer::new(INITIAL_CAPACITY)),
            _reclaimer: std::marker::PhantomData,
        });
        (
            Worker {
                deque: Arc::clone(&deque),
                _not_sync: std::marker::PhantomData,
            },
            Stealer { deque },
        )
    }

    /// Approximate number of elements (racy; diagnostics only).
    fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }
}

impl<T, R: Reclaimer> Drop for ChaseLevDeque<T, R> {
    fn drop(&mut self) {
        // SAFETY: unique access.
        let guard = unsafe { Guard::unprotected() };
        let buf = self.buffer.load(Ordering::Relaxed, &guard);
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        // SAFETY: indices [t, b) hold live elements owned by the deque.
        unsafe {
            let buf_ref = buf.deref();
            for i in t..b {
                drop(buf_ref.read(i));
            }
            drop(buf.into_owned());
        }
    }
}

impl<T, R: Reclaimer> fmt::Debug for ChaseLevDeque<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaseLevDeque")
            .field("len", &self.len())
            .field("reclaimer", &R::NAME)
            .finish()
    }
}

/// The owner handle of a [`ChaseLevDeque`]; not cloneable.
pub struct Worker<T, R: Reclaimer = Ebr> {
    deque: Arc<ChaseLevDeque<T, R>>,
    /// Owner operations are unsynchronized against each other, so the
    /// worker must not be shared (`!Sync`).
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
}

// SAFETY: the worker may migrate threads between operations; it just cannot
// be used from two threads at once (no Sync).
unsafe impl<T: Send, R: Reclaimer> Send for Worker<T, R> {}

impl<T, R: Reclaimer> Worker<T, R> {
    /// Pushes `value` at the bottom (owner end).
    pub fn push(&self, value: T) {
        let d = &*self.deque;
        cds_core::stress::yield_point();
        let b = d.bottom.load(Ordering::Relaxed);
        let t = d.top.load(Ordering::Acquire);
        // Only the owner replaces and retires buffers, so its own loads
        // need no protection; the guard is needed for `retire` below.
        let guard = R::enter();
        let mut buf = d.buffer.load(Ordering::Relaxed, &guard);

        if b - t >= unsafe { buf.deref() }.capacity() as isize {
            // Grow: copy live indices into a doubled buffer, publish it, and
            // defer the old one (thieves may still be reading it).
            let new = Buffer::new(unsafe { buf.deref() }.capacity() * 2);
            for i in t..b {
                // SAFETY: indices [t, b) are live; bitwise copy (ownership
                // stays index-determined).
                unsafe {
                    let v = std::ptr::read(
                        (buf.deref().storage[(i as usize) & (buf.deref().capacity() - 1)]).get(),
                    );
                    *new.storage[(i as usize) & (new.capacity() - 1)].get() = v;
                }
            }
            let new = Owned::new(new).into_shared(&guard);
            let old = buf;
            d.buffer.store(new, Ordering::Release);
            buf = new;
            // SAFETY: the old generation is unreachable for new loads.
            unsafe { guard.retire(old) };
        }

        // SAFETY: slot `b` is owned by the worker.
        unsafe { buf.deref().write(b, value) };
        // Release: the element must be visible before the new bottom.
        fence(Ordering::Release);
        d.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pops from the bottom (owner end, LIFO). Returns `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let d = &*self.deque;
        let b = d.bottom.load(Ordering::Relaxed) - 1;
        // The owner is the only thread that retires buffers, so its own
        // buffer load cannot race reclamation: a unit witness suffices.
        let guard = ();
        let buf = d.buffer.load(Ordering::Relaxed, &guard);
        d.bottom.store(b, Ordering::Relaxed);
        cds_core::stress::yield_point();
        // The fence orders our bottom store against the top load: either a
        // racing thief sees the lowered bottom, or we see its advanced top.
        fence(Ordering::SeqCst);
        let t = d.top.load(Ordering::Relaxed);

        if b < t {
            // Deque was empty; restore bottom.
            d.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }

        // SAFETY: index `b` held a live element when we lowered bottom.
        let value = unsafe { buf.deref().read(b) };
        if b > t {
            // More than one element: no thief can reach index b.
            return Some(value);
        }

        // Exactly one element: race thieves for it via top.
        let won = d
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        d.bottom.store(t + 1, Ordering::Relaxed);
        if won {
            Some(value)
        } else {
            // A thief took it; the bitwise copy we read must not be dropped.
            std::mem::forget(value);
            None
        }
    }

    /// Approximate number of elements (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// Returns `true` if the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T, R: Reclaimer> fmt::Debug for Worker<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Worker").field("len", &self.len()).finish()
    }
}

/// The result of a [`Stealer::steal`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was empty.
    Empty,
    /// Lost a race with another thief or the owner; worth retrying.
    Retry,
    /// Stole the oldest element.
    Success(T),
}

/// A thief handle of a [`ChaseLevDeque`]; clone one per stealing thread.
pub struct Stealer<T, R: Reclaimer = Ebr> {
    deque: Arc<ChaseLevDeque<T, R>>,
}

impl<T, R: Reclaimer> Clone for Stealer<T, R> {
    fn clone(&self) -> Self {
        Stealer {
            deque: Arc::clone(&self.deque),
        }
    }
}

impl<T, R: Reclaimer> Stealer<T, R> {
    /// Attempts to steal the oldest element (FIFO end).
    pub fn steal(&self) -> Steal<T> {
        let d = &*self.deque;
        cds_core::stress::yield_point();
        let t = d.top.load(Ordering::Acquire);
        // Order the top load before the bottom load (pairs with the owner's
        // SeqCst fence in `pop`).
        fence(Ordering::SeqCst);
        let b = d.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let guard = R::enter();
        // Protect-validate: the owner may retire this generation while we
        // read from it. A stale-but-alive generation is fine — growth
        // copies the live range, so index `t` is present in every
        // generation the hazard can pin.
        let buf = guard.protect(SLOT_BUFFER, &d.buffer, Ordering::Acquire);
        // SAFETY: the element at `t` was live when bottom was read; the
        // bitwise copy is only kept if the CAS below confirms ownership.
        let value = unsafe { buf.deref().read(t) };
        if d.top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(value)
        } else {
            std::mem::forget(value);
            Steal::Retry
        }
    }

    /// Approximate number of elements (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// Returns `true` if the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T, R: Reclaimer> fmt::Debug for Stealer<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stealer").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let (w, s) = ChaseLevDeque::new();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let (w, _s) = ChaseLevDeque::new();
        for i in 0..1000 {
            w.push(i);
        }
        for i in (0..1000).rev() {
            assert_eq!(w.pop(), Some(i));
        }
    }

    #[test]
    fn drop_frees_remaining_elements() {
        use std::sync::atomic::AtomicUsize;
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let (w, _s) = ChaseLevDeque::new();
            for _ in 0..10 {
                w.push(D(Arc::clone(&drops)));
            }
            drop(w.pop());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn push_pop_steal_on_every_backend() {
        fn run<R: Reclaimer>() {
            let (w, s) = ChaseLevDeque::<u64, R>::with_reclaimer();
            // Push past the initial capacity so buffers get retired.
            for i in 0..1000 {
                w.push(i);
            }
            assert_eq!(s.steal(), Steal::Success(0), "{} backend", R::NAME);
            for i in (2..1000).rev() {
                assert_eq!(w.pop(), Some(i), "{} backend", R::NAME);
            }
            assert_eq!(w.pop(), Some(1));
            assert_eq!(w.pop(), None);
            R::collect();
        }
        run::<Ebr>();
        run::<cds_reclaim::Hazard>();
        run::<cds_reclaim::Leak>();
        run::<cds_reclaim::DebugReclaim>();
    }

    #[test]
    fn concurrent_steals_get_distinct_elements() {
        let (w, s) = ChaseLevDeque::new();
        const N: u64 = 10_000;
        for i in 0..N {
            w.push(i);
        }
        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Retry => {}
                            Steal::Empty => return got,
                        }
                    }
                })
            })
            .collect();
        let mut mine = Vec::new();
        while let Some(v) = w.pop() {
            mine.push(v);
        }
        let mut seen: HashSet<u64> = mine.into_iter().collect();
        for t in thieves {
            for v in t.join().unwrap() {
                assert!(seen.insert(v), "element {v} taken twice");
            }
        }
        assert_eq!(seen.len() as u64, N, "elements lost");
    }
}

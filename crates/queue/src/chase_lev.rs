use cds_atomic::{fence, AtomicIsize, Ordering};
use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::Arc;

use cds_reclaim::epoch::{Atomic, Guard, Owned};
use cds_reclaim::{Ebr, ReclaimGuard, Reclaimer};

/// Hazard slot protecting the current buffer generation during a steal.
const SLOT_BUFFER: usize = 0;

/// A growable circular buffer of possibly-uninitialized elements.
///
/// Entries are bitwise copies; ownership of an element is determined solely
/// by the `top`/`bottom` indices of the deque, never by the buffer, so the
/// buffer neither drops elements nor is it troubled by stale copies left in
/// abandoned generations.
struct Buffer<T> {
    storage: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T> Buffer<T> {
    fn new(capacity: usize) -> Self {
        Buffer {
            storage: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        }
    }

    fn capacity(&self) -> usize {
        self.storage.len()
    }

    /// # Safety
    /// The index must currently be owned by the caller per the deque
    /// protocol.
    unsafe fn write(&self, index: isize, value: T) {
        let slot = &self.storage[(index as usize) & (self.capacity() - 1)];
        // SAFETY: per the caller contract.
        unsafe { (*slot.get()).write(value) };
    }

    /// # Safety
    /// As for `write`; the caller must only treat the result as owned if it
    /// subsequently wins the index race (CAS on `top` / uncontended pop).
    unsafe fn read(&self, index: isize) -> T {
        let slot = &self.storage[(index as usize) & (self.capacity() - 1)];
        // SAFETY: per the caller contract.
        unsafe { (*slot.get()).assume_init_read() }
    }
}

/// The Chase–Lev work-stealing deque (SPAA '05).
///
/// The scheduler-building-block queue: the **owner** thread pushes and pops
/// at the *bottom* with plain loads and stores (one `SeqCst` fence in
/// `pop`), while any number of **thieves** steal from the *top* with a CAS.
/// Owner operations are wait-free except when the deque holds one element;
/// steals are lock-free.
///
/// Construction returns a [`Worker`]/[`Stealer`] pair: the worker is unique
/// and not cloneable (owner operations are unsynchronized against each
/// other); stealers clone freely.
///
/// The deque is generic over its reclamation backend `R`
/// ([`cds_reclaim::Reclaimer`], default [`Ebr`]), which manages buffer
/// generations: a thief may still be reading the old generation while the
/// owner installs a doubled one, so the old buffer is retired, not freed.
/// Only the steal path dereferences a buffer another thread may retire,
/// so it is the only place needing per-pointer protection
/// ([`ReclaimGuard::protect`]); the owner is the sole retirer and can
/// never race itself.
///
/// # Example
///
/// ```
/// use cds_queue::{ChaseLevDeque, Steal};
///
/// let (worker, stealer) = ChaseLevDeque::new();
/// worker.push(1);
/// worker.push(2);
/// assert_eq!(worker.pop(), Some(2));       // owner is LIFO
/// assert_eq!(stealer.steal(), Steal::Success(1)); // thieves are FIFO
/// ```
pub struct ChaseLevDeque<T, R: Reclaimer = Ebr> {
    /// Index one past the youngest element; written only by the owner.
    bottom: AtomicIsize,
    /// Index of the oldest element; CASed by thieves and the owner's
    /// last-element path.
    top: AtomicIsize,
    buffer: Atomic<Buffer<T>>,
    _reclaimer: std::marker::PhantomData<R>,
}

// SAFETY: elements cross threads by move; buffer generations are managed
// by the reclaimer.
unsafe impl<T: Send, R: Reclaimer> Send for ChaseLevDeque<T, R> {}
unsafe impl<T: Send, R: Reclaimer> Sync for ChaseLevDeque<T, R> {}

const INITIAL_CAPACITY: usize = 32;

/// Upper bound on the number of elements one
/// [`Stealer::steal_batch_and_pop`] call transfers.
pub const MAX_BATCH: usize = 32;

impl<T> ChaseLevDeque<T> {
    /// Creates an empty deque on the default ([`Ebr`]) backend, returning
    /// its unique [`Worker`] and a cloneable [`Stealer`].
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (Worker<T>, Stealer<T>) {
        Self::with_reclaimer()
    }
}

impl<T, R: Reclaimer> ChaseLevDeque<T, R> {
    /// Creates an empty deque on the reclamation backend `R`.
    #[allow(clippy::new_ret_no_self)]
    pub fn with_reclaimer() -> (Worker<T, R>, Stealer<T, R>) {
        let deque = Arc::new(ChaseLevDeque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: Atomic::new(Buffer::new(INITIAL_CAPACITY)),
            _reclaimer: std::marker::PhantomData,
        });
        (
            Worker {
                deque: Arc::clone(&deque),
                _not_sync: std::marker::PhantomData,
            },
            Stealer { deque },
        )
    }

    /// Approximate number of elements (racy; diagnostics only).
    fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }
}

impl<T, R: Reclaimer> Drop for ChaseLevDeque<T, R> {
    fn drop(&mut self) {
        // SAFETY: unique access.
        let guard = unsafe { Guard::unprotected() };
        let buf = self.buffer.load(Ordering::Relaxed, &guard);
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        // SAFETY: indices [t, b) hold live elements owned by the deque.
        unsafe {
            let buf_ref = buf.deref();
            for i in t..b {
                drop(buf_ref.read(i));
            }
            drop(buf.into_owned());
        }
    }
}

impl<T, R: Reclaimer> fmt::Debug for ChaseLevDeque<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaseLevDeque")
            .field("len", &self.len())
            .field("reclaimer", &R::NAME)
            .finish()
    }
}

/// The owner handle of a [`ChaseLevDeque`]; not cloneable.
pub struct Worker<T, R: Reclaimer = Ebr> {
    deque: Arc<ChaseLevDeque<T, R>>,
    /// Owner operations are unsynchronized against each other, so the
    /// worker must not be shared (`!Sync`).
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
}

// SAFETY: the worker may migrate threads between operations; it just cannot
// be used from two threads at once (no Sync).
unsafe impl<T: Send, R: Reclaimer> Send for Worker<T, R> {}

impl<T, R: Reclaimer> Worker<T, R> {
    /// Pushes `value` at the bottom (owner end).
    pub fn push(&self, value: T) {
        let d = &*self.deque;
        cds_core::stress::yield_point();
        let b = d.bottom.load(Ordering::Relaxed);
        let t = d.top.load(Ordering::Acquire);
        // Only the owner replaces and retires buffers, so its own loads
        // need no protection; the guard is needed for `retire` below.
        let guard = R::enter();
        let mut buf = d.buffer.load(Ordering::Relaxed, &guard);

        if b - t >= unsafe { buf.deref() }.capacity() as isize {
            // Grow: copy live indices into a doubled buffer, publish it, and
            // defer the old one (thieves may still be reading it).
            let new = Buffer::new(unsafe { buf.deref() }.capacity() * 2);
            for i in t..b {
                // SAFETY: indices [t, b) are live; bitwise copy (ownership
                // stays index-determined).
                unsafe {
                    let v = std::ptr::read(
                        (buf.deref().storage[(i as usize) & (buf.deref().capacity() - 1)]).get(),
                    );
                    *new.storage[(i as usize) & (new.capacity() - 1)].get() = v;
                }
            }
            let new = Owned::new(new).into_shared(&guard);
            let old = buf;
            d.buffer.store(new, Ordering::Release);
            buf = new;
            // SAFETY: the old generation is unreachable for new loads.
            unsafe { guard.retire(old) };
        }

        // SAFETY: slot `b` is owned by the worker.
        unsafe { buf.deref().write(b, value) };
        // Release: the element must be visible before the new bottom.
        fence(Ordering::Release);
        d.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pops from the bottom (owner end, LIFO). Returns `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let d = &*self.deque;
        let b = d.bottom.load(Ordering::Relaxed) - 1;
        // The owner is the only thread that retires buffers, so its own
        // buffer load cannot race reclamation: a unit witness suffices.
        let guard = ();
        let buf = d.buffer.load(Ordering::Relaxed, &guard);
        d.bottom.store(b, Ordering::Relaxed);
        cds_core::stress::yield_point();
        // The fence orders our bottom store against the top load: either a
        // racing thief sees the lowered bottom, or we see its advanced top.
        fence(Ordering::SeqCst);
        let t = d.top.load(Ordering::Relaxed);

        if b < t {
            // Deque was empty; restore bottom.
            d.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }

        // SAFETY: index `b` held a live element when we lowered bottom.
        let value = unsafe { buf.deref().read(b) };
        if b > t {
            // More than one element: no thief can reach index b.
            return Some(value);
        }

        // Exactly one element: race thieves for it via top.
        let won = d
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        d.bottom.store(t + 1, Ordering::Relaxed);
        if won {
            Some(value)
        } else {
            // A thief took it; the bitwise copy we read must not be dropped.
            std::mem::forget(value);
            None
        }
    }

    /// Approximate number of elements (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// Returns `true` if the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T, R: Reclaimer> fmt::Debug for Worker<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Worker").field("len", &self.len()).finish()
    }
}

/// The result of a [`Stealer::steal`] attempt.
///
/// # Termination-detection contract
///
/// `Retry` and `Empty` are **not** interchangeable. `Empty` means the
/// thief observed `top >= bottom` through the fence protocol — at that
/// instant the deque held nothing. `Retry` means the thief *lost a CAS
/// race*: an element existed, someone else (another thief, or the owner
/// popping the last element) took it, and the deque may still be
/// non-empty. A scheduler deciding whether a worker may go idle must
/// therefore treat `Retry` as "work may remain — re-scan", never as
/// emptiness; collapsing the two re-introduces the classic lost-task
/// termination bug. The enum is `#[must_use]` so a dropped result (which
/// silently discards that distinction — and, for `Success`, the element)
/// is a compile-time warning.
#[must_use = "a discarded Steal loses the Retry/Empty distinction (and any stolen element)"]
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty (`top >= bottom`).
    Empty,
    /// Lost a race with another thief or the owner; the deque may still
    /// hold elements — worth retrying before reporting emptiness.
    Retry,
    /// Stole the oldest element.
    Success(T),
}

/// A thief handle of a [`ChaseLevDeque`]; clone one per stealing thread.
pub struct Stealer<T, R: Reclaimer = Ebr> {
    deque: Arc<ChaseLevDeque<T, R>>,
}

impl<T, R: Reclaimer> Clone for Stealer<T, R> {
    fn clone(&self) -> Self {
        Stealer {
            deque: Arc::clone(&self.deque),
        }
    }
}

impl<T, R: Reclaimer> Stealer<T, R> {
    /// Attempts to steal the oldest element (FIFO end).
    pub fn steal(&self) -> Steal<T> {
        let d = &*self.deque;
        cds_core::stress::yield_point();
        let t = d.top.load(Ordering::Acquire);
        // Order the top load before the bottom load (pairs with the owner's
        // SeqCst fence in `pop`).
        fence(Ordering::SeqCst);
        let b = d.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let guard = R::enter();
        // Protect-validate: the owner may retire this generation while we
        // read from it. A stale-but-alive generation is fine — growth
        // copies the live range, so index `t` is present in every
        // generation the hazard can pin.
        let buf = guard.protect(SLOT_BUFFER, &d.buffer, Ordering::Acquire);
        // SAFETY: the element at `t` was live when bottom was read; the
        // bitwise copy is only kept if the CAS below confirms ownership.
        let value = unsafe { buf.deref().read(t) };
        if d.top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(value)
        } else {
            std::mem::forget(value);
            Steal::Retry
        }
    }

    /// Steals up to half of the victim's elements (capped at
    /// [`MAX_BATCH`]), pushing all but the first into `dest` (the thief's
    /// own worker) and returning the first.
    ///
    /// # Protocol
    ///
    /// The batch is taken **one element at a time, each with its own CAS
    /// on `top`** — the batch amortizes scheduling bookkeeping, not
    /// synchronization. A single multi-slot CAS (`top: t → t+n`) would be
    /// unsound here: the owner's `pop` takes slot `b-1` *without* a CAS
    /// whenever it observes `b-1 > t` after its fence, so a wide CAS
    /// could succeed while the owner has already taken one of the covered
    /// slots — both threads would own the same element. Per-element CAS
    /// restores the invariant that every transferred slot is won by
    /// exactly one `top` transition.
    ///
    /// Each iteration re-validates `top` (stop if another thief advanced
    /// it), re-runs the fence-ordered emptiness check, and re-protects
    /// the buffer (the owner may have grown and retired the generation
    /// read by the previous iteration).
    ///
    /// # Return value
    ///
    /// Follows the [`Steal`] termination contract: `Empty` only if the
    /// initial fence-ordered check saw `top >= bottom`; `Retry` if the
    /// *first* CAS was lost (nothing transferred); `Success(first)` once
    /// at least one element is won — later lost races simply end the
    /// batch early with whatever was already moved to `dest`.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T, R>) -> Steal<T> {
        let d = &*self.deque;
        cds_core::stress::yield_point();
        let mut t = d.top.load(Ordering::Acquire);
        // Order the top load before the bottom load (pairs with the owner's
        // SeqCst fence in `pop`).
        fence(Ordering::SeqCst);
        let b = d.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Take half the observed length, rounded up, capped. The target is
        // fixed from this initial observation; shrinkage is handled by the
        // per-iteration re-checks below.
        let target = (((b - t + 1) / 2) as usize).min(MAX_BATCH);
        let guard = R::enter();
        let mut first: Option<T> = None;
        let mut taken = 0usize;
        while taken < target {
            if taken > 0 {
                cds_core::stress::yield_point();
                // Another thief advancing top past our cursor means our
                // next CAS would fail; stop with what we have.
                if d.top.load(Ordering::Acquire) != t {
                    break;
                }
                fence(Ordering::SeqCst);
                if t >= d.bottom.load(Ordering::Acquire) {
                    break;
                }
            }
            // Re-protect every iteration: the owner may retire the
            // generation we pinned last time around. A stale-but-alive
            // generation is fine — growth copies the live range, so index
            // `t` is present in every generation the hazard can pin.
            let buf = guard.protect(SLOT_BUFFER, &d.buffer, Ordering::Acquire);
            // SAFETY: the element at `t` was live when bottom was read;
            // the bitwise copy is only kept if the CAS below wins.
            let value = unsafe { buf.deref().read(t) };
            if d.top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                match first {
                    None => first = Some(value),
                    Some(_) => dest.push(value),
                }
                taken += 1;
                t += 1;
            } else {
                std::mem::forget(value);
                break;
            }
        }
        match first {
            None => Steal::Retry,
            Some(v) => {
                cds_obs::add(cds_obs::Event::DequeStealBatchElems, taken as u64);
                cds_obs::record_max(cds_obs::Event::DequeStealBatchMax, taken as u64);
                Steal::Success(v)
            }
        }
    }

    /// Approximate number of elements (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// Returns `true` if the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T, R: Reclaimer> fmt::Debug for Stealer<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stealer").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let (w, s) = ChaseLevDeque::new();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let (w, _s) = ChaseLevDeque::new();
        for i in 0..1000 {
            w.push(i);
        }
        for i in (0..1000).rev() {
            assert_eq!(w.pop(), Some(i));
        }
    }

    #[test]
    fn drop_frees_remaining_elements() {
        use cds_atomic::AtomicUsize;
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let (w, _s) = ChaseLevDeque::new();
            for _ in 0..10 {
                w.push(D(Arc::clone(&drops)));
            }
            drop(w.pop());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn push_pop_steal_on_every_backend() {
        fn run<R: Reclaimer>() {
            let (w, s) = ChaseLevDeque::<u64, R>::with_reclaimer();
            // Push past the initial capacity so buffers get retired.
            for i in 0..1000 {
                w.push(i);
            }
            assert_eq!(s.steal(), Steal::Success(0), "{} backend", R::NAME);
            for i in (2..1000).rev() {
                assert_eq!(w.pop(), Some(i), "{} backend", R::NAME);
            }
            assert_eq!(w.pop(), Some(1));
            assert_eq!(w.pop(), None);
            R::collect();
        }
        run::<Ebr>();
        run::<cds_reclaim::Hazard>();
        run::<cds_reclaim::Leak>();
        run::<cds_reclaim::DebugReclaim>();
    }

    #[test]
    fn batch_steal_moves_half_and_pops_oldest() {
        let (victim, s) = ChaseLevDeque::new();
        let (thief, thief_s) = ChaseLevDeque::new();
        for i in 0..10 {
            victim.push(i);
        }
        // 10 elements: target = min(11/2, MAX_BATCH) = 5; the oldest is
        // returned, the next four land in the thief's deque in steal
        // (FIFO) order.
        assert_eq!(s.steal_batch_and_pop(&thief), Steal::Success(0));
        assert_eq!(thief.len(), 4);
        for i in 1..5 {
            assert_eq!(thief_s.steal(), Steal::Success(i));
        }
        // The victim keeps the younger half.
        assert_eq!(victim.len(), 5);
        for i in (5..10).rev() {
            assert_eq!(victim.pop(), Some(i));
        }
    }

    #[test]
    fn batch_steal_empty_and_singleton() {
        let (victim, s) = ChaseLevDeque::new();
        let (thief, _ts) = ChaseLevDeque::<u64>::new();
        assert_eq!(s.steal_batch_and_pop(&thief), Steal::Empty);
        victim.push(7);
        assert_eq!(s.steal_batch_and_pop(&thief), Steal::Success(7));
        assert!(thief.is_empty());
        assert_eq!(victim.pop(), None);
    }

    #[test]
    fn batch_steal_is_capped() {
        let (victim, s) = ChaseLevDeque::new();
        let (thief, _ts) = ChaseLevDeque::new();
        for i in 0..(4 * MAX_BATCH as u64) {
            victim.push(i);
        }
        assert_eq!(s.steal_batch_and_pop(&thief), Steal::Success(0));
        assert_eq!(thief.len(), MAX_BATCH - 1);
        assert_eq!(victim.len(), 3 * MAX_BATCH);
    }

    #[test]
    fn batch_steal_on_every_backend_with_growth() {
        fn run<R: Reclaimer>() {
            let (victim, s) = ChaseLevDeque::<u64, R>::with_reclaimer();
            let (thief, thief_s) = ChaseLevDeque::<u64, R>::with_reclaimer();
            // Push past the initial capacity so batch steals span retired
            // buffer generations.
            const N: u64 = 1000;
            for i in 0..N {
                victim.push(i);
            }
            let mut seen = HashSet::new();
            loop {
                match s.steal_batch_and_pop(&thief) {
                    Steal::Success(v) => {
                        assert!(seen.insert(v), "{}: {v} stolen twice", R::NAME);
                    }
                    Steal::Retry => {}
                    Steal::Empty => break,
                }
            }
            loop {
                match thief_s.steal() {
                    Steal::Success(v) => {
                        assert!(seen.insert(v), "{}: {v} duplicated in dest", R::NAME);
                    }
                    Steal::Retry => {}
                    Steal::Empty => break,
                }
            }
            assert_eq!(seen.len() as u64, N, "{} backend lost elements", R::NAME);
            R::collect();
        }
        run::<Ebr>();
        run::<cds_reclaim::Hazard>();
        run::<cds_reclaim::Leak>();
        run::<cds_reclaim::DebugReclaim>();
    }

    #[test]
    fn concurrent_batch_steals_get_distinct_elements() {
        let (w, s) = ChaseLevDeque::new();
        const N: u64 = 10_000;
        for i in 0..N {
            w.push(i);
        }
        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let (mine, my_stealer) = ChaseLevDeque::new();
                    let mut got = Vec::new();
                    loop {
                        match s.steal_batch_and_pop(&mine) {
                            Steal::Success(v) => {
                                got.push(v);
                                while let Some(v) = mine.pop() {
                                    got.push(v);
                                }
                            }
                            Steal::Retry => {}
                            Steal::Empty => {
                                drop(my_stealer);
                                return got;
                            }
                        }
                    }
                })
            })
            .collect();
        let mut mine = Vec::new();
        while let Some(v) = w.pop() {
            mine.push(v);
        }
        let mut seen: HashSet<u64> = mine.into_iter().collect();
        for t in thieves {
            for v in t.join().unwrap() {
                assert!(seen.insert(v), "element {v} taken twice");
            }
        }
        assert_eq!(seen.len() as u64, N, "elements lost");
    }

    #[test]
    fn concurrent_steals_get_distinct_elements() {
        let (w, s) = ChaseLevDeque::new();
        const N: u64 = 10_000;
        for i in 0..N {
            w.push(i);
        }
        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Retry => {}
                            Steal::Empty => return got,
                        }
                    }
                })
            })
            .collect();
        let mut mine = Vec::new();
        while let Some(v) = w.pop() {
            mine.push(v);
        }
        let mut seen: HashSet<u64> = mine.into_iter().collect();
        for t in thieves {
            for v in t.join().unwrap() {
                assert!(seen.insert(v), "element {v} taken twice");
            }
        }
        assert_eq!(seen.len() as u64, N, "elements lost");
    }
}

//! Log-bucketed latency histograms (HDR-style).
//!
//! Per-thread workers record nanosecond latencies into a private
//! [`LatencyHistogram`] — a fixed array of counters, so the hot path is one
//! index computation and one increment, with **no allocation** after
//! construction — and the driver merges the per-thread histograms once the
//! run finishes ([`LatencyHistogram::merge`]).
//!
//! Bucketing: values below [`SUBS`] (32 ns) are recorded exactly; above
//! that, each power-of-two octave is subdivided into [`SUBS`] linear
//! sub-buckets, giving a worst-case relative error of `1/32` (~3%) across
//! the full `u64` range — the standard high-dynamic-range layout.

/// log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per power-of-two octave (values `< SUBS` are exact).
const SUBS: usize = 1 << SUB_BITS;
/// Total buckets: the exact region plus 59 subdivided octaves (2^5..2^63).
const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// A log-bucketed histogram of nanosecond latencies.
///
/// # Example
///
/// ```
/// use cds_bench::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in [90u64, 100, 110, 10_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 4);
/// let p50 = h.percentile(50.0);
/// assert!((90..=115).contains(&p50));
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram (the only allocation it ever performs).
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0u64; BUCKETS]),
            total: 0,
        }
    }

    /// Bucket index for a nanosecond value; total order, monotone in `ns`.
    #[inline]
    fn index(ns: u64) -> usize {
        if ns < SUBS as u64 {
            ns as usize
        } else {
            // Highest set bit is >= SUB_BITS; the sub-bucket is the next
            // SUB_BITS bits below it.
            let octave = 63 - ns.leading_zeros();
            let sub = ((ns >> (octave - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
            SUBS + ((octave - SUB_BITS) as usize) * SUBS + sub
        }
    }

    /// Midpoint (representative value) of bucket `idx`.
    fn bucket_mid(idx: usize) -> u64 {
        if idx < SUBS {
            idx as u64
        } else {
            let octave = SUB_BITS + ((idx - SUBS) / SUBS) as u32;
            let sub = ((idx - SUBS) % SUBS) as u64;
            let width = 1u64 << (octave - SUB_BITS);
            let low = (1u64 << octave) + sub * width;
            low + width / 2
        }
    }

    /// Records one latency observation. Allocation-free.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::index(ns)] += 1;
        self.total += 1;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Adds every bucket of `other` into `self` (post-run merge of
    /// per-thread histograms).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
    }

    /// Value at percentile `p` (e.g. `50.0`, `99.9`), as the midpoint of
    /// the bucket containing that rank. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Self::bucket_mid(idx);
            }
        }
        Self::bucket_mid(BUCKETS - 1)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50_ns", &self.percentile(50.0))
            .field("p99_ns", &self.percentile(99.0))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        // Every value below SUBS occupies its own bucket.
        for v in 0..32u64 {
            assert_eq!(LatencyHistogram::index(v), v as usize);
        }
    }

    #[test]
    fn index_is_monotone_and_bounded() {
        let mut prev = 0usize;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for probe in [v, v + v / 3, v + v / 2, (v - 1).max(1)] {
                let idx = LatencyHistogram::index(probe);
                assert!(idx < BUCKETS, "index {idx} out of range for {probe}");
                if probe >= 1u64 << shift {
                    assert!(idx >= prev);
                }
            }
            prev = LatencyHistogram::index(v);
        }
        assert_eq!(LatencyHistogram::index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_mid_lands_in_its_own_bucket() {
        for shift in 0..63u32 {
            let v = (1u64 << shift) + (1u64 << shift) / 3;
            let idx = LatencyHistogram::index(v);
            let mid = LatencyHistogram::bucket_mid(idx);
            assert_eq!(LatencyHistogram::index(mid), idx, "value {v}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[100u64, 1_000, 10_000, 123_456, 9_999_999] {
            let mid = LatencyHistogram::bucket_mid(LatencyHistogram::index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 16.0, "value {v}: midpoint {mid}, err {err}");
        }
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        let mut x = 1u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 1_000_000);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        let p999 = h.percentile(99.9);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
    }
}

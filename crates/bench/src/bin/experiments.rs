//! Regenerates the evaluation tables (experiments E1–E10 of DESIGN.md).
//!
//! ```text
//! cargo run -p cds-bench --release --bin experiments -- all
//! cargo run -p cds-bench --release --bin experiments -- e4 e5
//! cargo run -p cds-bench --release --bin experiments -- --quick all
//! ```
//!
//! Output: one Markdown table per experiment, rows = implementations,
//! columns = thread counts (for ratio sweeps, one table per read ratio).
//! Numbers are million operations per second (higher is better).

use std::sync::Arc;

use cds_bench::{
    counter_throughput, lock_throughput, map_throughput, pq_throughput, queue_throughput,
    set_throughput, stack_throughput, LeakyTreiberStack, Workload,
};
use cds_core::ConcurrentStack;
use cds_sync::RawLock;

const THREAD_SWEEP: &[usize] = &[1, 2, 4, 8];

struct Scale {
    ops: usize,
    list_ops: usize,
}

fn header(title: &str) {
    println!("\n### {title}\n");
    print!("| implementation |");
    for t in THREAD_SWEEP {
        print!(" {t} thr |");
    }
    println!();
    print!("|---|");
    for _ in THREAD_SWEEP {
        print!("---|");
    }
    println!();
}

fn row(name: &str, cells: &[f64]) {
    print!("| {name} |");
    for c in cells {
        print!(" {c:.3} |");
    }
    println!();
}

fn e1_counters(s: &Scale) {
    header("E1 — counter throughput (increment-only, Mops/s)");
    macro_rules! bench {
        ($name:expr, $ctor:expr) => {{
            let cells: Vec<f64> = THREAD_SWEEP
                .iter()
                .map(|&t| counter_throughput(Arc::new($ctor), t, s.ops / t))
                .collect();
            row($name, &cells);
        }};
    }
    bench!("lock", cds_counter::LockCounter::new());
    bench!("atomic", cds_counter::AtomicCounter::new());
    bench!("sharded", cds_counter::ShardedCounter::new());
    bench!("combining-tree", cds_counter::CombiningTreeCounter::new());
    bench!("flat-combining", cds_counter::FcCounter::new());
}

fn e2_stacks(s: &Scale) {
    header("E2 — stack throughput (50/50 push/pop, Mops/s)");
    macro_rules! bench {
        ($name:expr, $ctor:expr) => {{
            let cells: Vec<f64> = THREAD_SWEEP
                .iter()
                .map(|&t| stack_throughput(Arc::new($ctor), t, s.ops / t))
                .collect();
            row($name, &cells);
        }};
    }
    bench!("coarse", cds_stack::CoarseStack::new());
    bench!("flat-combining", cds_stack::FcStack::new());
    bench!("treiber (EBR)", cds_stack::TreiberStack::new());
    bench!("treiber (HP)", cds_stack::HpTreiberStack::new());
    bench!("elimination", cds_stack::EliminationBackoffStack::new());
    // Ablation (DESIGN.md decision #4): elimination parameters.
    bench!(
        "elimination (1 slot, 16 spins)",
        cds_stack::EliminationBackoffStack::with_params(1, 16)
    );
    bench!(
        "elimination (8 slots, 256 spins)",
        cds_stack::EliminationBackoffStack::with_params(8, 256)
    );
}

fn e3_queues(s: &Scale) {
    header("E3 — queue throughput (50/50 enq/deq, Mops/s)");
    macro_rules! bench {
        ($name:expr, $ctor:expr) => {{
            let cells: Vec<f64> = THREAD_SWEEP
                .iter()
                .map(|&t| queue_throughput(Arc::new($ctor), t, s.ops / t))
                .collect();
            row($name, &cells);
        }};
    }
    bench!("coarse", cds_queue::CoarseQueue::new());
    bench!("flat-combining", cds_queue::FcQueue::new());
    bench!("two-lock", cds_queue::TwoLockQueue::new());
    bench!("michael-scott", cds_queue::MsQueue::new());
    bench!(
        "bounded (vyukov)",
        cds_queue::BoundedQueue::with_capacity(1 << 16)
    );
}

fn ratio_sweep_sets<F>(title: &str, ops: usize, key_range: u64, mut make_rows: F)
where
    F: FnMut(Workload) -> Vec<(String, f64)>,
{
    for &(read_pct, insert_pct, label) in &[
        (0u8, 50u8, "0% reads"),
        (50, 25, "50% reads"),
        (90, 5, "90% reads"),
    ] {
        header(&format!("{title} — {label}"));
        // Collect per-implementation rows across the thread sweep.
        let mut table: Vec<(String, Vec<f64>)> = Vec::new();
        for &t in THREAD_SWEEP {
            let w = Workload {
                threads: t,
                ops_per_thread: ops / t,
                key_range,
                read_pct,
                insert_pct,
                prefill: (key_range / 2) as usize,
            };
            for (i, (name, mops)) in make_rows(w).into_iter().enumerate() {
                if table.len() <= i {
                    table.push((name, Vec::new()));
                }
                table[i].1.push(mops);
            }
        }
        for (name, cells) in &table {
            row(name, cells);
        }
    }
}

fn e4_lists(s: &Scale) {
    ratio_sweep_sets("E4 — list-based sets (Mops/s)", s.list_ops, 512, |w| {
        vec![
            (
                "coarse".into(),
                set_throughput(Arc::new(cds_list::CoarseList::new()), w),
            ),
            (
                "fine (hand-over-hand)".into(),
                set_throughput(Arc::new(cds_list::FineList::new()), w),
            ),
            (
                "optimistic".into(),
                set_throughput(Arc::new(cds_list::OptimisticList::new()), w),
            ),
            (
                "lazy".into(),
                set_throughput(Arc::new(cds_list::LazyList::new()), w),
            ),
            (
                "harris-michael".into(),
                set_throughput(Arc::new(cds_list::HarrisMichaelList::new()), w),
            ),
        ]
    });
}

fn e5_maps(s: &Scale) {
    ratio_sweep_sets("E5 — hash maps (Mops/s)", s.ops, 65_536, |w| {
        vec![
            (
                "coarse".into(),
                map_throughput(Arc::new(cds_map::CoarseMap::new()), w),
            ),
            (
                "striped".into(),
                map_throughput(Arc::new(cds_map::StripedHashMap::new()), w),
            ),
            (
                "split-ordered".into(),
                map_throughput(Arc::new(cds_map::SplitOrderedHashMap::new()), w),
            ),
        ]
    });
}

fn e6_skiplists(s: &Scale) {
    ratio_sweep_sets("E6 — skiplist sets (Mops/s)", s.ops, 65_536, |w| {
        vec![
            (
                "coarse".into(),
                set_throughput(Arc::new(cds_skiplist::CoarseSkipList::new()), w),
            ),
            (
                "lazy".into(),
                set_throughput(Arc::new(cds_skiplist::LazySkipList::new()), w),
            ),
            (
                "lock-free".into(),
                set_throughput(Arc::new(cds_skiplist::LockFreeSkipList::new()), w),
            ),
        ]
    });
}

fn e7_trees(s: &Scale) {
    ratio_sweep_sets("E7 — binary search trees (Mops/s)", s.ops, 65_536, |w| {
        vec![
            (
                "coarse".into(),
                set_throughput(Arc::new(cds_tree::CoarseBst::new()), w),
            ),
            (
                "fine (external)".into(),
                set_throughput(Arc::new(cds_tree::FineBst::new()), w),
            ),
            (
                "ellen (lock-free)".into(),
                set_throughput(Arc::new(cds_tree::LockFreeBst::new()), w),
            ),
        ]
    });
}

fn e8_priority_queues(s: &Scale) {
    header("E8 — priority queues (50/50 insert/remove-min, Mops/s)");
    macro_rules! bench {
        ($name:expr, $ctor:expr) => {{
            let cells: Vec<f64> = THREAD_SWEEP
                .iter()
                .map(|&t| pq_throughput(Arc::new($ctor), t, s.ops / t))
                .collect();
            row($name, &cells);
        }};
    }
    bench!("coarse-heap", cds_prio::CoarseBinaryHeap::new());
    bench!(
        "skiplist (lotan-shavit)",
        cds_prio::SkipListPriorityQueue::new()
    );
}

fn e9_locks(s: &Scale) {
    header("E9 — lock acquisition under contention (M acquisitions/s)");

    fn bench_raw<L: RawLock + 'static>(ops: usize) -> Vec<f64> {
        THREAD_SWEEP
            .iter()
            .map(|&t| {
                let lock = Arc::new(cds_sync::Lock::<L, u64>::new(0));
                lock_throughput(t, ops / t, move || {
                    *lock.lock() += 1;
                })
            })
            .collect()
    }

    row("tas", &bench_raw::<cds_sync::TasLock>(s.ops));
    row("ttas+backoff", &bench_raw::<cds_sync::TtasLock>(s.ops));
    row("ticket", &bench_raw::<cds_sync::TicketLock>(s.ops));
    row("clh", &bench_raw::<cds_sync::ClhLock>(s.ops));
    row("mcs", &bench_raw::<cds_sync::McsLock>(s.ops));

    let std_cells: Vec<f64> = THREAD_SWEEP
        .iter()
        .map(|&t| {
            let lock = Arc::new(std::sync::Mutex::new(0u64));
            lock_throughput(t, s.ops / t, move || {
                *lock.lock().unwrap() += 1;
            })
        })
        .collect();
    row("std::sync::Mutex", &std_cells);

    let pl_cells: Vec<f64> = THREAD_SWEEP
        .iter()
        .map(|&t| {
            let lock = Arc::new(parking_lot::Mutex::new(0u64));
            lock_throughput(t, s.ops / t, move || {
                *lock.lock() += 1;
            })
        })
        .collect();
    row("parking_lot::Mutex", &pl_cells);
}

fn e10_reclamation(s: &Scale) {
    header("E10 — reclamation schemes on Treiber push/pop churn (Mops/s)");
    macro_rules! bench {
        ($name:expr, $ctor:expr) => {{
            let cells: Vec<f64> = THREAD_SWEEP
                .iter()
                .map(|&t| stack_throughput(Arc::new($ctor), t, s.ops / t))
                .collect();
            row($name, &cells);
        }};
    }
    bench!("epoch (EBR)", cds_stack::TreiberStack::new());
    bench!("hazard pointers", cds_stack::HpTreiberStack::new());
    bench!("leak (no reclamation)", LeakyTreiberStack::new());

    // Bounded-garbage evidence for HP: churn hard, then report backlog.
    let hp = Arc::new(cds_stack::HpTreiberStack::new());
    for i in 0..100_000u64 {
        hp.push(i);
        std::hint::black_box(hp.pop());
    }
    println!(
        "\nHP garbage backlog after 100k churn ops: {} nodes (bounded by design)",
        hp.garbage_len()
    );
    let collector_epoch = {
        let c = cds_reclaim::epoch::Collector::new();
        c.collect();
        c.epoch()
    };
    let _ = collector_epoch;
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let run_all = wanted.is_empty() || wanted.iter().any(|a| a == "all");
    let want = |id: &str| run_all || wanted.iter().any(|a| a == id);

    let scale = if quick {
        Scale {
            ops: 40_000,
            list_ops: 8_000,
        }
    } else {
        Scale {
            ops: 400_000,
            list_ops: 40_000,
        }
    };

    println!("# cds experiment tables");
    println!(
        "\nhost: {} hardware threads; sweep {:?}; {} ops/experiment{}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        THREAD_SWEEP,
        scale.ops,
        if quick { " (--quick)" } else { "" }
    );

    if want("e1") {
        e1_counters(&scale);
    }
    if want("e2") {
        e2_stacks(&scale);
    }
    if want("e3") {
        e3_queues(&scale);
    }
    if want("e4") {
        e4_lists(&scale);
    }
    if want("e5") {
        e5_maps(&scale);
    }
    if want("e6") {
        e6_skiplists(&scale);
    }
    if want("e7") {
        e7_trees(&scale);
    }
    if want("e8") {
        e8_priority_queues(&scale);
    }
    if want("e9") {
        e9_locks(&scale);
    }
    if want("e10") {
        e10_reclamation(&scale);
    }
}

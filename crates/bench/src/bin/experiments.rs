//! Regenerates the evaluation tables (experiments E1–E14 of DESIGN.md) and
//! emits the machine-readable measurement file.
//!
//! ```text
//! cargo run -p cds-bench --release --bin experiments -- all
//! cargo run -p cds-bench --release --bin experiments -- e4 e5
//! cargo run -p cds-bench --release --bin experiments -- all --quick --json BENCH_experiments.json
//! cargo run -p cds-bench --release --bin experiments -- check BENCH_experiments.json
//! ```
//!
//! Output: one Markdown table per experiment, rows = implementations,
//! columns = thread counts (for ratio sweeps, one table per read ratio).
//! Numbers are million operations per second (higher is better). With
//! `--json <path>`, every measured cell is also recorded as a
//! [`Sample`](cds_bench::Sample) — throughput plus p50/p90/p99/p99.9
//! sampled latency — and written as a schema-versioned JSON document
//! (see `cds_bench::report` for the schema). `check <path>` validates an
//! existing document and exits non-zero on schema violations or missing
//! experiments; CI runs it after the smoke run.

use std::sync::Arc;

use cds_bench::json::Json;
use cds_bench::{
    counter_run, lock_run, map_run, pq_run, queue_run, report, set_run, stack_run, Report,
    RunStats, Sample, Warmup, Workload,
};
use cds_core::{ConcurrentMap, ConcurrentSet, ConcurrentStack};
use cds_sync::RawLock;

const THREAD_SWEEP: &[usize] = &[1, 2, 4, 8];

struct Scale {
    ops: usize,
    list_ops: usize,
}

/// Shared run state: workload scale, warmup policy, and the sample sink.
struct Ctx {
    scale: Scale,
    warm: Warmup,
    report: Report,
}

impl Ctx {
    /// Records one measured cell into the report and returns its Mops/s.
    fn record(&mut self, experiment: &str, impl_name: &str, w: &Workload, stats: &RunStats) -> f64 {
        self.report
            .push(Sample::from_stats(experiment, impl_name, w, stats));
        stats.mops
    }

    /// Records one measured cell tagged with its reclamation backend.
    fn record_backend(
        &mut self,
        experiment: &str,
        impl_name: &str,
        backend: &str,
        w: &Workload,
        stats: &RunStats,
    ) -> f64 {
        self.report
            .push(Sample::from_stats(experiment, impl_name, w, stats).with_reclaimer(backend));
        stats.mops
    }

    /// Records one measured cell with its contention-telemetry delta (if
    /// the bench binary was built with the `telemetry` feature).
    fn record_telemetry(
        &mut self,
        experiment: &str,
        impl_name: &str,
        w: &Workload,
        stats: &RunStats,
        telemetry: Option<report::TelemetryRecord>,
    ) -> f64 {
        let mut sample = Sample::from_stats(experiment, impl_name, w, stats);
        if let Some(t) = telemetry {
            sample = sample.with_telemetry(t);
        }
        self.report.push(sample);
        stats.mops
    }
}

fn header(title: &str) {
    println!("\n### {title}\n");
    print!("| implementation |");
    for t in THREAD_SWEEP {
        print!(" {t} thr |");
    }
    println!();
    print!("|---|");
    for _ in THREAD_SWEEP {
        print!("---|");
    }
    println!();
}

fn row(name: &str, cells: &[f64]) {
    print!("| {name} |");
    for c in cells {
        print!(" {c:.3} |");
    }
    println!();
}

fn e1_counters(ctx: &mut Ctx) {
    header("E1 — counter throughput (increment-only, Mops/s)");
    macro_rules! bench {
        ($name:expr, $ctor:expr) => {{
            let cells: Vec<f64> = THREAD_SWEEP
                .iter()
                .map(|&t| {
                    let w = Workload::ops_only(t, ctx.scale.ops / t);
                    let stats = counter_run(Arc::new($ctor), w, ctx.warm);
                    ctx.record("e1", $name, &w, &stats)
                })
                .collect();
            row($name, &cells);
        }};
    }
    bench!("lock", cds_counter::LockCounter::new());
    bench!("atomic", cds_counter::AtomicCounter::new());
    bench!("sharded", cds_counter::ShardedCounter::new());
    bench!("combining-tree", cds_counter::CombiningTreeCounter::new());
    bench!("flat-combining", cds_counter::FcCounter::new());
}

fn e2_stacks(ctx: &mut Ctx) {
    header("E2 — stack throughput (50/50 push/pop, Mops/s)");
    macro_rules! bench {
        ($name:expr, $ctor:expr) => {{
            let cells: Vec<f64> = THREAD_SWEEP
                .iter()
                .map(|&t| {
                    let w = Workload::fifty_fifty(t, ctx.scale.ops / t, 1024);
                    let stats = stack_run(Arc::new($ctor), w, ctx.warm);
                    ctx.record("e2", $name, &w, &stats)
                })
                .collect();
            row($name, &cells);
        }};
    }
    bench!("coarse", cds_stack::CoarseStack::new());
    bench!("flat-combining", cds_stack::FcStack::new());
    bench!("treiber (EBR)", cds_stack::TreiberStack::new());
    bench!(
        "treiber (HP)",
        cds_stack::TreiberStack::<u64, cds_reclaim::Hazard>::with_reclaimer()
    );
    bench!("elimination", cds_stack::EliminationBackoffStack::new());
    // Ablation (DESIGN.md decision #4): elimination parameters.
    bench!(
        "elimination (1 slot, 16 spins)",
        cds_stack::EliminationBackoffStack::with_params(1, 16)
    );
    bench!(
        "elimination (8 slots, 256 spins)",
        cds_stack::EliminationBackoffStack::with_params(8, 256)
    );
}

fn e3_queues(ctx: &mut Ctx) {
    header("E3 — queue throughput (50/50 enq/deq, Mops/s)");
    macro_rules! bench {
        ($name:expr, $ctor:expr) => {{
            let cells: Vec<f64> = THREAD_SWEEP
                .iter()
                .map(|&t| {
                    let w = Workload::fifty_fifty(t, ctx.scale.ops / t, 1024);
                    let stats = queue_run(Arc::new($ctor), w, ctx.warm);
                    ctx.record("e3", $name, &w, &stats)
                })
                .collect();
            row($name, &cells);
        }};
    }
    bench!("coarse", cds_queue::CoarseQueue::new());
    bench!("flat-combining", cds_queue::FcQueue::new());
    bench!("two-lock", cds_queue::TwoLockQueue::new());
    bench!("michael-scott", cds_queue::MsQueue::new());
    bench!(
        "bounded (vyukov)",
        cds_queue::BoundedQueue::with_capacity(1 << 16)
    );
}

/// One measured set cell: runs, records, returns the table entry.
fn run_set<S>(
    ctx: &mut Ctx,
    experiment: &str,
    name: &str,
    set: Arc<S>,
    w: Workload,
) -> (String, f64)
where
    S: ConcurrentSet<u64> + 'static,
{
    let stats = set_run(set, w, ctx.warm);
    (name.to_string(), ctx.record(experiment, name, &w, &stats))
}

/// One measured map cell: runs, records, returns the table entry.
fn run_map<M>(
    ctx: &mut Ctx,
    experiment: &str,
    name: &str,
    map: Arc<M>,
    w: Workload,
) -> (String, f64)
where
    M: ConcurrentMap<u64, u64> + 'static,
{
    let stats = map_run(map, w, ctx.warm);
    (name.to_string(), ctx.record(experiment, name, &w, &stats))
}

fn ratio_sweep<F>(
    ctx: &mut Ctx,
    experiment: &str,
    title: &str,
    ops: usize,
    key_range: u64,
    mut make_rows: F,
) where
    F: FnMut(&mut Ctx, &str, Workload) -> Vec<(String, f64)>,
{
    for &(read_pct, insert_pct, label) in &[
        (0u8, 50u8, "0% reads"),
        (50, 25, "50% reads"),
        (90, 5, "90% reads"),
    ] {
        header(&format!("{title} — {label}"));
        // Collect per-implementation rows across the thread sweep.
        let mut table: Vec<(String, Vec<f64>)> = Vec::new();
        for &t in THREAD_SWEEP {
            let w = Workload {
                threads: t,
                ops_per_thread: ops / t,
                key_range,
                read_pct,
                insert_pct,
                prefill: (key_range / 2) as usize,
            };
            for (i, (name, mops)) in make_rows(ctx, experiment, w).into_iter().enumerate() {
                if table.len() <= i {
                    table.push((name, Vec::new()));
                }
                table[i].1.push(mops);
            }
        }
        for (name, cells) in &table {
            row(name, cells);
        }
    }
}

fn e4_lists(ctx: &mut Ctx) {
    let ops = ctx.scale.list_ops;
    ratio_sweep(
        ctx,
        "e4",
        "E4 — list-based sets (Mops/s)",
        ops,
        512,
        |ctx, e, w| {
            vec![
                run_set(ctx, e, "coarse", Arc::new(cds_list::CoarseList::new()), w),
                run_set(
                    ctx,
                    e,
                    "fine (hand-over-hand)",
                    Arc::new(cds_list::FineList::new()),
                    w,
                ),
                run_set(
                    ctx,
                    e,
                    "optimistic",
                    Arc::new(cds_list::OptimisticList::new()),
                    w,
                ),
                run_set(ctx, e, "lazy", Arc::new(cds_list::LazyList::new()), w),
                run_set(
                    ctx,
                    e,
                    "harris-michael",
                    Arc::new(cds_list::HarrisMichaelList::new()),
                    w,
                ),
            ]
        },
    );
}

fn e5_maps(ctx: &mut Ctx) {
    let ops = ctx.scale.ops;
    ratio_sweep(
        ctx,
        "e5",
        "E5 — hash maps (Mops/s)",
        ops,
        65_536,
        |ctx, e, w| {
            vec![
                run_map(ctx, e, "coarse", Arc::new(cds_map::CoarseMap::new()), w),
                run_map(
                    ctx,
                    e,
                    "striped",
                    Arc::new(cds_map::StripedHashMap::new()),
                    w,
                ),
                run_map(
                    ctx,
                    e,
                    "split-ordered",
                    Arc::new(cds_map::SplitOrderedHashMap::new()),
                    w,
                ),
            ]
        },
    );
}

fn e6_skiplists(ctx: &mut Ctx) {
    let ops = ctx.scale.ops;
    ratio_sweep(
        ctx,
        "e6",
        "E6 — skiplist sets (Mops/s)",
        ops,
        65_536,
        |ctx, e, w| {
            vec![
                run_set(
                    ctx,
                    e,
                    "coarse",
                    Arc::new(cds_skiplist::CoarseSkipList::new()),
                    w,
                ),
                run_set(
                    ctx,
                    e,
                    "lazy",
                    Arc::new(cds_skiplist::LazySkipList::new()),
                    w,
                ),
                run_set(
                    ctx,
                    e,
                    "lock-free",
                    Arc::new(cds_skiplist::LockFreeSkipList::new()),
                    w,
                ),
            ]
        },
    );
}

fn e7_trees(ctx: &mut Ctx) {
    let ops = ctx.scale.ops;
    ratio_sweep(
        ctx,
        "e7",
        "E7 — binary search trees (Mops/s)",
        ops,
        65_536,
        |ctx, e, w| {
            vec![
                run_set(ctx, e, "coarse", Arc::new(cds_tree::CoarseBst::new()), w),
                run_set(
                    ctx,
                    e,
                    "fine (external)",
                    Arc::new(cds_tree::FineBst::new()),
                    w,
                ),
                run_set(
                    ctx,
                    e,
                    "ellen (lock-free)",
                    Arc::new(cds_tree::LockFreeBst::new()),
                    w,
                ),
            ]
        },
    );
}

fn e8_priority_queues(ctx: &mut Ctx) {
    header("E8 — priority queues (50/50 insert/remove-min, Mops/s)");
    macro_rules! bench {
        ($name:expr, $ctor:expr) => {{
            let cells: Vec<f64> = THREAD_SWEEP
                .iter()
                .map(|&t| {
                    let w = Workload::pq_default(t, ctx.scale.ops / t);
                    let stats = pq_run(Arc::new($ctor), w, ctx.warm);
                    ctx.record("e8", $name, &w, &stats)
                })
                .collect();
            row($name, &cells);
        }};
    }
    bench!("coarse-heap", cds_prio::CoarseBinaryHeap::new());
    bench!(
        "skiplist (lotan-shavit)",
        cds_prio::SkipListPriorityQueue::new()
    );
}

fn e9_locks(ctx: &mut Ctx) {
    header("E9 — lock acquisition under contention (M acquisitions/s)");

    fn bench_raw<L: RawLock + 'static>(ctx: &mut Ctx, name: &str) {
        let ops = ctx.scale.ops;
        let cells: Vec<f64> = THREAD_SWEEP
            .iter()
            .map(|&t| {
                let w = Workload::ops_only(t, ops / t);
                let lock = Arc::new(cds_sync::Lock::<L, u64>::new(0));
                let stats = lock_run(t, ops / t, ctx.warm, move || {
                    *lock.lock() += 1;
                });
                ctx.record("e9", name, &w, &stats)
            })
            .collect();
        row(name, &cells);
    }

    bench_raw::<cds_sync::TasLock>(ctx, "tas");
    bench_raw::<cds_sync::TtasLock>(ctx, "ttas+backoff");
    bench_raw::<cds_sync::TicketLock>(ctx, "ticket");
    bench_raw::<cds_sync::ClhLock>(ctx, "clh");
    bench_raw::<cds_sync::McsLock>(ctx, "mcs");

    let std_cells: Vec<f64> = THREAD_SWEEP
        .iter()
        .map(|&t| {
            let w = Workload::ops_only(t, ctx.scale.ops / t);
            let lock = Arc::new(std::sync::Mutex::new(0u64));
            let stats = lock_run(t, w.ops_per_thread, ctx.warm, move || {
                *lock.lock().unwrap() += 1;
            });
            ctx.record("e9", "std::sync::Mutex", &w, &stats)
        })
        .collect();
    row("std::sync::Mutex", &std_cells);

    let pl_cells: Vec<f64> = THREAD_SWEEP
        .iter()
        .map(|&t| {
            let w = Workload::ops_only(t, ctx.scale.ops / t);
            let lock = Arc::new(parking_lot::Mutex::new(0u64));
            let stats = lock_run(t, w.ops_per_thread, ctx.warm, move || {
                *lock.lock() += 1;
            });
            ctx.record("e9", "parking_lot::Mutex", &w, &stats)
        })
        .collect();
    row("parking_lot::Mutex", &pl_cells);
}

fn e10_reclamation(ctx: &mut Ctx) {
    use cds_reclaim::{DebugReclaim, Ebr, Hazard, Leak, Reclaimer};

    // Structure × backend sweep: each lock-free structure instantiated
    // against every reclamation backend. Rows are backends (`R::NAME`);
    // samples carry the structure as `impl` and the backend as
    // `reclaimer`, which `experiments check` validates for full coverage.

    fn stack_rows<R: Reclaimer>(ctx: &mut Ctx) {
        let cells: Vec<f64> = THREAD_SWEEP
            .iter()
            .map(|&t| {
                let w = Workload::fifty_fifty(t, ctx.scale.ops / t, 1024);
                let stack = Arc::new(cds_stack::TreiberStack::<u64, R>::with_reclaimer());
                let stats = stack_run(stack, w, ctx.warm);
                ctx.record_backend("e10", "treiber", R::NAME, &w, &stats)
            })
            .collect();
        row(R::NAME, &cells);
    }

    fn queue_rows<R: Reclaimer>(ctx: &mut Ctx) {
        let cells: Vec<f64> = THREAD_SWEEP
            .iter()
            .map(|&t| {
                let w = Workload::fifty_fifty(t, ctx.scale.ops / t, 1024);
                let queue = Arc::new(cds_queue::MsQueue::<u64, R>::with_reclaimer());
                let stats = queue_run(queue, w, ctx.warm);
                ctx.record_backend("e10", "michael-scott", R::NAME, &w, &stats)
            })
            .collect();
        row(R::NAME, &cells);
    }

    fn list_rows<R: Reclaimer>(ctx: &mut Ctx) {
        let ops = ctx.scale.list_ops;
        let cells: Vec<f64> = THREAD_SWEEP
            .iter()
            .map(|&t| {
                let w = Workload {
                    threads: t,
                    ops_per_thread: ops / t,
                    key_range: 512,
                    read_pct: 50,
                    insert_pct: 25,
                    prefill: 256,
                };
                let list = Arc::new(cds_list::HarrisMichaelList::<u64, R>::with_reclaimer());
                let stats = set_run(list, w, ctx.warm);
                ctx.record_backend("e10", "harris-michael", R::NAME, &w, &stats)
            })
            .collect();
        row(R::NAME, &cells);
    }

    header("E10 — Treiber stack × reclamation backend (50/50 push/pop, Mops/s)");
    stack_rows::<Ebr>(ctx);
    stack_rows::<Hazard>(ctx);
    stack_rows::<Leak>(ctx);
    stack_rows::<DebugReclaim>(ctx);

    header("E10 — Michael–Scott queue × reclamation backend (50/50 enq/deq, Mops/s)");
    queue_rows::<Ebr>(ctx);
    queue_rows::<Hazard>(ctx);
    queue_rows::<Leak>(ctx);
    queue_rows::<DebugReclaim>(ctx);

    header("E10 — Harris–Michael list × reclamation backend (50% reads, Mops/s)");
    list_rows::<Ebr>(ctx);
    list_rows::<Hazard>(ctx);
    list_rows::<Leak>(ctx);
    list_rows::<DebugReclaim>(ctx);

    // Bounded-garbage evidence for hazard pointers: churn hard, then
    // report the domain's retired-but-not-yet-freed backlog.
    let hp = Arc::new(cds_stack::TreiberStack::<u64, Hazard>::with_reclaimer());
    for i in 0..100_000u64 {
        hp.push(i);
        std::hint::black_box(hp.pop());
    }
    Hazard::collect();
    let backlog = Hazard::retired_backlog();
    println!("\nhazard-pointer garbage backlog after 100k churn ops: {backlog} nodes (bounded by design)");
    ctx.report
        .push_extra("e10_hazard_garbage_after_100k_churn", backlog as f64);
}

fn e11_resize(ctx: &mut Ctx) {
    use cds_reclaim::Ebr;
    use std::hash::RandomState;

    // Resize sweep: a growth workload that starts from a deliberately
    // small table and inserts enough distinct keys that every shard must
    // double at least three times while the benchmark threads keep
    // operating. Three rows:
    //
    //   resizing             — 8 shards × 8 buckets, grows cooperatively
    //                          through incremental migration (no
    //                          stop-the-world pause);
    //   resizing (pre-sized) — same map born at final geometry, isolating
    //                          the cost of migration itself;
    //   striped              — the lock-striped map pre-sized to the
    //                          matched final capacity so it never takes
    //                          its all-stripe resize: the fixed-capacity
    //                          baseline of the acceptance bound.
    //
    // The mix is insert-heavy (20% reads / 70% inserts / 10% removes)
    // with no prefill, so the doublings happen under load, interleaved
    // with the measured operations rather than in a setup phase.
    let ops = ctx.scale.ops;
    let key_range = 16_384u64;
    header("E11 — resizable map growth sweep (20% reads / 70% inserts, Mops/s)");
    let mut table: Vec<(String, Vec<f64>)> = Vec::new();
    let mut max_doublings = 0usize;
    for &t in THREAD_SWEEP {
        let w = Workload {
            threads: t,
            ops_per_thread: ops / t,
            key_range,
            read_pct: 20,
            insert_pct: 70,
            prefill: 0,
        };
        // ~13k resident keys over 8 shards trigger growth past 4 entries
        // per bucket until each shard holds 512 buckets: 6 doublings per
        // shard from the 8-bucket start.
        let growing =
            Arc::new(cds_map::ResizingMap::<u64, u64, RandomState, Ebr>::with_config(8, 8));
        let rows = vec![
            run_map(ctx, "e11", "resizing", Arc::clone(&growing), w),
            run_map(
                ctx,
                "e11",
                "resizing (pre-sized)",
                Arc::new(cds_map::ResizingMap::<u64, u64, RandomState, Ebr>::with_config(8, 512)),
                w,
            ),
            run_map(
                ctx,
                "e11",
                "striped",
                Arc::new(cds_map::StripedHashMap::with_config(16, 4096)),
                w,
            ),
        ];
        max_doublings = max_doublings.max(growing.doublings());
        for (i, (name, mops)) in rows.into_iter().enumerate() {
            if table.len() <= i {
                table.push((name, Vec::new()));
            }
            table[i].1.push(mops);
        }
    }
    for (name, cells) in &table {
        row(name, cells);
    }
    println!("\nresizing-map bucket-array doublings under load: {max_doublings} (cooperative, no stop-the-world)");
    ctx.report
        .push_extra("e11_resizing_doublings", max_doublings as f64);
}

/// The counter delta since `base` as a sample record, nonzero entries
/// only; `None` when telemetry is compiled out. Shared by the telemetry
/// sweeps (E12 contention, E13 executor).
fn capture(base: &cds_obs::Snapshot) -> Option<report::TelemetryRecord> {
    if !cds_obs::enabled() {
        return None;
    }
    let delta = cds_obs::Snapshot::take().delta(base);
    Some(report::TelemetryRecord {
        counters: delta
            .iter()
            .filter(|&(_, v)| v != 0)
            .map(|(e, v)| (e.name().to_string(), v))
            .collect(),
    })
}

fn e12_contention(ctx: &mut Ctx) {
    use cds_bench::report::TelemetryRecord;

    // Contention sweep: three representative structures — a CAS-retry
    // stack, a CAS-retry queue, and a spinning lock — re-measured with
    // the `cds-obs` counter delta captured around each cell. With the
    // default build the counters compile to no-ops and the samples carry
    // no telemetry (the throughput table is all this prints); with
    // `--features telemetry` every cell records its CAS attempt/failure
    // and spin-iteration counts, from which the failure-rate and
    // spins-per-acquisition tables below are derived. The delta spans
    // warmup plus the timed section, so the ratios are the meaningful
    // reading, not the absolute counts.

    /// One implementation row: runs every thread count, recording each
    /// cell with its telemetry, and returns the per-cell records for the
    /// derived tables. The reset keeps per-cell peaks (max-kind events)
    /// from accumulating across cells; no worker threads are live between
    /// runs, so it cannot race a recorder.
    fn sweep(
        ctx: &mut Ctx,
        name: &str,
        mut cell: impl FnMut(usize) -> (Workload, RunStats),
    ) -> Vec<Option<TelemetryRecord>> {
        let mut cells = Vec::new();
        let mut tels = Vec::new();
        for &t in THREAD_SWEEP {
            cds_obs::reset();
            let base = cds_obs::Snapshot::take();
            let (w, stats) = cell(t);
            let tel = capture(&base);
            cells.push(ctx.record_telemetry("e12", name, &w, &stats, tel.clone()));
            tels.push(tel);
        }
        row(name, &cells);
        tels
    }

    let ops = ctx.scale.ops;
    let warm = ctx.warm;

    header("E12 — contention sweep throughput (Mops/s)");
    let treiber = sweep(ctx, "treiber", |t| {
        let w = Workload::fifty_fifty(t, ops / t, 1024);
        let stats = stack_run(Arc::new(cds_stack::TreiberStack::new()), w, warm);
        (w, stats)
    });
    let ms = sweep(ctx, "michael-scott", |t| {
        let w = Workload::fifty_fifty(t, ops / t, 1024);
        let stats = queue_run(Arc::new(cds_queue::MsQueue::new()), w, warm);
        (w, stats)
    });
    let ttas = sweep(ctx, "ttas+backoff", |t| {
        let w = Workload::ops_only(t, ops / t);
        let lock = Arc::new(cds_sync::Lock::<cds_sync::TtasLock, u64>::new(0));
        let stats = lock_run(t, ops / t, warm, move || {
            *lock.lock() += 1;
        });
        (w, stats)
    });

    if cds_obs::enabled() {
        let ratio = |tel: &Option<TelemetryRecord>, num: &str, den: &str, scale: f64| {
            tel.as_ref().map_or(0.0, |t| {
                let d = t.get(den);
                if d == 0 {
                    0.0
                } else {
                    scale * t.get(num) as f64 / d as f64
                }
            })
        };
        header("E12 — CAS failure rate (% of attempts)");
        for (name, tels) in [("treiber", &treiber), ("michael-scott", &ms)] {
            let cells: Vec<f64> = tels
                .iter()
                .map(|t| ratio(t, "cas_failure", "cas_attempt", 100.0))
                .collect();
            row(name, &cells);
        }
        header("E12 — TTAS spin iterations per acquisition");
        let cells: Vec<f64> = ttas
            .iter()
            .map(|t| ratio(t, "ttas_spin", "ttas_acquire", 1.0))
            .collect();
        row("ttas+backoff", &cells);
    }
}

fn e13_executor(ctx: &mut Ctx) {
    use cds_bench::report::TelemetryRecord;
    use cds_bench::{LatencyHistogram, LATENCY_SAMPLE_EVERY};
    use cds_exec::Executor;
    use std::time::Instant;

    // Work-stealing executor sweep: the pool owns its worker threads, so
    // the generic `measured_run` harness (which spawns the sweep's
    // threads itself) does not apply; each cell instead builds a fresh
    // `t`-worker pool and the driver thread pushes tasks through it. Two
    // workloads: "spawn-throughput" (flat external spawns, all traffic
    // through the injector) and "fork-join" (roots forking children from
    // inside the pool, exercising the local-deque fast path and stealing).
    // Throughput is tasks completed per second; the latency histogram
    // samples the driver-side cost of every `LATENCY_SAMPLE_EVERY`-th
    // `spawn` call (the submission path, including injector overflow to
    // the unbounded queue). With `--features telemetry` the per-cell
    // counter deltas additionally yield the steal hit-rate and parking
    // tables, and `check` enforces the spawned == executed conservation
    // invariant on every cell.

    /// One measured pool cell: a fresh `t`-worker pool, `warm.max_iters`
    /// reduced-size warmup rounds, then one timed round of ~`total` tasks
    /// driven by `drive` (which returns the exact task count it spawned).
    /// Every round ends in `quiesce`, so at capture time the telemetry
    /// delta satisfies spawned == executed. No steady-state CoV test:
    /// pool construction is part of what E13 characterizes, and the
    /// fixed warmup keeps cells cheap.
    fn pool_cell(
        t: usize,
        total: usize,
        warm: Warmup,
        drive: impl Fn(&Executor, usize, &mut LatencyHistogram) -> usize,
    ) -> (RunStats, Option<TelemetryRecord>) {
        cds_obs::reset();
        let base = cds_obs::Snapshot::take();
        let pool = Executor::new(t);
        let mut scratch = LatencyHistogram::new();
        let warm_total = (total / warm.ops_divisor.max(1)).max(1);
        for _ in 0..warm.max_iters {
            drive(&pool, warm_total, &mut scratch);
            pool.quiesce();
        }
        let mut hist = LatencyHistogram::new();
        let start = Instant::now();
        let actual = drive(&pool, total, &mut hist);
        pool.quiesce();
        let span = start.elapsed().as_secs_f64();
        let tel = capture(&base);
        pool.shutdown();
        (
            RunStats {
                mops: actual as f64 / span / 1e6,
                duration_s: span,
                total_ops: actual,
                warmup_iters: warm.max_iters,
                hist,
            },
            tel,
        )
    }

    /// One workload row across the thread sweep, recording each cell with
    /// its telemetry delta (mirrors the E12 sweep helper).
    fn sweep(
        ctx: &mut Ctx,
        name: &str,
        drive: impl Fn(&Executor, usize, &mut LatencyHistogram) -> usize,
    ) -> Vec<Option<TelemetryRecord>> {
        let ops = ctx.scale.ops;
        let warm = ctx.warm;
        let mut cells = Vec::new();
        let mut tels = Vec::new();
        for &t in THREAD_SWEEP {
            let (stats, tel) = pool_cell(t, ops, warm, &drive);
            let w = Workload::ops_only(t, ops / t);
            cells.push(ctx.record_telemetry("e13", name, &w, &stats, tel.clone()));
            tels.push(tel);
        }
        row(name, &cells);
        tels
    }

    /// Spawns `task` onto the pool, sampling the submission latency for
    /// every `LATENCY_SAMPLE_EVERY`-th call.
    fn timed_spawn(
        pool: &Executor,
        i: usize,
        hist: &mut LatencyHistogram,
        task: impl FnOnce() + Send + 'static,
    ) {
        if i.is_multiple_of(LATENCY_SAMPLE_EVERY) {
            let t0 = Instant::now();
            pool.spawn(task);
            hist.record(t0.elapsed().as_nanos() as u64);
        } else {
            pool.spawn(task);
        }
    }

    header("E13 — work-stealing executor task throughput (Mtasks/s)");
    let st = sweep(ctx, "spawn-throughput", |pool, n, hist| {
        for i in 0..n {
            timed_spawn(pool, i, hist, move || {
                std::hint::black_box(i);
            });
        }
        n
    });
    let fj = sweep(ctx, "fork-join", |pool, n, hist| {
        const FAN: usize = 7;
        let roots = (n / (FAN + 1)).max(1);
        for i in 0..roots {
            let handle = pool.handle();
            timed_spawn(pool, i, hist, move || {
                for c in 0..FAN {
                    handle.spawn(move || {
                        std::hint::black_box(c);
                    });
                }
            });
        }
        roots * (FAN + 1)
    });

    if cds_obs::enabled() {
        let cells = |tels: &[Option<TelemetryRecord>], f: &dyn Fn(&TelemetryRecord) -> f64| {
            tels.iter()
                .map(|t| t.as_ref().map_or(0.0, f))
                .collect::<Vec<f64>>()
        };
        header("E13 — steal hit rate (% of steal attempts)");
        for (name, tels) in [("spawn-throughput", &st), ("fork-join", &fj)] {
            let c = cells(tels, &|t| {
                let hit = t.get("exec_steal_hit") as f64;
                let miss = t.get("exec_steal_miss") as f64;
                if hit + miss == 0.0 {
                    0.0
                } else {
                    100.0 * hit / (hit + miss)
                }
            });
            row(name, &c);
        }
        header("E13 — parks per 1k executed tasks");
        for (name, tels) in [("spawn-throughput", &st), ("fork-join", &fj)] {
            let c = cells(tels, &|t| {
                let executed = t.get("exec_tasks_executed");
                if executed == 0 {
                    0.0
                } else {
                    1000.0 * t.get("exec_parks") as f64 / executed as f64
                }
            });
            row(name, &c);
        }
    }
}

fn e14_channel(ctx: &mut Ctx) {
    use cds_atomic::raw::{AtomicUsize, Ordering};
    use cds_bench::report::TelemetryRecord;
    use cds_bench::{LatencyHistogram, LATENCY_SAMPLE_EVERY};
    use std::time::Instant;

    // Blocking MPMC channel sweep: the bounded (Vyukov-ring) and
    // unbounded (Michael–Scott) channels moving messages end to end.
    // Each cell splits its `t` threads into `t/2` producers and `t -
    // t/2` consumers (the t=1 column is a single thread ping-ponging
    // send/recv, so nothing ever blocks there); producers `send` their
    // quota, the last one to finish closes the channel, and consumers
    // `recv` until `Closed`, so every cell exercises the park/unpark
    // paths — senders on a full ring, receivers on an empty buffer —
    // and ends with the channel fully drained. Throughput is messages
    // moved end-to-end per second (each message is one send plus one
    // recv); the latency histogram samples the blocking-send cost on
    // the driver thread, which doubles as producer 0. With `--features
    // telemetry` the per-cell counter deltas additionally yield the
    // park-rate tables, and `check` enforces message conservation
    // (sent == received + drained-at-drop) on every cell.

    /// Moves `per * producers` messages through `ch` and consumes it:
    /// the last producer to finish closes the channel, consumers drain
    /// until `Closed`. The driver thread is producer 0 and samples its
    /// own send latency; `consumers == 0` means single-thread ping-pong.
    fn drive(
        ch: &cds_chan::Channel<u64>,
        producers: usize,
        consumers: usize,
        per: usize,
        hist: &mut LatencyHistogram,
    ) -> usize {
        let send = |ch: &cds_chan::Channel<u64>, i: usize, hist: &mut LatencyHistogram| {
            if i.is_multiple_of(LATENCY_SAMPLE_EVERY) {
                let t0 = Instant::now();
                ch.send(i as u64)
                    .expect("channel closed under a live producer");
                hist.record(t0.elapsed().as_nanos() as u64);
            } else {
                ch.send(i as u64)
                    .expect("channel closed under a live producer");
            }
        };
        if consumers == 0 {
            for i in 0..per {
                send(ch, i, hist);
                ch.recv().expect("just sent");
            }
            ch.close();
            return per;
        }
        let live = AtomicUsize::new(producers);
        std::thread::scope(|s| {
            for _ in 0..consumers {
                s.spawn(|| while ch.recv().is_ok() {});
            }
            for _ in 1..producers {
                s.spawn(|| {
                    for i in 0..per {
                        ch.send(i as u64)
                            .expect("channel closed under a live producer");
                    }
                    if live.fetch_sub(1, Ordering::AcqRel) == 1 {
                        ch.close();
                    }
                });
            }
            for i in 0..per {
                send(ch, i, hist);
            }
            if live.fetch_sub(1, Ordering::AcqRel) == 1 {
                ch.close();
            }
        });
        per * producers
    }

    /// One measured channel cell: fresh channels for warmup and for the
    /// timed round (each fully drained and dropped before the telemetry
    /// capture, so the conservation invariant is checkable). No
    /// steady-state CoV test: parking behaviour is load-dependent and
    /// the fixed warmup keeps cells cheap (mirrors the E13 pool cells).
    fn chan_cell(
        t: usize,
        total: usize,
        warm: Warmup,
        make: &dyn Fn() -> cds_chan::Channel<u64>,
    ) -> (RunStats, Option<TelemetryRecord>) {
        let (producers, consumers) = if t == 1 { (1, 0) } else { (t / 2, t - t / 2) };
        cds_obs::reset();
        let base = cds_obs::Snapshot::take();
        let mut scratch = LatencyHistogram::new();
        let warm_per = ((total / warm.ops_divisor.max(1)).max(1) / producers).max(1);
        for _ in 0..warm.max_iters {
            drive(&make(), producers, consumers, warm_per, &mut scratch);
        }
        let per = (total / producers).max(1);
        let mut hist = LatencyHistogram::new();
        let start = Instant::now();
        let ch = make();
        let moved = drive(&ch, producers, consumers, per, &mut hist);
        drop(ch);
        let span = start.elapsed().as_secs_f64();
        let tel = capture(&base);
        (
            RunStats {
                mops: moved as f64 / span / 1e6,
                duration_s: span,
                total_ops: moved,
                warmup_iters: warm.max_iters,
                hist,
            },
            tel,
        )
    }

    /// One channel variant across the thread sweep, recording each cell
    /// with its telemetry delta (mirrors the E12/E13 sweep helpers).
    fn sweep(
        ctx: &mut Ctx,
        name: &str,
        make: &dyn Fn() -> cds_chan::Channel<u64>,
    ) -> Vec<Option<TelemetryRecord>> {
        let ops = ctx.scale.ops;
        let warm = ctx.warm;
        let mut cells = Vec::new();
        let mut tels = Vec::new();
        for &t in THREAD_SWEEP {
            let (stats, tel) = chan_cell(t, ops, warm, make);
            let w = Workload::ops_only(t, ops / t);
            cells.push(ctx.record_telemetry("e14", name, &w, &stats, tel.clone()));
            tels.push(tel);
        }
        row(name, &cells);
        tels
    }

    // Capacity well below the per-producer quota so bounded senders
    // actually hit the full-ring park path under consumer lag.
    const BOUNDED_CAP: usize = 1 << 10;

    header("E14 — blocking MPMC channel throughput (Mmsgs/s, t/2 producers : t/2 consumers)");
    let bounded = sweep(ctx, "bounded", &|| cds_chan::bounded::<u64>(BOUNDED_CAP));
    let unbounded = sweep(ctx, "unbounded", &|| cds_chan::unbounded::<u64>());

    if cds_obs::enabled() {
        let per_1k = |tels: &[Option<TelemetryRecord>], num: &str, den: &str| {
            tels.iter()
                .map(|t| {
                    t.as_ref().map_or(0.0, |t| {
                        let d = t.get(den);
                        if d == 0 {
                            0.0
                        } else {
                            1000.0 * t.get(num) as f64 / d as f64
                        }
                    })
                })
                .collect::<Vec<f64>>()
        };
        header("E14 — sender parks per 1k sends");
        for (name, tels) in [("bounded", &bounded), ("unbounded", &unbounded)] {
            row(name, &per_1k(tels, "chan_parks_send", "chan_sends"));
        }
        header("E14 — receiver parks per 1k receives");
        for (name, tels) in [("bounded", &bounded), ("unbounded", &unbounded)] {
            row(name, &per_1k(tels, "chan_parks_recv", "chan_recvs"));
        }
    }
}

/// Validates an existing report file; returns an error description on any
/// schema violation or missing experiment. With `partial`, e1–e14
/// coverage is not required (for single-experiment runs), but any e10
/// samples present must still sweep every reclamation backend, any e11
/// samples must cover both resize-sweep implementations with three or
/// more recorded doublings, any e12 samples must cover the contention
/// sweep (with telemetry records when `extras.telemetry_enabled` is 1),
/// any e13 samples must cover both executor workloads and — under
/// telemetry — satisfy the spawned == executed conservation invariant,
/// and any e14 samples must cover both channel variants and — under
/// telemetry — satisfy the message conservation invariant.
fn check_file(path: &str, partial: bool) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let samples = report::validate_schema(&doc).map_err(|e| format!("{path}: {e}"))?;
    if !partial {
        report::validate_coverage(&samples).map_err(|e| format!("{path}: {e}"))?;
    }
    if !partial || samples.iter().any(|s| s.experiment == "e10") {
        report::validate_e10_backends(&samples).map_err(|e| format!("{path}: {e}"))?;
    }
    if !partial || samples.iter().any(|s| s.experiment == "e11") {
        report::validate_e11_resize(&doc, &samples).map_err(|e| format!("{path}: {e}"))?;
    }
    if !partial || samples.iter().any(|s| s.experiment == "e12") {
        report::validate_e12_contention(&doc, &samples).map_err(|e| format!("{path}: {e}"))?;
    }
    if !partial || samples.iter().any(|s| s.experiment == "e13") {
        report::validate_e13_executor(&doc, &samples).map_err(|e| format!("{path}: {e}"))?;
    }
    if !partial || samples.iter().any(|s| s.experiment == "e14") {
        report::validate_e14_channel(&doc, &samples).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(samples.len())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // `experiments -- check [--partial] <path>`: validate and exit.
    if args.first().map(String::as_str) == Some("check") {
        let partial = args.iter().any(|a| a == "--partial");
        let path = args
            .iter()
            .skip(1)
            .find(|a| *a != "--partial")
            .map(String::as_str)
            .unwrap_or("BENCH_experiments.json");
        match check_file(path, partial) {
            Ok(n) => {
                println!(
                    "{path}: schema v{} OK, {n} samples, {}e10 backends swept",
                    report::SCHEMA_VERSION,
                    if partial { "" } else { "e1–e14 covered, " },
                );
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }

    let quick = args.iter().any(|a| a == "--quick");
    // `--json [path]`: the path operand (when present) must not be
    // mistaken for an experiment id below.
    let json_flag_idx = args.iter().position(|a| a == "--json");
    let json_flag_with_operand =
        json_flag_idx.filter(|i| args.get(i + 1).is_some_and(|p| !p.starts_with("--")));
    let json_path: Option<String> = json_flag_idx.map(|_| match json_flag_with_operand {
        Some(i) => args[i + 1].clone(),
        None => "BENCH_experiments.json".to_string(),
    });
    let wanted: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && json_flag_with_operand.map(|j| j + 1) != Some(*i))
        .map(|(_, a)| a.to_lowercase())
        .collect();
    let run_all = wanted.is_empty() || wanted.iter().any(|a| a == "all");
    let want = |id: &str| run_all || wanted.iter().any(|a| a == id);

    let scale = if quick {
        Scale {
            ops: 40_000,
            list_ops: 8_000,
        }
    } else {
        Scale {
            ops: 400_000,
            list_ops: 40_000,
        }
    };
    let warm = if quick {
        Warmup::quick()
    } else {
        Warmup::standard()
    };
    let mut ctx = Ctx {
        scale,
        warm,
        report: Report::new(if quick { "quick" } else { "full" }, warm),
    };

    println!("# cds experiment tables");
    println!(
        "\nhost: {} hardware threads; sweep {:?}; {} ops/experiment{}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        THREAD_SWEEP,
        ctx.scale.ops,
        if quick { " (--quick)" } else { "" }
    );

    if want("e1") {
        e1_counters(&mut ctx);
    }
    if want("e2") {
        e2_stacks(&mut ctx);
    }
    if want("e3") {
        e3_queues(&mut ctx);
    }
    if want("e4") {
        e4_lists(&mut ctx);
    }
    if want("e5") {
        e5_maps(&mut ctx);
    }
    if want("e6") {
        e6_skiplists(&mut ctx);
    }
    if want("e7") {
        e7_trees(&mut ctx);
    }
    if want("e8") {
        e8_priority_queues(&mut ctx);
    }
    if want("e9") {
        e9_locks(&mut ctx);
    }
    if want("e10") {
        e10_reclamation(&mut ctx);
    }
    if want("e11") {
        e11_resize(&mut ctx);
    }
    if want("e12") {
        e12_contention(&mut ctx);
    }
    if want("e13") {
        e13_executor(&mut ctx);
    }
    if want("e14") {
        e14_channel(&mut ctx);
    }

    // Recorded once here (not inside an experiment) so any run that emits
    // JSON — including single-experiment `e12`–`e14` runs whose checks
    // read it — carries the flag.
    ctx.report.push_extra(
        "telemetry_enabled",
        if cds_obs::enabled() { 1.0 } else { 0.0 },
    );

    if let Some(path) = json_path {
        if let Err(e) = ctx.report.write_file(&path) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        // Self-check: the file we just wrote must parse and satisfy the
        // schema (and cover e1–e14 when the full suite ran).
        let text = std::fs::read_to_string(&path).expect("just wrote it");
        let doc = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("{path}: emitted invalid JSON: {e}");
            std::process::exit(1);
        });
        let samples = report::validate_schema(&doc).unwrap_or_else(|e| {
            eprintln!("{path}: emitted schema-invalid document: {e}");
            std::process::exit(1);
        });
        if run_all {
            if let Err(e) = report::validate_coverage(&samples)
                .and_then(|()| report::validate_e10_backends(&samples))
                .and_then(|()| report::validate_e11_resize(&doc, &samples))
                .and_then(|()| report::validate_e12_contention(&doc, &samples))
                .and_then(|()| report::validate_e13_executor(&doc, &samples))
                .and_then(|()| report::validate_e14_channel(&doc, &samples))
            {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
        println!(
            "\nwrote {path}: schema v{}, {} samples",
            report::SCHEMA_VERSION,
            samples.len()
        );
    }
}

//! Structured benchmark results: the [`Sample`] record, the [`Report`]
//! collector, and schema validation for `BENCH_experiments.json`.
//!
//! Schema (version [`SCHEMA_VERSION`]):
//!
//! ```json
//! {
//!   "schema_version": 6,
//!   "generated_by": "cds-bench experiments",
//!   "mode": "quick" | "full",
//!   "host": { "hardware_threads": 8, "os": "linux", "arch": "x86_64",
//!             "rustc": "rustc 1.89.0 ..." },
//!   "seeds": { "prefill": 42, "thread_base": 1, "warmup_offset": 1589837824 },
//!   "latency_sample_every": 8,
//!   "warmup": { "max_iters": 5, "window": 3, "cov_threshold": 0.05 },
//!   "extras": { "e10_hazard_garbage_after_100k_churn": 32,
//!               "e11_resizing_doublings": 48,
//!               "telemetry_enabled": 0 },
//!   "samples": [ { "experiment": "e1", "impl": "atomic", "threads": 2,
//!                  "read_pct": 0, "insert_pct": 0, "key_range": 0,
//!                  "prefill": 0, "ops": 40000, "mops": 12.3,
//!                  "duration_s": 0.0032, "warmup_iters": 3,
//!                  "p50_ns": 105, "p90_ns": 130, "p99_ns": 410,
//!                  "p999_ns": 2100 }, ... ]
//! }
//! ```
//!
//! Version 2 adds an optional `"reclaimer"` string to each sample — the
//! reclamation backend the structure was instantiated with (`"ebr"`,
//! `"hazard"`, `"leak"`, `"debug"`). E10 samples must carry it; the
//! backend sweep is validated by [`validate_e10_backends`].
//!
//! Version 3 adds experiment `e11` (the resize sweep) to the required
//! coverage set together with the `e11_resizing_doublings` extra;
//! [`validate_e11_resize`] checks that the sweep compared the resizable
//! map against the fixed-capacity striped baseline and that the map
//! actually grew (at least three bucket-array doublings).
//!
//! Version 4 adds experiment `e12` (the contention sweep) together with
//! the `telemetry_enabled` extra and an optional per-sample `"telemetry"`
//! object — the delta of the `cds-obs` event counters across the cell's
//! run (warmup iterations included, so ratio metrics such as CAS-failure
//! rate are the meaningful reading), keyed by event name (only nonzero
//! counters are recorded). The record is present only when the bench
//! binary was built
//! with the `telemetry` feature; [`validate_e12_contention`] requires it
//! on every e12 sample exactly when `extras.telemetry_enabled` is 1, and
//! [`validate_schema`] checks CAS conservation
//! (`cas_attempts == cas_success + cas_failure`) inside every record.
//!
//! Version 5 adds experiment `e13` (the work-stealing executor sweep:
//! fork/join and spawn-throughput workloads over a thread sweep) to the
//! required coverage set. E13 samples reuse the v4 telemetry machinery:
//! when `extras.telemetry_enabled` is 1, [`validate_e13_executor`]
//! requires a telemetry record on every e13 sample carrying the executor
//! conservation pair (`exec_tasks_spawned == exec_tasks_executed` at
//! quiesce) and a nonzero execution signal.
//!
//! Version 6 adds experiment `e14` (the blocking MPMC channel sweep:
//! bounded vs unbounded buffers over producer/consumer mixes and a
//! thread sweep) to the required coverage set. E14 samples again reuse
//! the v4 telemetry machinery: when `extras.telemetry_enabled` is 1,
//! [`validate_e14_channel`] requires a telemetry record on every e14
//! sample proving messages flowed (`chan_sends > 0`) and that message
//! conservation held once the cell's channel dropped
//! (`chan_sends == chan_recvs + chan_drained_at_drop`) — a mismatch
//! means the channel lost or duplicated a message during the measured
//! run. The same records carry the park rates (`chan_parks_send`,
//! `chan_parks_recv`) the E14 tables report.
//!
//! Latency percentiles are bucket midpoints from the merged per-thread
//! [`LatencyHistogram`](crate::LatencyHistogram)s (≤3% relative bucket
//! error) and are sampled — one op in
//! [`LATENCY_SAMPLE_EVERY`](crate::LATENCY_SAMPLE_EVERY) is timed — so the
//! timestamping cost does not poison the throughput figures.

use std::io::Write as _;

use crate::json::Json;
use crate::{
    RunStats, Warmup, Workload, LATENCY_SAMPLE_EVERY, PREFILL_SEED, THREAD_SEED_BASE,
    WARMUP_SEED_OFFSET,
};

/// Version stamped into (and required from) every emitted document.
pub const SCHEMA_VERSION: u64 = 6;

/// The fourteen experiment identifiers a complete report must cover.
pub const ALL_EXPERIMENTS: [&str; 14] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
];

/// The reclamation backends the E10 sweep must cover.
pub const E10_BACKENDS: [&str; 4] = ["ebr", "hazard", "leak", "debug"];

/// The implementations the E11 resize sweep must compare: the resizable
/// map growing from a small table, and the lock-striped map pre-sized to
/// the matched final capacity.
pub const E11_IMPLS: [&str; 2] = ["resizing", "striped"];

/// The implementations the E12 contention sweep must cover: a CAS-retry
/// stack and queue (CAS-failure rate vs threads) and a spinning lock
/// (spin iterations vs threads).
pub const E12_IMPLS: [&str; 3] = ["treiber", "michael-scott", "ttas+backoff"];

/// The workloads the E13 executor sweep must cover: recursive fork/join
/// (tasks spawning tasks through the local LIFO deques) and flat spawn
/// throughput (external submission through the injector).
pub const E13_WORKLOADS: [&str; 2] = ["fork-join", "spawn-throughput"];

/// The channel variants the E14 sweep must cover (as `impl`): the
/// capacity-bounded Vyukov-ring channel (senders can park) and the
/// unbounded Michael–Scott channel (only receivers park).
pub const E14_WORKLOADS: [&str; 2] = ["bounded", "unbounded"];

/// Per-cell contention telemetry (schema v4): the delta of the global
/// `cds-obs` event counters across the cell's run (warmup included —
/// ratio metrics like failures-per-attempt are window-invariant), keyed
/// by event name. Only nonzero counters are stored, in `cds-obs`
/// declaration order. Present only on documents produced by a bench
/// binary built with the `telemetry` feature.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryRecord {
    /// `(event_name, delta)` pairs, nonzero entries only.
    pub counters: Vec<(String, u64)>,
}

impl TelemetryRecord {
    /// Looks up one counter by event name; absent counters read as zero
    /// (an event that never fired is a zero delta, not missing data).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    fn to_json(&self) -> Json {
        Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        )
    }

    fn from_json(value: &Json) -> Result<TelemetryRecord, String> {
        let Json::Obj(fields) = value else {
            return Err("telemetry is not an object".into());
        };
        let mut counters = Vec::with_capacity(fields.len());
        for (k, v) in fields {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("telemetry.{k} is not a non-negative integer"))?;
            counters.push((k.clone(), n));
        }
        Ok(TelemetryRecord { counters })
    }
}

/// One measured cell: an (experiment, implementation, workload) point with
/// throughput and latency percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Experiment identifier, `"e1"`..`"e11"`.
    pub experiment: String,
    /// Implementation name as printed in the tables.
    pub impl_name: String,
    /// Reclamation backend the structure ran with (`"ebr"`, `"hazard"`,
    /// `"leak"`, `"debug"`), or `None` where reclamation is not an axis.
    pub reclaimer: Option<String>,
    /// Contention telemetry delta for this cell, or `None` when the bench
    /// binary was built without the `telemetry` feature.
    pub telemetry: Option<TelemetryRecord>,
    /// Worker thread count.
    pub threads: usize,
    /// Read percentage of the mix (0 for stacks/queues/counters/locks).
    pub read_pct: u8,
    /// Insert percentage of the mix.
    pub insert_pct: u8,
    /// Key range (0 when keys are irrelevant to the workload).
    pub key_range: u64,
    /// Prefill element count requested (post-clamp value is
    /// `min(prefill, key_range)` for keyed structures).
    pub prefill: usize,
    /// Total timed operations across all threads.
    pub ops: usize,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Wall-clock duration of the timed section, seconds.
    pub duration_s: f64,
    /// Warmup iterations executed before steady state was declared.
    pub warmup_iters: usize,
    /// Median sampled latency, nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile sampled latency, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile sampled latency, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile sampled latency, nanoseconds.
    pub p999_ns: u64,
}

impl Sample {
    /// Builds a sample from a finished run.
    pub fn from_stats(experiment: &str, impl_name: &str, w: &Workload, stats: &RunStats) -> Self {
        Sample {
            experiment: experiment.to_string(),
            impl_name: impl_name.to_string(),
            reclaimer: None,
            telemetry: None,
            threads: w.threads,
            read_pct: w.read_pct,
            insert_pct: w.insert_pct,
            key_range: w.key_range,
            prefill: w.prefill,
            ops: stats.total_ops,
            mops: stats.mops,
            duration_s: stats.duration_s,
            warmup_iters: stats.warmup_iters,
            p50_ns: stats.hist.percentile(50.0),
            p90_ns: stats.hist.percentile(90.0),
            p99_ns: stats.hist.percentile(99.0),
            p999_ns: stats.hist.percentile(99.9),
        }
    }

    /// Tags the sample with the reclamation backend it ran under.
    pub fn with_reclaimer(mut self, reclaimer: &str) -> Self {
        self.reclaimer = Some(reclaimer.to_string());
        self
    }

    /// Attaches the cell's contention telemetry delta.
    pub fn with_telemetry(mut self, telemetry: TelemetryRecord) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("experiment".into(), Json::Str(self.experiment.clone())),
            ("impl".into(), Json::Str(self.impl_name.clone())),
        ];
        if let Some(r) = &self.reclaimer {
            fields.push(("reclaimer".into(), Json::Str(r.clone())));
        }
        if let Some(t) = &self.telemetry {
            fields.push(("telemetry".into(), t.to_json()));
        }
        fields.extend([
            ("threads".into(), Json::Num(self.threads as f64)),
            ("read_pct".into(), Json::Num(self.read_pct as f64)),
            ("insert_pct".into(), Json::Num(self.insert_pct as f64)),
            ("key_range".into(), Json::Num(self.key_range as f64)),
            ("prefill".into(), Json::Num(self.prefill as f64)),
            ("ops".into(), Json::Num(self.ops as f64)),
            ("mops".into(), Json::Num(self.mops)),
            ("duration_s".into(), Json::Num(self.duration_s)),
            ("warmup_iters".into(), Json::Num(self.warmup_iters as f64)),
            ("p50_ns".into(), Json::Num(self.p50_ns as f64)),
            ("p90_ns".into(), Json::Num(self.p90_ns as f64)),
            ("p99_ns".into(), Json::Num(self.p99_ns as f64)),
            ("p999_ns".into(), Json::Num(self.p999_ns as f64)),
        ]);
        Json::Obj(fields)
    }

    /// Rebuilds a sample from its JSON form (the round-trip direction).
    pub fn from_json(value: &Json) -> Result<Sample, String> {
        let str_field = |k: &str| -> Result<String, String> {
            value
                .get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("sample missing string field {k:?}"))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            value
                .get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("sample missing integer field {k:?}"))
        };
        let f64_field = |k: &str| -> Result<f64, String> {
            value
                .get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("sample missing number field {k:?}"))
        };
        Ok(Sample {
            experiment: str_field("experiment")?,
            impl_name: str_field("impl")?,
            reclaimer: value
                .get("reclaimer")
                .and_then(Json::as_str)
                .map(str::to_string),
            telemetry: value
                .get("telemetry")
                .map(TelemetryRecord::from_json)
                .transpose()?,
            threads: u64_field("threads")? as usize,
            read_pct: u64_field("read_pct")? as u8,
            insert_pct: u64_field("insert_pct")? as u8,
            key_range: u64_field("key_range")?,
            prefill: u64_field("prefill")? as usize,
            ops: u64_field("ops")? as usize,
            mops: f64_field("mops")?,
            duration_s: f64_field("duration_s")?,
            warmup_iters: u64_field("warmup_iters")? as usize,
            p50_ns: u64_field("p50_ns")?,
            p90_ns: u64_field("p90_ns")?,
            p99_ns: u64_field("p99_ns")?,
            p999_ns: u64_field("p999_ns")?,
        })
    }
}

/// Collects [`Sample`]s across an `experiments` run and serializes the
/// schema document.
#[derive(Debug, Clone)]
pub struct Report {
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// Warmup policy the run used (stamped into the document).
    pub warmup: Warmup,
    /// All measured cells, in run order.
    pub samples: Vec<Sample>,
    /// Scalar side-channel measurements (e.g. the E10 HP garbage bound).
    pub extras: Vec<(String, f64)>,
}

impl Report {
    /// Creates an empty report for the given mode.
    pub fn new(mode: &str, warmup: Warmup) -> Self {
        Report {
            mode: mode.to_string(),
            warmup,
            samples: Vec::new(),
            extras: Vec::new(),
        }
    }

    /// Appends one measured cell.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Records a scalar side-channel measurement.
    pub fn push_extra(&mut self, key: &str, value: f64) {
        self.extras.push((key.to_string(), value));
    }

    /// Serializes the full schema document.
    pub fn to_json(&self) -> Json {
        let host = Json::Obj(vec![
            (
                "hardware_threads".into(),
                Json::Num(
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1) as f64,
                ),
            ),
            ("os".into(), Json::Str(std::env::consts::OS.into())),
            ("arch".into(), Json::Str(std::env::consts::ARCH.into())),
            ("rustc".into(), Json::Str(rustc_version())),
        ]);
        let seeds = Json::Obj(vec![
            ("prefill".into(), Json::Num(PREFILL_SEED as f64)),
            ("thread_base".into(), Json::Num(THREAD_SEED_BASE as f64)),
            ("warmup_offset".into(), Json::Num(WARMUP_SEED_OFFSET as f64)),
        ]);
        let warmup = Json::Obj(vec![
            ("max_iters".into(), Json::Num(self.warmup.max_iters as f64)),
            ("window".into(), Json::Num(self.warmup.window as f64)),
            ("cov_threshold".into(), Json::Num(self.warmup.cov_threshold)),
        ]);
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(SCHEMA_VERSION as f64)),
            (
                "generated_by".into(),
                Json::Str("cds-bench experiments".into()),
            ),
            ("mode".into(), Json::Str(self.mode.clone())),
            ("host".into(), host),
            ("seeds".into(), seeds),
            (
                "latency_sample_every".into(),
                Json::Num(LATENCY_SAMPLE_EVERY as f64),
            ),
            ("warmup".into(), warmup),
            (
                "extras".into(),
                Json::Obj(
                    self.extras
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "samples".into(),
                Json::Arr(self.samples.iter().map(Sample::to_json).collect()),
            ),
        ])
    }

    /// Writes the document to `path` (pretty-printed, trailing newline).
    pub fn write_file(&self, path: &str) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().to_string_pretty().as_bytes())
    }
}

fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Validates the document structure: schema version, host metadata, seeds,
/// and every sample's fields and percentile monotonicity. Returns the
/// parsed samples on success.
pub fn validate_schema(doc: &Json) -> Result<Vec<Sample>, String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {SCHEMA_VERSION}"
        ));
    }
    let host = doc.get("host").ok_or("missing host object")?;
    let hw = host
        .get("hardware_threads")
        .and_then(Json::as_u64)
        .ok_or("missing host.hardware_threads")?;
    if hw == 0 {
        return Err("host.hardware_threads must be >= 1".into());
    }
    for key in ["os", "arch", "rustc"] {
        host.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing host.{key}"))?;
    }
    let seeds = doc.get("seeds").ok_or("missing seeds object")?;
    for key in ["prefill", "thread_base", "warmup_offset"] {
        seeds
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing seeds.{key}"))?;
    }
    doc.get("mode")
        .and_then(Json::as_str)
        .ok_or("missing mode")?;
    doc.get("latency_sample_every")
        .and_then(Json::as_u64)
        .ok_or("missing latency_sample_every")?;
    let raw = doc
        .get("samples")
        .and_then(Json::as_array)
        .ok_or("missing samples array")?;
    if raw.is_empty() {
        return Err("samples array is empty".into());
    }
    let mut samples = Vec::with_capacity(raw.len());
    for (i, value) in raw.iter().enumerate() {
        let s = Sample::from_json(value).map_err(|e| format!("sample {i}: {e}"))?;
        if !(s.mops.is_finite() && s.mops > 0.0) {
            return Err(format!("sample {i}: non-positive mops {}", s.mops));
        }
        if s.threads == 0 || s.ops == 0 {
            return Err(format!("sample {i}: zero threads or ops"));
        }
        if !(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns && s.p99_ns <= s.p999_ns) {
            return Err(format!(
                "sample {i}: percentiles not monotone ({}, {}, {}, {})",
                s.p50_ns, s.p90_ns, s.p99_ns, s.p999_ns
            ));
        }
        if let Some(r) = &s.reclaimer {
            if !E10_BACKENDS.contains(&r.as_str()) {
                return Err(format!("sample {i}: unknown reclaimer {r:?}"));
            }
        }
        if s.experiment == "e10" && s.reclaimer.is_none() {
            return Err(format!("sample {i}: e10 sample missing reclaimer tag"));
        }
        if let Some(t) = &s.telemetry {
            // The conservation invariant holds by construction in cds-obs
            // (`cas_outcome` records the attempt and its outcome together),
            // so any violation here means a corrupted or hand-edited file.
            let (attempts, ok, failed) = (
                t.get("cas_attempt"),
                t.get("cas_success"),
                t.get("cas_failure"),
            );
            if attempts != ok + failed {
                return Err(format!(
                    "sample {i}: telemetry CAS counts not conserved \
                     ({attempts} attempts != {ok} successes + {failed} failures)"
                ));
            }
        }
        samples.push(s);
    }
    Ok(samples)
}

/// Checks that the E10 samples sweep every backend in [`E10_BACKENDS`];
/// returns the missing backends otherwise. Only meaningful on documents
/// that already passed [`validate_coverage`].
pub fn validate_e10_backends(samples: &[Sample]) -> Result<(), String> {
    let missing: Vec<&str> = E10_BACKENDS
        .iter()
        .filter(|b| {
            !samples
                .iter()
                .any(|s| s.experiment == "e10" && s.reclaimer.as_deref() == Some(**b))
        })
        .copied()
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("e10 missing backends: {}", missing.join(", ")))
    }
}

/// Checks the E11 resize sweep: both implementations in [`E11_IMPLS`]
/// must appear among the `e11` samples, and the document's
/// `e11_resizing_doublings` extra must record at least three bucket-array
/// doublings — the sweep is meaningless if the resizable map never grew.
pub fn validate_e11_resize(doc: &Json, samples: &[Sample]) -> Result<(), String> {
    let missing: Vec<&str> = E11_IMPLS
        .iter()
        .filter(|name| {
            !samples
                .iter()
                .any(|s| s.experiment == "e11" && s.impl_name == **name)
        })
        .copied()
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "e11 missing implementations: {}",
            missing.join(", ")
        ));
    }
    let doublings = doc
        .get("extras")
        .and_then(|e| e.get("e11_resizing_doublings"))
        .and_then(Json::as_f64)
        .ok_or("e11 present but extras.e11_resizing_doublings missing")?;
    if doublings < 3.0 {
        return Err(format!(
            "e11_resizing_doublings {doublings} < 3: the sweep never exercised growth"
        ));
    }
    Ok(())
}

/// Checks the E12 contention sweep: every implementation in [`E12_IMPLS`]
/// must appear among the `e12` samples, and the document must record the
/// `telemetry_enabled` extra (1 when the bench binary was built with the
/// `telemetry` feature, 0 otherwise). When it is 1, every e12 sample must
/// carry a telemetry record, the CAS structures must have observed
/// attempts, and the lock must have observed spin iterations — a silent
/// all-zero sweep would mean the instrumentation came unwired.
pub fn validate_e12_contention(doc: &Json, samples: &[Sample]) -> Result<(), String> {
    let missing: Vec<&str> = E12_IMPLS
        .iter()
        .filter(|name| {
            !samples
                .iter()
                .any(|s| s.experiment == "e12" && s.impl_name == **name)
        })
        .copied()
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "e12 missing implementations: {}",
            missing.join(", ")
        ));
    }
    let enabled = doc
        .get("extras")
        .and_then(|e| e.get("telemetry_enabled"))
        .and_then(Json::as_f64)
        .ok_or("e12 present but extras.telemetry_enabled missing")?;
    if enabled == 0.0 {
        return Ok(());
    }
    for s in samples.iter().filter(|s| s.experiment == "e12") {
        let t = s.telemetry.as_ref().ok_or_else(|| {
            format!(
                "telemetry_enabled=1 but e12 sample ({}, {} threads) has no telemetry record",
                s.impl_name, s.threads
            )
        })?;
        let signal = match s.impl_name.as_str() {
            "ttas+backoff" => t.get("ttas_spin") + t.get("ttas_acquire"),
            _ => t.get("cas_attempt"),
        };
        if signal == 0 {
            return Err(format!(
                "e12 sample ({}, {} threads): telemetry record carries no contention signal",
                s.impl_name, s.threads
            ));
        }
    }
    Ok(())
}

/// Checks the E13 executor sweep: every workload in [`E13_WORKLOADS`]
/// must appear among the `e13` samples (as `impl`), and when
/// `extras.telemetry_enabled` is 1 every e13 sample must carry a
/// telemetry record whose executor counters prove (a) tasks actually ran
/// (`exec_tasks_executed > 0`) and (b) the conservation invariant held at
/// quiesce (`exec_tasks_spawned == exec_tasks_executed`) — a mismatch
/// means the pool lost or duplicated a task during the measured run.
pub fn validate_e13_executor(doc: &Json, samples: &[Sample]) -> Result<(), String> {
    let missing: Vec<&str> = E13_WORKLOADS
        .iter()
        .filter(|name| {
            !samples
                .iter()
                .any(|s| s.experiment == "e13" && s.impl_name == **name)
        })
        .copied()
        .collect();
    if !missing.is_empty() {
        return Err(format!("e13 missing workloads: {}", missing.join(", ")));
    }
    let enabled = doc
        .get("extras")
        .and_then(|e| e.get("telemetry_enabled"))
        .and_then(Json::as_f64)
        .ok_or("e13 present but extras.telemetry_enabled missing")?;
    if enabled == 0.0 {
        return Ok(());
    }
    for s in samples.iter().filter(|s| s.experiment == "e13") {
        let t = s.telemetry.as_ref().ok_or_else(|| {
            format!(
                "telemetry_enabled=1 but e13 sample ({}, {} threads) has no telemetry record",
                s.impl_name, s.threads
            )
        })?;
        let spawned = t.get("exec_tasks_spawned");
        let executed = t.get("exec_tasks_executed");
        if executed == 0 {
            return Err(format!(
                "e13 sample ({}, {} threads): executor telemetry shows no executed tasks",
                s.impl_name, s.threads
            ));
        }
        if spawned != executed {
            return Err(format!(
                "e13 sample ({}, {} threads): conservation violated \
                 (spawned {spawned} != executed {executed})",
                s.impl_name, s.threads
            ));
        }
    }
    Ok(())
}

/// Checks the E14 channel sweep: every variant in [`E14_WORKLOADS`] must
/// appear among the `e14` samples (as `impl`), and when
/// `extras.telemetry_enabled` is 1 every e14 sample must carry a
/// telemetry record whose channel counters prove (a) messages actually
/// flowed (`chan_sends > 0`) and (b) message conservation held once the
/// cell's channel dropped
/// (`chan_sends == chan_recvs + chan_drained_at_drop`) — a mismatch
/// means the channel lost or duplicated a message during the measured
/// run.
pub fn validate_e14_channel(doc: &Json, samples: &[Sample]) -> Result<(), String> {
    let missing: Vec<&str> = E14_WORKLOADS
        .iter()
        .filter(|name| {
            !samples
                .iter()
                .any(|s| s.experiment == "e14" && s.impl_name == **name)
        })
        .copied()
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "e14 missing channel variants: {}",
            missing.join(", ")
        ));
    }
    let enabled = doc
        .get("extras")
        .and_then(|e| e.get("telemetry_enabled"))
        .and_then(Json::as_f64)
        .ok_or("e14 present but extras.telemetry_enabled missing")?;
    if enabled == 0.0 {
        return Ok(());
    }
    for s in samples.iter().filter(|s| s.experiment == "e14") {
        let t = s.telemetry.as_ref().ok_or_else(|| {
            format!(
                "telemetry_enabled=1 but e14 sample ({}, {} threads) has no telemetry record",
                s.impl_name, s.threads
            )
        })?;
        let sends = t.get("chan_sends");
        let recvs = t.get("chan_recvs");
        let drained = t.get("chan_drained_at_drop");
        if sends == 0 {
            return Err(format!(
                "e14 sample ({}, {} threads): channel telemetry shows no sends",
                s.impl_name, s.threads
            ));
        }
        if sends != recvs + drained {
            return Err(format!(
                "e14 sample ({}, {} threads): message conservation violated \
                 (sent {sends} != received {recvs} + drained-at-drop {drained})",
                s.impl_name, s.threads
            ));
        }
    }
    Ok(())
}

/// Checks that `samples` covers every experiment in [`ALL_EXPERIMENTS`];
/// returns the missing identifiers otherwise.
pub fn validate_coverage(samples: &[Sample]) -> Result<(), String> {
    let missing: Vec<&str> = ALL_EXPERIMENTS
        .iter()
        .filter(|id| !samples.iter().any(|s| s.experiment == **id))
        .copied()
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("missing experiments: {}", missing.join(", ")))
    }
}

//! Benchmark harness for the `cds` family.
//!
//! This crate regenerates the evaluation tables of DESIGN.md (experiments
//! E1–E10): workload generators, a thread-sweep driver, and helpers shared
//! by the Criterion benches (`benches/`) and the table-printing
//! [`experiments`](../src/bin/experiments.rs) binary:
//!
//! ```text
//! cargo run -p cds-bench --release --bin experiments -- all
//! cargo bench -p cds-bench --bench lists
//! ```
//!
//! Methodology (standard for the literature): prefill the structure, run a
//! fixed operation count per thread of a randomized operation mix drawn
//! from a per-thread xorshift stream, and report million operations per
//! second of wall-clock time. Threads synchronize on a barrier so ramp-up
//! is excluded.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use cds_core::{
    ConcurrentCounter, ConcurrentMap, ConcurrentPriorityQueue, ConcurrentQueue, ConcurrentSet,
    ConcurrentStack,
};

/// A mixed-operation workload description.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Number of worker threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: u64,
    /// Percentage of read (contains/get) operations.
    pub read_pct: u8,
    /// Percentage of insert operations (the rest are removes).
    pub insert_pct: u8,
    /// Number of keys inserted before timing starts.
    pub prefill: usize,
}

impl Workload {
    /// A small default suitable for Criterion iterations.
    pub fn small(threads: usize) -> Self {
        Workload {
            threads,
            ops_per_thread: 10_000,
            key_range: 1024,
            read_pct: 50,
            insert_pct: 25,
            prefill: 512,
        }
    }
}

/// Simple xorshift64* stream, one per thread, so workloads are
/// reproducible and allocation-free.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Creates a stream; `seed` must be non-zero (0 is remapped).
    pub fn new(seed: u64) -> Self {
        XorShift(seed.max(1).wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }

    /// Next pseudo-random value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn run_threads<F>(threads: usize, total_ops: usize, body: F) -> f64
where
    F: Fn(usize) + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let body = Arc::clone(&body);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Workers report their own (start, end): on an
                // oversubscribed host the coordinating thread may not be
                // rescheduled until workers finish, so any centrally
                // measured clock mis-counts. The workload span is
                // max(end) − min(start) across workers.
                let start = Instant::now();
                body(t);
                (start, Instant::now())
            })
        })
        .collect();
    let stamps: Vec<(Instant, Instant)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let first_start = stamps.iter().map(|(s, _)| *s).min().expect("non-empty");
    let last_end = stamps.iter().map(|(_, e)| *e).max().expect("non-empty");
    let span = last_end.duration_since(first_start).as_secs_f64();
    total_ops as f64 / span / 1e6
}

/// Runs a read/insert/remove mix against a set; returns Mops/s.
pub fn set_throughput<S>(set: Arc<S>, w: Workload) -> f64
where
    S: ConcurrentSet<u64> + 'static,
{
    let mut rng = XorShift::new(42);
    let mut inserted = 0usize;
    while inserted < w.prefill {
        if set.insert(rng.next_u64() % w.key_range) {
            inserted += 1;
        }
        if w.prefill as u64 > w.key_range {
            break; // range too small to ever finish
        }
    }
    let set2 = Arc::clone(&set);
    run_threads(w.threads, w.threads * w.ops_per_thread, move |t| {
        let mut rng = XorShift::new(t as u64 + 1);
        for _ in 0..w.ops_per_thread {
            let k = rng.next_u64() % w.key_range;
            let dice = (rng.next_u64() % 100) as u8;
            if dice < w.read_pct {
                std::hint::black_box(set2.contains(&k));
            } else if dice < w.read_pct + w.insert_pct {
                std::hint::black_box(set2.insert(k));
            } else {
                std::hint::black_box(set2.remove(&k));
            }
        }
    })
}

/// Runs a get/insert/remove mix against a map; returns Mops/s.
pub fn map_throughput<M>(map: Arc<M>, w: Workload) -> f64
where
    M: ConcurrentMap<u64, u64> + 'static,
{
    let mut rng = XorShift::new(42);
    let mut inserted = 0usize;
    while inserted < w.prefill {
        let k = rng.next_u64() % w.key_range;
        if map.insert(k, k) {
            inserted += 1;
        }
        if w.prefill as u64 > w.key_range {
            break;
        }
    }
    let map2 = Arc::clone(&map);
    run_threads(w.threads, w.threads * w.ops_per_thread, move |t| {
        let mut rng = XorShift::new(t as u64 + 1);
        for _ in 0..w.ops_per_thread {
            let k = rng.next_u64() % w.key_range;
            let dice = (rng.next_u64() % 100) as u8;
            if dice < w.read_pct {
                std::hint::black_box(map2.get(&k));
            } else if dice < w.read_pct + w.insert_pct {
                std::hint::black_box(map2.insert(k, k));
            } else {
                std::hint::black_box(map2.remove(&k));
            }
        }
    })
}

/// Runs a 50/50 push/pop mix against a stack; returns Mops/s.
pub fn stack_throughput<S>(stack: Arc<S>, threads: usize, ops_per_thread: usize) -> f64
where
    S: ConcurrentStack<u64> + 'static,
{
    for i in 0..1024 {
        stack.push(i);
    }
    let stack2 = Arc::clone(&stack);
    run_threads(threads, threads * ops_per_thread, move |t| {
        let mut rng = XorShift::new(t as u64 + 1);
        for _ in 0..ops_per_thread {
            if rng.next_u64().is_multiple_of(2) {
                stack2.push(t as u64);
            } else {
                std::hint::black_box(stack2.pop());
            }
        }
    })
}

/// Runs a 50/50 enqueue/dequeue mix against a queue; returns Mops/s.
pub fn queue_throughput<Q>(queue: Arc<Q>, threads: usize, ops_per_thread: usize) -> f64
where
    Q: ConcurrentQueue<u64> + 'static,
{
    for i in 0..1024 {
        queue.enqueue(i);
    }
    let queue2 = Arc::clone(&queue);
    run_threads(threads, threads * ops_per_thread, move |t| {
        let mut rng = XorShift::new(t as u64 + 1);
        for _ in 0..ops_per_thread {
            if rng.next_u64().is_multiple_of(2) {
                queue2.enqueue(t as u64);
            } else {
                std::hint::black_box(queue2.dequeue());
            }
        }
    })
}

/// Runs increment-only traffic against a counter; returns Mops/s.
pub fn counter_throughput<C>(counter: Arc<C>, threads: usize, ops_per_thread: usize) -> f64
where
    C: ConcurrentCounter + 'static,
{
    let counter2 = Arc::clone(&counter);
    run_threads(threads, threads * ops_per_thread, move |_| {
        for _ in 0..ops_per_thread {
            counter2.increment();
        }
    })
}

/// Runs a 50/50 insert/remove-min mix against a priority queue; returns
/// Mops/s.
pub fn pq_throughput<P>(pq: Arc<P>, threads: usize, ops_per_thread: usize) -> f64
where
    P: ConcurrentPriorityQueue<u64> + 'static,
{
    let mut rng = XorShift::new(7);
    for _ in 0..4096 {
        pq.insert(rng.next_u64() % 1_000_000);
    }
    let pq2 = Arc::clone(&pq);
    run_threads(threads, threads * ops_per_thread, move |t| {
        let mut rng = XorShift::new(t as u64 + 1);
        for _ in 0..ops_per_thread {
            if rng.next_u64().is_multiple_of(2) {
                std::hint::black_box(pq2.insert(rng.next_u64() % 1_000_000));
            } else {
                std::hint::black_box(pq2.remove_min());
            }
        }
    })
}

/// Lock acquisition throughput: `threads` threads repeatedly lock, bump a
/// shared counter, and unlock. `lock_incr` performs exactly one
/// lock-protected increment. Returns M acquisitions/s.
pub fn lock_throughput<F>(threads: usize, ops_per_thread: usize, lock_incr: F) -> f64
where
    F: Fn() + Send + Sync + 'static,
{
    run_threads(threads, threads * ops_per_thread, move |_| {
        for _ in 0..ops_per_thread {
            lock_incr();
        }
    })
}

/// A Treiber stack that **never frees popped nodes** — the reclamation
/// experiment's upper-bound baseline (E10): all the algorithm, none of the
/// reclamation cost, unbounded leak.
#[derive(Debug)]
pub struct LeakyTreiberStack<T> {
    head: AtomicPtr<LeakyNode<T>>,
}

#[derive(Debug)]
struct LeakyNode<T> {
    value: Option<T>,
    next: *mut LeakyNode<T>,
}

// SAFETY: values move by `T: Send`; nodes are intentionally leaked, so no
// use-after-free is possible.
unsafe impl<T: Send> Send for LeakyTreiberStack<T> {}
unsafe impl<T: Send> Sync for LeakyTreiberStack<T> {}

impl<T> LeakyTreiberStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        LeakyTreiberStack {
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

impl<T> Default for LeakyTreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> ConcurrentStack<T> for LeakyTreiberStack<T> {
    const NAME: &'static str = "treiber-leak";

    fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(LeakyNode {
            value: Some(value),
            next: std::ptr::null_mut(),
        }));
        loop {
            let head = self.head.load(Ordering::Relaxed);
            // SAFETY: unpublished.
            unsafe { (*node).next = head };
            if self
                .head
                .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    fn pop(&self) -> Option<T> {
        loop {
            let head = self.head.load(Ordering::Acquire);
            if head.is_null() {
                return None;
            }
            // SAFETY: nodes are never freed, so this is always valid (the
            // entire point of the leaking baseline).
            let next = unsafe { (*head).next };
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: CAS winner takes the value; node itself leaks.
                return unsafe { (*head).value.take() };
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift::new(1);
        let mut b = XorShift::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn set_throughput_reports_positive_rate() {
        let set = Arc::new(cds_list::LazyList::new());
        let mops = set_throughput(
            set,
            Workload {
                threads: 2,
                ops_per_thread: 1_000,
                key_range: 64,
                read_pct: 50,
                insert_pct: 25,
                prefill: 32,
            },
        );
        assert!(mops > 0.0);
    }

    #[test]
    fn leaky_stack_is_a_working_stack() {
        let s = LeakyTreiberStack::new();
        s.push(1);
        s.push(2);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn counter_throughput_counts_everything() {
        let c = Arc::new(cds_counter::AtomicCounter::new());
        let mops = counter_throughput(Arc::clone(&c), 2, 5_000);
        assert!(mops > 0.0);
        use cds_core::ConcurrentCounter;
        assert_eq!(c.get(), 10_000);
    }
}

//! Benchmark harness for the `cds` family.
//!
//! This crate regenerates the evaluation tables of DESIGN.md (experiments
//! E1–E10) and emits the machine-readable `BENCH_experiments.json`
//! measurement file: workload generators, a thread-sweep driver with
//! per-thread latency histograms, warmup with steady-state detection, and
//! helpers shared by the Criterion benches (`benches/`) and the
//! [`experiments`](../src/bin/experiments.rs) binary:
//!
//! ```text
//! cargo run -p cds-bench --release --bin experiments -- all --quick --json BENCH_experiments.json
//! cargo bench -p cds-bench --bench lists
//! ```
//!
//! Methodology (standard for the literature): prefill the structure with
//! `min(prefill, key_range)` distinct keys, run warmup iterations until the
//! throughput's coefficient of variation over the last few iterations drops
//! below a threshold (steady state), then run a fixed operation count per
//! thread of a randomized operation mix drawn from a per-thread xorshift64*
//! stream. Threads synchronize on a barrier so ramp-up is excluded, and the
//! workload span is `max(end) − min(start)` across workers. Throughput is
//! million operations per second; latency percentiles come from per-thread
//! log-bucketed histograms ([`LatencyHistogram`]) recorded for one op in
//! [`LATENCY_SAMPLE_EVERY`] and merged after the run.

#![warn(missing_docs)]

use std::sync::{Arc, Barrier};
use std::time::Instant;

use cds_core::{
    ConcurrentCounter, ConcurrentMap, ConcurrentPriorityQueue, ConcurrentQueue, ConcurrentSet,
    ConcurrentStack,
};

mod hist;
pub mod json;
pub mod report;

pub use hist::LatencyHistogram;
pub use report::{Report, Sample};

/// Seed of the prefill key stream (pinned; recorded in the JSON report).
pub const PREFILL_SEED: u64 = 42;

/// Per-thread op-stream seeds are `THREAD_SEED_BASE + thread_index`
/// (pinned; recorded in the JSON report).
pub const THREAD_SEED_BASE: u64 = 1;

/// Warmup iterations offset their per-thread seeds by this constant (plus a
/// per-iteration stride) so the timed run replays a fresh, pinned stream.
pub const WARMUP_SEED_OFFSET: u64 = 0x5eed_0000;

/// One operation in [`LATENCY_SAMPLE_EVERY`] is individually timed into the
/// latency histogram; the rest run back-to-back so the two `Instant::now()`
/// calls per sampled op do not poison the throughput figures.
pub const LATENCY_SAMPLE_EVERY: usize = 8;

/// A mixed-operation workload description.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Number of worker threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: u64,
    /// Percentage of read (contains/get) operations.
    pub read_pct: u8,
    /// Percentage of insert operations (the rest are removes).
    pub insert_pct: u8,
    /// Number of keys inserted before timing starts (clamped to
    /// `key_range` for keyed structures — see [`prefill_set`]).
    pub prefill: usize,
}

impl Workload {
    /// A small default suitable for Criterion iterations.
    pub fn small(threads: usize) -> Self {
        Workload {
            threads,
            ops_per_thread: 10_000,
            key_range: 1024,
            read_pct: 50,
            insert_pct: 25,
            prefill: 512,
        }
    }

    /// A keyless workload (counters, locks): only `threads` and
    /// `ops_per_thread` are meaningful.
    pub fn ops_only(threads: usize, ops_per_thread: usize) -> Self {
        Workload {
            threads,
            ops_per_thread,
            key_range: 0,
            read_pct: 0,
            insert_pct: 0,
            prefill: 0,
        }
    }

    /// The classical 50/50 producer/consumer mix for stacks and queues,
    /// with an explicit prefill (E2/E3 sweep this).
    pub fn fifty_fifty(threads: usize, ops_per_thread: usize, prefill: usize) -> Self {
        Workload {
            threads,
            ops_per_thread,
            key_range: 1024,
            read_pct: 0,
            insert_pct: 50,
            prefill,
        }
    }

    /// The E8 priority-queue mix: 50/50 insert/remove-min over a large key
    /// range with a 4096-element prefill.
    pub fn pq_default(threads: usize, ops_per_thread: usize) -> Self {
        Workload {
            threads,
            ops_per_thread,
            key_range: 1_000_000,
            read_pct: 0,
            insert_pct: 50,
            prefill: 4096,
        }
    }
}

/// Simple xorshift64* stream, one per thread, so workloads are
/// reproducible and allocation-free.
///
/// The state update is the classic xorshift64 triple-shift; the output is
/// the state times the Vigna finalizer constant, which repairs the weak low
/// bits of the raw generator (plain xorshift fails low-bit tests — a 50/50
/// branch on the raw low bit is measurably biased).
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Creates a stream; `seed` must be non-zero (0 is remapped).
    pub fn new(seed: u64) -> Self {
        XorShift(seed.max(1).wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }

    /// Next pseudo-random value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// One operation of a read/insert/remove mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixedOp {
    /// `contains`/`get` on the key.
    Read(u64),
    /// `insert` of the key.
    Insert(u64),
    /// `remove` of the key.
    Remove(u64),
}

/// A deterministic per-thread operation stream: given the same seed and
/// workload parameters it yields the identical op sequence, which is what
/// makes two benchmark runs comparable (and is pinned by a unit test).
#[derive(Debug, Clone)]
pub struct OpStream {
    rng: XorShift,
    key_range: u64,
    read_pct: u8,
    insert_pct: u8,
}

impl OpStream {
    /// Creates the stream for one worker thread.
    pub fn new(seed: u64, w: &Workload) -> Self {
        OpStream {
            rng: XorShift::new(seed),
            key_range: w.key_range.max(1),
            read_pct: w.read_pct,
            insert_pct: w.insert_pct,
        }
    }

    /// Next uniform key in `0..key_range`.
    #[inline]
    pub fn next_key(&mut self) -> u64 {
        self.rng.next_u64() % self.key_range
    }

    /// A fair coin for 50/50 mixes. Branches on the *high* bit of the
    /// multiplied output: the low bit of a xorshift state is its weakest.
    #[inline]
    pub fn coin(&mut self) -> bool {
        self.rng.next_u64() >> 63 == 0
    }

    /// Next operation of the read/insert/remove mix.
    #[inline]
    pub fn next_op(&mut self) -> MixedOp {
        let k = self.next_key();
        let dice = (self.rng.next_u64() % 100) as u8;
        if dice < self.read_pct {
            MixedOp::Read(k)
        } else if dice < self.read_pct + self.insert_pct {
            MixedOp::Insert(k)
        } else {
            MixedOp::Remove(k)
        }
    }
}

/// Warmup policy: run untimed iterations of the workload until the
/// throughput is steady (coefficient of variation over the last
/// [`window`](Warmup::window) iterations below
/// [`cov_threshold`](Warmup::cov_threshold)) or
/// [`max_iters`](Warmup::max_iters) is reached.
#[derive(Debug, Clone, Copy)]
pub struct Warmup {
    /// Upper bound on warmup iterations (0 disables warmup).
    pub max_iters: usize,
    /// Number of trailing iterations the CoV is computed over.
    pub window: usize,
    /// Steady state is declared when `stddev/mean <= cov_threshold`.
    pub cov_threshold: f64,
    /// Each warmup iteration runs `ops_per_thread / ops_divisor` ops.
    pub ops_divisor: usize,
}

impl Warmup {
    /// The full-run policy: up to 5 iterations, CoV ≤ 5% over the last 3.
    pub fn standard() -> Self {
        Warmup {
            max_iters: 5,
            window: 3,
            cov_threshold: 0.05,
            ops_divisor: 4,
        }
    }

    /// The `--quick` policy: at most 2 short iterations, CoV ≤ 10%.
    pub fn quick() -> Self {
        Warmup {
            max_iters: 2,
            window: 2,
            cov_threshold: 0.10,
            ops_divisor: 8,
        }
    }

    /// No warmup at all (Criterion benches do their own).
    pub fn none() -> Self {
        Warmup {
            max_iters: 0,
            window: 0,
            cov_threshold: 0.0,
            ops_divisor: 1,
        }
    }
}

/// Steady-state test: CoV of the last `warm.window` throughput samples.
fn steady(history: &[f64], warm: &Warmup) -> bool {
    if warm.window == 0 || history.len() < warm.window {
        return false;
    }
    let tail = &history[history.len() - warm.window..];
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    if mean <= 0.0 {
        return false;
    }
    let var = tail.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / tail.len() as f64;
    var.sqrt() / mean <= warm.cov_threshold
}

/// The result of one measured run: throughput plus the merged per-thread
/// latency histogram.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Wall-clock span of the timed section, seconds.
    pub duration_s: f64,
    /// Total timed operations across all threads.
    pub total_ops: usize,
    /// Warmup iterations executed before the timed run.
    pub warmup_iters: usize,
    /// Merged sampled-latency histogram (see [`LATENCY_SAMPLE_EVERY`]).
    pub hist: LatencyHistogram,
}

/// Spawns `threads` workers, each with private state from `init`, and runs
/// `ops_per_thread` calls of `op` per worker after a start barrier.
/// Returns `(span_seconds, total_ops, merged_histogram)`.
fn run_sampled<St, Init, Op>(
    threads: usize,
    ops_per_thread: usize,
    init: Init,
    op: Op,
) -> (f64, usize, LatencyHistogram)
where
    St: Send + 'static,
    Init: Fn(usize) -> St + Send + Sync + 'static,
    Op: Fn(&mut St) + Send + Sync + 'static,
{
    let init = Arc::new(init);
    let op = Arc::new(op);
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let init = Arc::clone(&init);
            let op = Arc::clone(&op);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut state = init(t);
                let mut hist = LatencyHistogram::new();
                barrier.wait();
                // Workers report their own (start, end): on an
                // oversubscribed host the coordinating thread may not be
                // rescheduled until workers finish, so any centrally
                // measured clock mis-counts. The workload span is
                // max(end) − min(start) across workers.
                let start = Instant::now();
                let mut remaining = ops_per_thread;
                while remaining > 0 {
                    let t0 = Instant::now();
                    op(&mut state);
                    hist.record(t0.elapsed().as_nanos() as u64);
                    remaining -= 1;
                    let untimed = remaining.min(LATENCY_SAMPLE_EVERY - 1);
                    for _ in 0..untimed {
                        op(&mut state);
                    }
                    remaining -= untimed;
                }
                (start, Instant::now(), hist)
            })
        })
        .collect();
    let outcomes: Vec<(Instant, Instant, LatencyHistogram)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    let first_start = outcomes
        .iter()
        .map(|(s, _, _)| *s)
        .min()
        .expect("non-empty");
    let last_end = outcomes
        .iter()
        .map(|(_, e, _)| *e)
        .max()
        .expect("non-empty");
    let span = last_end.duration_since(first_start).as_secs_f64();
    let mut merged = LatencyHistogram::new();
    for (_, _, h) in &outcomes {
        merged.merge(h);
    }
    (span, threads * ops_per_thread, merged)
}

/// Shared measurement path: warmup iterations (steady-state detected via
/// `warm`) followed by one timed run. `init` receives `(thread, seed
/// offset)` — the offset is nonzero during warmup so the timed run replays
/// pristine pinned streams.
fn measured_run<St, Init, Op>(w: Workload, warm: Warmup, init: Init, op: Op) -> RunStats
where
    St: Send + 'static,
    Init: Fn(usize, u64) -> St + Send + Sync + 'static,
    Op: Fn(&mut St) + Send + Sync + 'static,
{
    let init = Arc::new(init);
    let op = Arc::new(op);
    let mut history = Vec::new();
    let mut warmup_iters = 0usize;
    for i in 0..warm.max_iters {
        let offset = WARMUP_SEED_OFFSET + (i as u64) * 0x1_0000;
        let warm_ops = (w.ops_per_thread / warm.ops_divisor.max(1)).max(1);
        let init2 = Arc::clone(&init);
        let op2 = Arc::clone(&op);
        let (span, ops, _) = run_sampled(
            w.threads,
            warm_ops,
            move |t| init2(t, offset),
            move |s| op2(s),
        );
        warmup_iters += 1;
        history.push(ops as f64 / span / 1e6);
        if steady(&history, &warm) {
            break;
        }
    }
    let (span, total_ops, hist) = run_sampled(
        w.threads,
        w.ops_per_thread,
        move |t| init(t, 0),
        move |s| op(s),
    );
    RunStats {
        mops: total_ops as f64 / span / 1e6,
        duration_s: span,
        total_ops,
        warmup_iters,
        hist,
    }
}

/// Prefills a set with exactly `min(w.prefill, w.key_range)` **distinct**
/// keys from the pinned [`PREFILL_SEED`] stream, and returns that count.
///
/// The clamp matters: asking for more distinct keys than the key range
/// holds can never succeed, and the harness used to bail out after ~one
/// insertion in that case, silently starting E4–E7 from a near-empty
/// structure.
pub fn prefill_set<S>(set: &S, w: &Workload) -> usize
where
    S: ConcurrentSet<u64> + ?Sized,
{
    let key_range = w.key_range.max(1);
    let target = w.prefill.min(key_range as usize);
    let mut rng = XorShift::new(PREFILL_SEED);
    let mut inserted = 0usize;
    while inserted < target {
        if set.insert(rng.next_u64() % key_range) {
            inserted += 1;
        }
    }
    inserted
}

/// Prefills a map with exactly `min(w.prefill, w.key_range)` distinct keys
/// (value = key) from the pinned [`PREFILL_SEED`] stream.
pub fn prefill_map<M>(map: &M, w: &Workload) -> usize
where
    M: ConcurrentMap<u64, u64> + ?Sized,
{
    let key_range = w.key_range.max(1);
    let target = w.prefill.min(key_range as usize);
    let mut rng = XorShift::new(PREFILL_SEED);
    let mut inserted = 0usize;
    while inserted < target {
        let k = rng.next_u64() % key_range;
        if map.insert(k, k) {
            inserted += 1;
        }
    }
    inserted
}

/// Pushes `w.prefill` values (from the pinned prefill stream) onto a stack.
pub fn prefill_stack<S>(stack: &S, w: &Workload)
where
    S: ConcurrentStack<u64> + ?Sized,
{
    let key_range = w.key_range.max(1);
    let mut rng = XorShift::new(PREFILL_SEED);
    for _ in 0..w.prefill {
        stack.push(rng.next_u64() % key_range);
    }
}

/// Enqueues `w.prefill` values (from the pinned prefill stream) into a
/// queue.
pub fn prefill_queue<Q>(queue: &Q, w: &Workload)
where
    Q: ConcurrentQueue<u64> + ?Sized,
{
    let key_range = w.key_range.max(1);
    let mut rng = XorShift::new(PREFILL_SEED);
    for _ in 0..w.prefill {
        queue.enqueue(rng.next_u64() % key_range);
    }
}

/// Prefills a priority queue with `min(w.prefill, w.key_range)` distinct
/// priorities from the pinned prefill stream.
pub fn prefill_pq<P>(pq: &P, w: &Workload) -> usize
where
    P: ConcurrentPriorityQueue<u64> + ?Sized,
{
    let key_range = w.key_range.max(1);
    let target = w.prefill.min(key_range as usize);
    let mut rng = XorShift::new(PREFILL_SEED);
    let mut inserted = 0usize;
    while inserted < target {
        if pq.insert(rng.next_u64() % key_range) {
            inserted += 1;
        }
    }
    inserted
}

/// Runs a read/insert/remove mix against a set.
pub fn set_run<S>(set: Arc<S>, w: Workload, warm: Warmup) -> RunStats
where
    S: ConcurrentSet<u64> + 'static,
{
    prefill_set(&*set, &w);
    let set2 = Arc::clone(&set);
    measured_run(
        w,
        warm,
        move |t, offset| OpStream::new(THREAD_SEED_BASE + t as u64 + offset, &w),
        move |stream: &mut OpStream| match stream.next_op() {
            MixedOp::Read(k) => {
                std::hint::black_box(set2.contains(&k));
            }
            MixedOp::Insert(k) => {
                std::hint::black_box(set2.insert(k));
            }
            MixedOp::Remove(k) => {
                std::hint::black_box(set2.remove(&k));
            }
        },
    )
}

/// Runs a get/insert/remove mix against a map.
pub fn map_run<M>(map: Arc<M>, w: Workload, warm: Warmup) -> RunStats
where
    M: ConcurrentMap<u64, u64> + 'static,
{
    prefill_map(&*map, &w);
    let map2 = Arc::clone(&map);
    measured_run(
        w,
        warm,
        move |t, offset| OpStream::new(THREAD_SEED_BASE + t as u64 + offset, &w),
        move |stream: &mut OpStream| match stream.next_op() {
            MixedOp::Read(k) => {
                std::hint::black_box(map2.get(&k));
            }
            MixedOp::Insert(k) => {
                std::hint::black_box(map2.insert(k, k));
            }
            MixedOp::Remove(k) => {
                std::hint::black_box(map2.remove(&k));
            }
        },
    )
}

/// Runs a 50/50 push/pop mix against a stack.
pub fn stack_run<S>(stack: Arc<S>, w: Workload, warm: Warmup) -> RunStats
where
    S: ConcurrentStack<u64> + 'static,
{
    prefill_stack(&*stack, &w);
    let stack2 = Arc::clone(&stack);
    measured_run(
        w,
        warm,
        move |t, offset| OpStream::new(THREAD_SEED_BASE + t as u64 + offset, &w),
        move |stream: &mut OpStream| {
            if stream.coin() {
                stack2.push(stream.next_key());
            } else {
                std::hint::black_box(stack2.pop());
            }
        },
    )
}

/// Runs a 50/50 enqueue/dequeue mix against a queue.
pub fn queue_run<Q>(queue: Arc<Q>, w: Workload, warm: Warmup) -> RunStats
where
    Q: ConcurrentQueue<u64> + 'static,
{
    prefill_queue(&*queue, &w);
    let queue2 = Arc::clone(&queue);
    measured_run(
        w,
        warm,
        move |t, offset| OpStream::new(THREAD_SEED_BASE + t as u64 + offset, &w),
        move |stream: &mut OpStream| {
            if stream.coin() {
                queue2.enqueue(stream.next_key());
            } else {
                std::hint::black_box(queue2.dequeue());
            }
        },
    )
}

/// Runs increment-only traffic against a counter.
pub fn counter_run<C>(counter: Arc<C>, w: Workload, warm: Warmup) -> RunStats
where
    C: ConcurrentCounter + 'static,
{
    let counter2 = Arc::clone(&counter);
    measured_run(w, warm, |_, _| (), move |_: &mut ()| counter2.increment())
}

/// Runs a 50/50 insert/remove-min mix against a priority queue.
pub fn pq_run<P>(pq: Arc<P>, w: Workload, warm: Warmup) -> RunStats
where
    P: ConcurrentPriorityQueue<u64> + 'static,
{
    prefill_pq(&*pq, &w);
    let pq2 = Arc::clone(&pq);
    measured_run(
        w,
        warm,
        move |t, offset| OpStream::new(THREAD_SEED_BASE + t as u64 + offset, &w),
        move |stream: &mut OpStream| {
            if stream.coin() {
                std::hint::black_box(pq2.insert(stream.next_key()));
            } else {
                std::hint::black_box(pq2.remove_min());
            }
        },
    )
}

/// Lock acquisition: `threads` threads repeatedly run `lock_incr` (exactly
/// one lock-protected increment each call).
pub fn lock_run<F>(threads: usize, ops_per_thread: usize, warm: Warmup, lock_incr: F) -> RunStats
where
    F: Fn() + Send + Sync + 'static,
{
    let w = Workload::ops_only(threads, ops_per_thread);
    measured_run(w, warm, |_, _| (), move |_: &mut ()| lock_incr())
}

/// Runs a read/insert/remove mix against a set; returns Mops/s.
pub fn set_throughput<S>(set: Arc<S>, w: Workload) -> f64
where
    S: ConcurrentSet<u64> + 'static,
{
    set_run(set, w, Warmup::none()).mops
}

/// Runs a get/insert/remove mix against a map; returns Mops/s.
pub fn map_throughput<M>(map: Arc<M>, w: Workload) -> f64
where
    M: ConcurrentMap<u64, u64> + 'static,
{
    map_run(map, w, Warmup::none()).mops
}

/// Runs a 50/50 push/pop mix against a stack; returns Mops/s.
pub fn stack_throughput<S>(stack: Arc<S>, w: Workload) -> f64
where
    S: ConcurrentStack<u64> + 'static,
{
    stack_run(stack, w, Warmup::none()).mops
}

/// Runs a 50/50 enqueue/dequeue mix against a queue; returns Mops/s.
pub fn queue_throughput<Q>(queue: Arc<Q>, w: Workload) -> f64
where
    Q: ConcurrentQueue<u64> + 'static,
{
    queue_run(queue, w, Warmup::none()).mops
}

/// Runs increment-only traffic against a counter; returns Mops/s.
pub fn counter_throughput<C>(counter: Arc<C>, w: Workload) -> f64
where
    C: ConcurrentCounter + 'static,
{
    counter_run(counter, w, Warmup::none()).mops
}

/// Runs a 50/50 insert/remove-min mix against a priority queue; returns
/// Mops/s.
pub fn pq_throughput<P>(pq: Arc<P>, w: Workload) -> f64
where
    P: ConcurrentPriorityQueue<u64> + 'static,
{
    pq_run(pq, w, Warmup::none()).mops
}

/// Lock acquisition throughput: `threads` threads repeatedly lock, bump a
/// shared counter, and unlock. `lock_incr` performs exactly one
/// lock-protected increment. Returns M acquisitions/s.
pub fn lock_throughput<F>(threads: usize, ops_per_thread: usize, lock_incr: F) -> f64
where
    F: Fn() + Send + Sync + 'static,
{
    lock_run(threads, ops_per_thread, Warmup::none(), lock_incr).mops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift::new(1);
        let mut b = XorShift::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xorshift_high_bit_coin_is_roughly_fair() {
        // The raw xorshift low bit is weak; the coin uses the high bit of
        // the multiplied output. Over 100k draws both faces must land in a
        // clearly-fair band.
        let mut w = Workload::small(1);
        w.key_range = 1024;
        let mut s = OpStream::new(9, &w);
        let heads = (0..100_000).filter(|_| s.coin()).count();
        assert!(
            (45_000..=55_000).contains(&heads),
            "biased coin: {heads}/100000 heads"
        );
    }

    #[test]
    fn steady_state_detects_flat_and_rejects_noisy() {
        let warm = Warmup::standard();
        assert!(steady(&[10.0, 10.1, 9.9], &warm));
        assert!(!steady(&[10.0, 20.0, 5.0], &warm));
        assert!(!steady(&[10.0], &warm)); // not enough samples yet
        assert!(!steady(&[10.0, 10.0, 10.0], &Warmup::none()));
    }

    #[test]
    fn set_throughput_reports_positive_rate() {
        let set = Arc::new(cds_list::LazyList::new());
        let mops = set_throughput(
            set,
            Workload {
                threads: 2,
                ops_per_thread: 1_000,
                key_range: 64,
                read_pct: 50,
                insert_pct: 25,
                prefill: 32,
            },
        );
        assert!(mops > 0.0);
    }

    #[test]
    fn counter_throughput_counts_everything() {
        let c = Arc::new(cds_counter::AtomicCounter::new());
        let mops = counter_throughput(Arc::clone(&c), Workload::ops_only(2, 5_000));
        assert!(mops > 0.0);
        use cds_core::ConcurrentCounter;
        assert_eq!(c.get(), 10_000);
    }

    #[test]
    fn run_stats_carry_a_populated_histogram() {
        let c = Arc::new(cds_counter::AtomicCounter::new());
        let stats = counter_run(Arc::clone(&c), Workload::ops_only(2, 4_000), Warmup::none());
        assert_eq!(stats.total_ops, 8_000);
        // One op in LATENCY_SAMPLE_EVERY is timed.
        assert_eq!(stats.hist.count(), (8_000 / LATENCY_SAMPLE_EVERY) as u64);
        assert!(stats.mops > 0.0 && stats.duration_s > 0.0);
        assert_eq!(stats.warmup_iters, 0);
    }

    #[test]
    fn warmup_runs_and_is_counted() {
        let c = Arc::new(cds_counter::AtomicCounter::new());
        let warm = Warmup {
            max_iters: 3,
            window: 2,
            cov_threshold: 1.0, // anything is "steady": stops at window
            ops_divisor: 10,
        };
        let stats = counter_run(Arc::clone(&c), Workload::ops_only(1, 1_000), warm);
        assert_eq!(stats.warmup_iters, 2);
    }
}

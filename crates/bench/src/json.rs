//! Minimal in-tree JSON representation, writer, and parser.
//!
//! The build environment has no route to crates.io (see the workspace
//! manifest), so `BENCH_experiments.json` is produced and consumed by this
//! dependency-free module instead of serde. It supports exactly the JSON
//! subset the benchmark schema needs — objects, arrays, strings, finite
//! numbers, booleans, null — and round-trips its own output
//! ([`Json::parse`] ∘ [`Json::to_string_pretty`] is the identity on the
//! values the reporter emits; a unit test in `tests/harness.rs` pins this).

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // schema never emits these; be defensive
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Escaped surrogate pairs are not emitted by our
                            // writer; accept lone BMP escapes only.
                            match char::from_u32(cp) {
                                Some(c) => s.push(c),
                                None => return Err(format!("invalid \\u escape {cp:#x}")),
                            }
                            continue;
                        }
                        other => {
                            return Err(format!("invalid escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so bytes
                    // are valid UTF-8; find the char at this byte offset).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = text.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex =
            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|e| e.to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_document() {
        let doc = Json::parse(r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": true, "d": null}"#)
            .expect("valid");
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(doc.get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("d"), Some(&Json::Null));
    }

    #[test]
    fn round_trips_nested_values() {
        let value = Json::Obj(vec![
            ("s".into(), Json::Str("quote \" backslash \\ tab\t".into())),
            ("n".into(), Json::Num(12345.0)),
            ("f".into(), Json::Num(0.125)),
            (
                "a".into(),
                Json::Arr(vec![Json::Null, Json::Bool(false), Json::Num(7.0)]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = value.to_string_pretty();
        let parsed = Json::parse(&text).expect("own output parses");
        assert_eq!(parsed, value);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, ]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nope").is_err());
    }
}

//! Tests for the measurement harness itself (ISSUE 2 satellite): prefill
//! exactness, op-stream determinism, histogram merge fidelity, and JSON
//! schema round-tripping.

use std::sync::Arc;

use cds_bench::json::Json;
use cds_bench::report::{
    validate_coverage, validate_e10_backends, validate_e11_resize, validate_e12_contention,
    validate_e13_executor, validate_e14_channel, validate_schema, TelemetryRecord, ALL_EXPERIMENTS,
    E12_IMPLS, E13_WORKLOADS, E14_WORKLOADS,
};
use cds_bench::{
    prefill_map, prefill_pq, prefill_set, set_run, LatencyHistogram, MixedOp, OpStream, Report,
    RunStats, Sample, Warmup, Workload,
};
use cds_core::{ConcurrentMap, ConcurrentPriorityQueue, ConcurrentSet};

fn workload(key_range: u64, prefill: usize) -> Workload {
    Workload {
        threads: 1,
        ops_per_thread: 0,
        key_range,
        read_pct: 50,
        insert_pct: 25,
        prefill,
    }
}

#[test]
fn prefill_inserts_exactly_min_of_prefill_and_key_range() {
    // prefill < key_range: exactly `prefill` distinct keys.
    let set = cds_list::LazyList::new();
    let inserted = prefill_set(&set, &workload(64, 32));
    assert_eq!(inserted, 32);
    assert_eq!(set.len(), 32);

    // prefill > key_range: the guard bug used to leave ~1 element here;
    // the clamp must saturate the whole key range instead.
    let set = cds_list::LazyList::new();
    let inserted = prefill_set(&set, &workload(64, 1_000));
    assert_eq!(inserted, 64);
    assert_eq!(set.len(), 64);
    for k in 0..64u64 {
        assert!(set.contains(&k), "key {k} missing after saturating prefill");
    }

    // Same clamp for maps and priority queues.
    let map = cds_map::StripedHashMap::new();
    assert_eq!(prefill_map(&map, &workload(128, 9_999)), 128);
    assert_eq!(map.len(), 128);

    let pq = cds_prio::CoarseBinaryHeap::new();
    assert_eq!(prefill_pq(&pq, &workload(50, 200)), 50);
    assert_eq!(pq.len(), 50);
}

#[test]
fn prefill_is_deterministic() {
    let w = workload(1024, 500);
    let a = cds_list::LazyList::new();
    let b = cds_list::LazyList::new();
    prefill_set(&a, &w);
    prefill_set(&b, &w);
    for k in 0..1024u64 {
        assert_eq!(a.contains(&k), b.contains(&k), "divergent prefill at {k}");
    }
}

#[test]
fn same_seed_produces_identical_per_thread_op_streams() {
    let w = Workload {
        threads: 4,
        ops_per_thread: 0,
        key_range: 512,
        read_pct: 50,
        insert_pct: 25,
        prefill: 0,
    };
    for thread in 0..4u64 {
        let mut a = OpStream::new(1 + thread, &w);
        let mut b = OpStream::new(1 + thread, &w);
        let ops_a: Vec<MixedOp> = (0..10_000).map(|_| a.next_op()).collect();
        let ops_b: Vec<MixedOp> = (0..10_000).map(|_| b.next_op()).collect();
        assert_eq!(ops_a, ops_b, "thread {thread} streams diverged");
    }
    // Different seeds must differ (the streams are per-thread).
    let mut a = OpStream::new(1, &w);
    let mut b = OpStream::new(2, &w);
    let ops_a: Vec<MixedOp> = (0..100).map(|_| a.next_op()).collect();
    let ops_b: Vec<MixedOp> = (0..100).map(|_| b.next_op()).collect();
    assert_ne!(ops_a, ops_b);
}

#[test]
fn op_stream_mix_matches_requested_ratios() {
    let w = Workload {
        threads: 1,
        ops_per_thread: 0,
        key_range: 512,
        read_pct: 90,
        insert_pct: 5,
        prefill: 0,
    };
    let mut s = OpStream::new(7, &w);
    let mut reads = 0usize;
    let mut inserts = 0usize;
    const N: usize = 100_000;
    for _ in 0..N {
        match s.next_op() {
            MixedOp::Read(_) => reads += 1,
            MixedOp::Insert(_) => inserts += 1,
            MixedOp::Remove(_) => {}
        }
    }
    let read_frac = reads as f64 / N as f64;
    let insert_frac = inserts as f64 / N as f64;
    assert!((read_frac - 0.90).abs() < 0.01, "reads {read_frac}");
    assert!((insert_frac - 0.05).abs() < 0.01, "inserts {insert_frac}");
}

#[test]
fn histogram_merge_preserves_count_and_p50() {
    // Known distribution: 1..=10_000 ns uniformly, split across two
    // per-thread histograms (odds and evens).
    let mut a = LatencyHistogram::new();
    let mut b = LatencyHistogram::new();
    for v in 1..=10_000u64 {
        if v % 2 == 1 {
            a.record(v);
        } else {
            b.record(v);
        }
    }
    let mut merged = a.clone();
    merged.merge(&b);
    assert_eq!(merged.count(), a.count() + b.count());
    assert_eq!(merged.count(), 10_000);

    // True median is 5000; the bucket holding it spans 2^12..2^13 in 32
    // sub-buckets (width 128), so the midpoint must land within one
    // bucket width of the exact answer.
    let p50 = merged.percentile(50.0);
    assert!(
        (p50 as i64 - 5_000).abs() <= 128,
        "merged p50 {p50} more than one bucket from 5000"
    );
    // And the merge must agree with a single histogram of the whole
    // distribution, bucket-for-bucket at every probed percentile.
    let mut whole = LatencyHistogram::new();
    for v in 1..=10_000u64 {
        whole.record(v);
    }
    for q in [1.0, 25.0, 50.0, 90.0, 99.0, 99.9] {
        assert_eq!(merged.percentile(q), whole.percentile(q), "q={q}");
    }
}

fn fake_sample(experiment: &str, threads: usize) -> Sample {
    Sample {
        experiment: experiment.to_string(),
        impl_name: "fake-impl".to_string(),
        // E10 samples must carry the reclamation-backend axis (schema v2).
        reclaimer: (experiment == "e10").then(|| "ebr".to_string()),
        threads,
        read_pct: 50,
        insert_pct: 25,
        key_range: 512,
        prefill: 256,
        ops: 10_000,
        mops: 12.345678,
        duration_s: 0.00081,
        warmup_iters: 3,
        p50_ns: 120,
        p90_ns: 310,
        p99_ns: 1_900,
        p999_ns: 22_000,
        // E12–E14 samples must carry a counter record whenever the
        // document says telemetry was enabled (schema v4/v5/v6).
        telemetry: match experiment {
            "e12" => Some(fake_telemetry()),
            "e13" => Some(fake_exec_telemetry()),
            "e14" => Some(fake_chan_telemetry()),
            _ => None,
        },
    }
}

/// A conserved counter record with a nonzero contention signal for both
/// the CAS-based and the lock-based e12 implementations.
fn fake_telemetry() -> TelemetryRecord {
    TelemetryRecord {
        counters: vec![
            ("cas_attempt".to_string(), 100),
            ("cas_success".to_string(), 90),
            ("cas_failure".to_string(), 10),
            ("ttas_acquire".to_string(), 40),
            ("ttas_spin".to_string(), 7),
        ],
    }
}

/// An executor record satisfying the e13 task-conservation invariant
/// (`exec_tasks_spawned == exec_tasks_executed`, both nonzero).
fn fake_exec_telemetry() -> TelemetryRecord {
    TelemetryRecord {
        counters: vec![
            ("exec_tasks_spawned".to_string(), 500),
            ("exec_tasks_executed".to_string(), 500),
            ("exec_steal_hit".to_string(), 3),
            ("exec_steal_miss".to_string(), 11),
            ("exec_parks".to_string(), 2),
        ],
    }
}

/// A channel record satisfying the e14 message-conservation invariant
/// (`chan_sends == chan_recvs + chan_drained_at_drop`, sends nonzero).
fn fake_chan_telemetry() -> TelemetryRecord {
    TelemetryRecord {
        counters: vec![
            ("chan_sends".to_string(), 800),
            ("chan_recvs".to_string(), 793),
            ("chan_drained_at_drop".to_string(), 7),
            ("chan_parks_send".to_string(), 4),
            ("chan_parks_recv".to_string(), 9),
        ],
    }
}

#[test]
fn emitted_json_round_trips_and_validates() {
    let mut report = Report::new("quick", Warmup::quick());
    for id in ALL_EXPERIMENTS {
        report.push(fake_sample(id, 1));
        report.push(fake_sample(id, 8));
    }
    // The e10 sweep must cover every backend (schema v2).
    for backend in ["hazard", "leak", "debug"] {
        report.push(fake_sample("e10", 1).with_reclaimer(backend));
    }
    report.push_extra("e10_hazard_garbage_after_100k_churn", 32.0);
    // The e11 resize sweep must compare both map implementations and
    // record its doubling count (schema v3).
    for name in ["resizing", "striped"] {
        let mut s = fake_sample("e11", 1);
        s.impl_name = name.to_string();
        report.push(s);
    }
    report.push_extra("e11_resizing_doublings", 48.0);
    // The e12 contention sweep must cover its three implementations, and
    // with telemetry_enabled = 1 every e12 sample must carry a conserved
    // counter record (schema v4).
    for name in E12_IMPLS {
        let mut s = fake_sample("e12", 1);
        s.impl_name = name.to_string();
        report.push(s);
    }
    // The e13 executor sweep must cover both workloads, every sample
    // carrying a task-conserving record (schema v5).
    for name in E13_WORKLOADS {
        let mut s = fake_sample("e13", 1);
        s.impl_name = name.to_string();
        report.push(s);
    }
    // The e14 channel sweep must cover both variants, every sample
    // carrying a message-conserving record (schema v6).
    for name in E14_WORKLOADS {
        let mut s = fake_sample("e14", 1);
        s.impl_name = name.to_string();
        report.push(s);
    }
    report.push_extra("telemetry_enabled", 1.0);

    let text = report.to_json().to_string_pretty();
    let doc = Json::parse(&text).expect("emitted JSON must parse");
    let samples = validate_schema(&doc).expect("emitted JSON must satisfy the schema");
    validate_coverage(&samples).expect("all twelve experiments present");
    validate_e10_backends(&samples).expect("all four reclamation backends present");
    validate_e11_resize(&doc, &samples).expect("resize sweep covers both maps and grew");
    validate_e12_contention(&doc, &samples).expect("contention sweep carries its records");
    validate_e13_executor(&doc, &samples).expect("executor sweep conserves tasks");
    validate_e14_channel(&doc, &samples).expect("channel sweep conserves messages");

    // Field-for-field round trip.
    assert_eq!(samples.len(), report.samples.len());
    for (parsed, original) in samples.iter().zip(report.samples.iter()) {
        assert_eq!(parsed, original);
    }
    // Document metadata survives too.
    assert_eq!(doc.get("mode").and_then(Json::as_str), Some("quick"));
    assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(6));
    assert!(doc
        .get("host")
        .and_then(|h| h.get("hardware_threads"))
        .is_some());
    assert_eq!(
        doc.get("seeds")
            .and_then(|s| s.get("prefill"))
            .and_then(Json::as_u64),
        Some(cds_bench::PREFILL_SEED)
    );
    assert_eq!(
        doc.get("extras")
            .and_then(|e| e.get("e10_hazard_garbage_after_100k_churn"))
            .and_then(Json::as_u64),
        Some(32)
    );
}

#[test]
fn schema_validation_rejects_bad_documents() {
    // Missing experiments -> coverage failure.
    let mut report = Report::new("quick", Warmup::quick());
    report.push(fake_sample("e1", 1));
    let doc = Json::parse(&report.to_json().to_string_pretty()).unwrap();
    let samples = validate_schema(&doc).expect("schema itself is fine");
    assert!(validate_coverage(&samples).unwrap_err().contains("e2"));

    // Wrong schema version.
    let doc = Json::parse(r#"{"schema_version": 99}"#).unwrap();
    assert!(validate_schema(&doc).unwrap_err().contains("99"));

    // Empty samples.
    let mut empty = Report::new("quick", Warmup::quick());
    empty.extras.clear();
    let doc = Json::parse(&empty.to_json().to_string_pretty()).unwrap();
    assert!(validate_schema(&doc).unwrap_err().contains("empty"));

    // Non-monotone percentiles.
    let mut bad = Report::new("quick", Warmup::quick());
    let mut s = fake_sample("e1", 1);
    s.p50_ns = 10_000;
    s.p90_ns = 5;
    bad.push(s);
    let doc = Json::parse(&bad.to_json().to_string_pretty()).unwrap();
    assert!(validate_schema(&doc).unwrap_err().contains("monotone"));

    // An e10 sample without its reclamation-backend tag.
    let mut untagged = Report::new("quick", Warmup::quick());
    let mut s = fake_sample("e10", 1);
    s.reclaimer = None;
    untagged.push(s);
    let doc = Json::parse(&untagged.to_json().to_string_pretty()).unwrap();
    assert!(validate_schema(&doc).unwrap_err().contains("reclaimer"));

    // An unknown backend name is rejected outright.
    let mut unknown = Report::new("quick", Warmup::quick());
    unknown.push(fake_sample("e10", 1).with_reclaimer("qsbr"));
    let doc = Json::parse(&unknown.to_json().to_string_pretty()).unwrap();
    assert!(validate_schema(&doc).unwrap_err().contains("qsbr"));

    // A sweep that skipped a backend fails the e10 coverage check.
    let mut partial = Report::new("quick", Warmup::quick());
    for backend in ["ebr", "hazard", "leak"] {
        partial.push(fake_sample("e10", 1).with_reclaimer(backend));
    }
    let doc = Json::parse(&partial.to_json().to_string_pretty()).unwrap();
    let samples = validate_schema(&doc).expect("schema itself is fine");
    assert!(validate_e10_backends(&samples)
        .unwrap_err()
        .contains("debug"));

    // An e11 sweep without the striped baseline fails the resize check.
    let mut resize = Report::new("quick", Warmup::quick());
    let mut s = fake_sample("e11", 1);
    s.impl_name = "resizing".to_string();
    resize.push(s);
    resize.push_extra("e11_resizing_doublings", 48.0);
    let doc = Json::parse(&resize.to_json().to_string_pretty()).unwrap();
    let samples = validate_schema(&doc).expect("schema itself is fine");
    assert!(validate_e11_resize(&doc, &samples)
        .unwrap_err()
        .contains("striped"));

    // A sweep whose resizable map never grew is rejected even with both
    // implementations present.
    let mut s = fake_sample("e11", 1);
    s.impl_name = "striped".to_string();
    resize.push(s);
    resize.extras.clear();
    resize.push_extra("e11_resizing_doublings", 2.0);
    let doc = Json::parse(&resize.to_json().to_string_pretty()).unwrap();
    let samples = validate_schema(&doc).expect("schema itself is fine");
    assert!(validate_e11_resize(&doc, &samples)
        .unwrap_err()
        .contains("never exercised growth"));

    // A telemetry record whose CAS counts do not add up is rejected at
    // the schema layer (conservation holds by construction in cds-obs,
    // so a violation means a corrupted document).
    let mut skewed = Report::new("quick", Warmup::quick());
    let mut t = fake_telemetry();
    t.counters.retain(|(name, _)| name != "cas_failure");
    skewed.push(fake_sample("e1", 1).with_telemetry(t));
    let doc = Json::parse(&skewed.to_json().to_string_pretty()).unwrap();
    assert!(validate_schema(&doc).unwrap_err().contains("not conserved"));

    // A document claiming telemetry_enabled = 1 whose e12 samples carry
    // no records fails the contention check.
    let mut bare = Report::new("quick", Warmup::quick());
    for name in E12_IMPLS {
        let mut s = fake_sample("e12", 1);
        s.impl_name = name.to_string();
        s.telemetry = None;
        bare.push(s);
    }
    bare.push_extra("telemetry_enabled", 1.0);
    let doc = Json::parse(&bare.to_json().to_string_pretty()).unwrap();
    let samples = validate_schema(&doc).expect("schema itself is fine");
    assert!(validate_e12_contention(&doc, &samples)
        .unwrap_err()
        .contains("no telemetry record"));
}

#[test]
fn timed_runs_report_consistent_stats() {
    let w = Workload {
        threads: 2,
        ops_per_thread: 2_000,
        key_range: 256,
        read_pct: 50,
        insert_pct: 25,
        prefill: 4_096, // deliberately over key_range: exercises the clamp
    };
    let stats: RunStats = set_run(Arc::new(cds_list::LazyList::new()), w, Warmup::quick());
    assert_eq!(stats.total_ops, 4_000);
    assert!(stats.mops > 0.0);
    assert!(stats.duration_s > 0.0);
    assert!(stats.warmup_iters >= 1 && stats.warmup_iters <= 2);
    assert!(stats.hist.count() > 0);
    let sample = Sample::from_stats("e4", "lazy", &w, &stats);
    assert!(sample.p50_ns <= sample.p90_ns && sample.p90_ns <= sample.p99_ns);
}

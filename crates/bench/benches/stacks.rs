//! E2 — stack throughput vs threads (50/50 push/pop), with the
//! elimination-parameter ablation.

use std::sync::Arc;

use cds_bench::{stack_run, Warmup, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_stacks");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    const OPS: usize = 20_000;
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("coarse", threads), &threads, |b, &t| {
            b.iter(|| {
                stack_run(
                    Arc::new(cds_stack::CoarseStack::new()),
                    Workload::fifty_fifty(t, OPS / t, 1024),
                    Warmup::none(),
                )
                .mops
            })
        });
        g.bench_with_input(
            BenchmarkId::new("flat_combining", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    stack_run(
                        Arc::new(cds_stack::FcStack::new()),
                        Workload::fifty_fifty(t, OPS / t, 1024),
                        Warmup::none(),
                    )
                    .mops
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("treiber_ebr", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    stack_run(
                        Arc::new(cds_stack::TreiberStack::new()),
                        Workload::fifty_fifty(t, OPS / t, 1024),
                        Warmup::none(),
                    )
                    .mops
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("treiber_hp", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    stack_run(
                        Arc::new(
                            cds_stack::TreiberStack::<u64, cds_reclaim::Hazard>::with_reclaimer(),
                        ),
                        Workload::fifty_fifty(t, OPS / t, 1024),
                        Warmup::none(),
                    )
                    .mops
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("elimination", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    stack_run(
                        Arc::new(cds_stack::EliminationBackoffStack::new()),
                        Workload::fifty_fifty(t, OPS / t, 1024),
                        Warmup::none(),
                    )
                    .mops
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("elimination_1slot", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    stack_run(
                        Arc::new(cds_stack::EliminationBackoffStack::with_params(1, 16)),
                        Workload::fifty_fifty(t, OPS / t, 1024),
                        Warmup::none(),
                    )
                    .mops
                })
            },
        );
    }
    g.finish();
}

fn config() -> Criterion {
    // Plot generation dominates wall-clock on this host; the raw estimates
    // in bench_output.txt are what EXPERIMENTS.md consumes.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);

//! E9 — lock acquisition throughput under contention.

use std::sync::Arc;

use cds_bench::{lock_run, Warmup};
use cds_sync::{ClhLock, Lock, McsLock, RawLock, TasLock, TicketLock, TtasLock};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_raw<L: RawLock + 'static>(
    g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    threads: usize,
    ops: usize,
) {
    g.bench_with_input(BenchmarkId::new(L::NAME, threads), &threads, |b, &t| {
        b.iter(|| {
            let lock = Arc::new(Lock::<L, u64>::new(0));
            lock_run(t, ops / t, Warmup::none(), move || {
                *lock.lock() += 1;
            })
            .mops
        })
    });
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_locks");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    const OPS: usize = 20_000;
    for threads in [1usize, 2, 4] {
        bench_raw::<TasLock>(&mut g, threads, OPS);
        bench_raw::<TtasLock>(&mut g, threads, OPS);
        bench_raw::<TicketLock>(&mut g, threads, OPS);
        bench_raw::<ClhLock>(&mut g, threads, OPS);
        bench_raw::<McsLock>(&mut g, threads, OPS);
        g.bench_with_input(BenchmarkId::new("std_mutex", threads), &threads, |b, &t| {
            b.iter(|| {
                let lock = Arc::new(std::sync::Mutex::new(0u64));
                lock_run(t, OPS / t, Warmup::none(), move || {
                    *lock.lock().unwrap() += 1;
                })
                .mops
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    // Plot generation dominates wall-clock on this host; the raw estimates
    // in bench_output.txt are what EXPERIMENTS.md consumes.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);

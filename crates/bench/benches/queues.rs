//! E3 — queue throughput vs threads (50/50 enqueue/dequeue).

use std::sync::Arc;

use cds_bench::{queue_run, Warmup, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_queues");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    const OPS: usize = 20_000;
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("coarse", threads), &threads, |b, &t| {
            b.iter(|| {
                queue_run(
                    Arc::new(cds_queue::CoarseQueue::new()),
                    Workload::fifty_fifty(t, OPS / t, 1024),
                    Warmup::none(),
                )
                .mops
            })
        });
        g.bench_with_input(
            BenchmarkId::new("flat_combining", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    queue_run(
                        Arc::new(cds_queue::FcQueue::new()),
                        Workload::fifty_fifty(t, OPS / t, 1024),
                        Warmup::none(),
                    )
                    .mops
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("two_lock", threads), &threads, |b, &t| {
            b.iter(|| {
                queue_run(
                    Arc::new(cds_queue::TwoLockQueue::new()),
                    Workload::fifty_fifty(t, OPS / t, 1024),
                    Warmup::none(),
                )
                .mops
            })
        });
        g.bench_with_input(
            BenchmarkId::new("michael_scott", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    queue_run(
                        Arc::new(cds_queue::MsQueue::new()),
                        Workload::fifty_fifty(t, OPS / t, 1024),
                        Warmup::none(),
                    )
                    .mops
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("bounded", threads), &threads, |b, &t| {
            b.iter(|| {
                queue_run(
                    Arc::new(cds_queue::BoundedQueue::with_capacity(1 << 15)),
                    Workload::fifty_fifty(t, OPS / t, 1024),
                    Warmup::none(),
                )
                .mops
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    // Plot generation dominates wall-clock on this host; the raw estimates
    // in bench_output.txt are what EXPERIMENTS.md consumes.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);

//! E8 — priority-queue throughput vs threads (50/50 insert/remove-min).

use std::sync::Arc;

use cds_bench::{pq_run, Warmup, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_priority_queues");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    const OPS: usize = 10_000;
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("coarse_heap", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    pq_run(
                        Arc::new(cds_prio::CoarseBinaryHeap::new()),
                        Workload::pq_default(t, OPS / t),
                        Warmup::none(),
                    )
                    .mops
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("skiplist", threads), &threads, |b, &t| {
            b.iter(|| {
                pq_run(
                    Arc::new(cds_prio::SkipListPriorityQueue::new()),
                    Workload::pq_default(t, OPS / t),
                    Warmup::none(),
                )
                .mops
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    // Plot generation dominates wall-clock on this host; the raw estimates
    // in bench_output.txt are what EXPERIMENTS.md consumes.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);

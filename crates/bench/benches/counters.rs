//! E1 — counter throughput vs threads (increment-only).

use std::sync::Arc;

use cds_bench::{counter_run, Warmup, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_counters");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    const OPS: usize = 20_000;
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("lock", threads), &threads, |b, &t| {
            b.iter(|| {
                counter_run(
                    Arc::new(cds_counter::LockCounter::new()),
                    Workload::ops_only(t, OPS / t),
                    Warmup::none(),
                )
                .mops
            })
        });
        g.bench_with_input(BenchmarkId::new("atomic", threads), &threads, |b, &t| {
            b.iter(|| {
                counter_run(
                    Arc::new(cds_counter::AtomicCounter::new()),
                    Workload::ops_only(t, OPS / t),
                    Warmup::none(),
                )
                .mops
            })
        });
        g.bench_with_input(BenchmarkId::new("sharded", threads), &threads, |b, &t| {
            b.iter(|| {
                counter_run(
                    Arc::new(cds_counter::ShardedCounter::new()),
                    Workload::ops_only(t, OPS / t),
                    Warmup::none(),
                )
                .mops
            })
        });
        g.bench_with_input(BenchmarkId::new("combining", threads), &threads, |b, &t| {
            b.iter(|| {
                counter_run(
                    Arc::new(cds_counter::CombiningTreeCounter::new()),
                    Workload::ops_only(t, OPS / t),
                    Warmup::none(),
                )
                .mops
            })
        });
        g.bench_with_input(
            BenchmarkId::new("flat_combining", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    counter_run(
                        Arc::new(cds_counter::FcCounter::new()),
                        Workload::ops_only(t, OPS / t),
                        Warmup::none(),
                    )
                    .mops
                })
            },
        );
    }
    g.finish();
}

fn config() -> Criterion {
    // Plot generation dominates wall-clock on this host; the raw estimates
    // in bench_output.txt are what EXPERIMENTS.md consumes.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);

//! E10 — reclamation backend comparison on Treiber-stack churn: the same
//! `TreiberStack<u64, R>` instantiated with epoch-based reclamation,
//! hazard pointers, and the leaking baseline.

use std::sync::Arc;

use cds_bench::{stack_run, Warmup, Workload};
use cds_reclaim::{Hazard, Leak};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_reclaim");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    const OPS: usize = 20_000;
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("epoch", threads), &threads, |b, &t| {
            b.iter(|| {
                stack_run(
                    Arc::new(cds_stack::TreiberStack::new()),
                    Workload::fifty_fifty(t, OPS / t, 1024),
                    Warmup::none(),
                )
                .mops
            })
        });
        g.bench_with_input(BenchmarkId::new("hazard", threads), &threads, |b, &t| {
            b.iter(|| {
                stack_run(
                    Arc::new(cds_stack::TreiberStack::<u64, Hazard>::with_reclaimer()),
                    Workload::fifty_fifty(t, OPS / t, 1024),
                    Warmup::none(),
                )
                .mops
            })
        });
        g.bench_with_input(BenchmarkId::new("leak", threads), &threads, |b, &t| {
            b.iter(|| {
                stack_run(
                    Arc::new(cds_stack::TreiberStack::<u64, Leak>::with_reclaimer()),
                    Workload::fifty_fifty(t, OPS / t, 1024),
                    Warmup::none(),
                )
                .mops
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    // Plot generation dominates wall-clock on this host; the raw estimates
    // in bench_output.txt are what EXPERIMENTS.md consumes.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);

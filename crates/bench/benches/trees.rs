//! e7_trees — set throughput across read ratios and threads.

use std::sync::Arc;

use cds_bench::{set_run, Warmup, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_trees");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    const OPS: usize = 6_000;
    for threads in [1usize, 2, 4] {
        for (read_pct, insert_pct) in [(0u8, 50u8), (50, 25), (90, 5)] {
            let w = Workload {
                threads,
                ops_per_thread: OPS / threads,
                key_range: 65536,
                read_pct,
                insert_pct,
                prefill: (65536 / 2) as usize,
            };
            g.bench_with_input(
                BenchmarkId::new("coarse", format!("{threads}thr_{read_pct}r")),
                &w,
                |b, &w| {
                    b.iter(|| set_run(Arc::new(cds_tree::CoarseBst::new()), w, Warmup::none()).mops)
                },
            );
            g.bench_with_input(
                BenchmarkId::new("fine", format!("{threads}thr_{read_pct}r")),
                &w,
                |b, &w| {
                    b.iter(|| set_run(Arc::new(cds_tree::FineBst::new()), w, Warmup::none()).mops)
                },
            );
            g.bench_with_input(
                BenchmarkId::new("ellen", format!("{threads}thr_{read_pct}r")),
                &w,
                |b, &w| {
                    b.iter(|| {
                        set_run(Arc::new(cds_tree::LockFreeBst::new()), w, Warmup::none()).mops
                    })
                },
            );
        }
    }
    g.finish();
}

fn config() -> Criterion {
    // Plot generation dominates wall-clock on this host; the raw estimates
    // in bench_output.txt are what EXPERIMENTS.md consumes.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);

//! Blocking MPMC channels composed from the `cds` structure zoo — the
//! coordination layer real services sit on top of, built from parts the
//! repository already audits: [`cds_queue::BoundedQueue`] (Vyukov ring)
//! or [`cds_queue::MsQueue`] (Michael–Scott, generic over the
//! reclamation backend) as the buffer, and the [`cds_sync::Parker`]
//! eventcount — the same prepare / re-check / commit protocol the
//! work-stealing executor parks on — for blocking `send`/`recv`.
//!
//! # Close protocol (two-phase)
//!
//! [`Channel::close`] is a `swap` on the closed flag followed by an
//! unconditional wake of every parked sender, receiver, and select
//! waiter. After close:
//!
//! * senders observe `closed` inside their send window and get
//!   [`SendError::Disconnected`] with the message handed back;
//! * receivers **drain** residual messages first and only then see
//!   [`RecvError::Closed`] — close never strands a delivered message.
//!
//! The subtle race is a sender that read `closed == false` and is about
//! to publish while a receiver concurrently finds the buffer empty and
//! the flag set: returning `Closed` there would strand the in-flight
//! message (the send already returned `Ok`). The channel closes the
//! window with an **in-flight window counter**: a sender increments
//! `inflight` (`SeqCst`), *then* checks the flag, publishes, and
//! decrements; a receiver may report `Closed` only after it observes, in
//! order, an empty buffer, the closed flag, `inflight == 0`, and — the
//! step the planted regression removes — **one final dequeue** that is
//! still empty. While `inflight != 0` the receiver *spins* (each
//! sender's window is a handful of instructions with no parking) rather
//! than report `Empty`: a receive that has seen the closed flag must
//! answer `Received` or `Closed`, since `Empty` after `close` has
//! returned admits no linearization. In the `SeqCst` total order,
//! `inflight == 0` means every sender either completed its publish
//! (visible to the final dequeue) or will increment later and then see
//! the flag, so no interleaving lets `Ok`-sent data vanish.
//!
//! # Wait/wake pairing
//!
//! Every blocking path follows the eventcount discipline: `prepare`
//! (announce + draw ticket), re-run the failed operation as the
//! re-check, then commit-park. Every wake path makes its state change
//! visible, issues a `SeqCst` fence, and unparks — see
//! [`cds_sync::Parker`] for the lost-wakeup argument. Under an active
//! stress scheduler parked threads spin through tagged yield points, so
//! the PCT and exploration schedulers drive park/wake decisions
//! deterministically.
//!
//! # Select
//!
//! [`Select`] blocks on a fixed set of channels. Registration is a
//! per-channel waiter list; a sender that publishes a message elects at
//! most one select waiter by CASing its `committed` slot from `OPEN` to
//! the channel's index in that waiter's set and waking exactly the
//! winner (the single-winner commit rule). A woken — or spuriously
//! committed — waiter always re-polls before trusting the commit, so a
//! message stolen by a direct `recv` in the meantime just re-parks the
//! select.
//!
//! # Example
//!
//! ```
//! use std::thread;
//!
//! let ch = cds_chan::bounded::<u32>(4);
//! let tx = ch.clone();
//! let producer = thread::spawn(move || {
//!     for i in 0..100 {
//!         tx.send(i).unwrap();
//!     }
//!     tx.close();
//! });
//! let mut sum = 0u32;
//! while let Ok(v) = ch.recv() {
//!     sum += v;
//! }
//! producer.join().unwrap();
//! assert_eq!(sum, (0..100).sum());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use cds_atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cds_core::stress;
use cds_core::ConcurrentQueue;
use cds_obs::Event;
use cds_queue::{BoundedQueue, MsQueue};
use cds_reclaim::{Ebr, Reclaimer};
use cds_sync::Parker;

/// Planted wake-before-publish regression for the exploration suite:
/// when set, a receiver that saw (empty, closed, `inflight == 0`) trusts
/// the close wake and skips the final drain dequeue — re-introducing the
/// race the close protocol exists to prevent. `tests/explore.rs` turns
/// this on to prove the harness finds, shrinks, and replays the bug.
#[cfg(feature = "stress")]
static CLOSE_SKIPS_FINAL_DRAIN: AtomicBool = AtomicBool::new(false);

/// Enables/disables the planted close-path regression; returns the
/// previous setting. Test-only: library `cfg(test)` items are invisible
/// to integration tests, hence the hidden public toggle.
#[cfg(feature = "stress")]
#[doc(hidden)]
pub fn set_close_skips_final_drain(on: bool) -> bool {
    CLOSE_SKIPS_FINAL_DRAIN.swap(on, Ordering::SeqCst)
}

#[inline]
fn close_skips_final_drain() -> bool {
    #[cfg(feature = "stress")]
    {
        CLOSE_SKIPS_FINAL_DRAIN.load(Ordering::SeqCst)
    }
    #[cfg(not(feature = "stress"))]
    {
        false
    }
}

/// Error returned by [`Channel::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError<T> {
    /// The channel was closed; the unsent message is handed back.
    Disconnected(T),
}

/// Error returned by [`Channel::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// A bounded channel is at capacity; the message is handed back.
    Full(T),
    /// The channel was closed; the message is handed back.
    Disconnected(T),
}

/// Error returned by [`Channel::send_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The timeout elapsed with the channel still full.
    Timeout(T),
    /// The channel was closed; the message is handed back.
    Disconnected(T),
}

/// Error returned by [`Channel::recv`] and [`Select::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The channel is closed **and** fully drained; no message will ever
    /// arrive again.
    Closed,
}

/// Error returned by [`Channel::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now, but the channel is still open
    /// (or a sender is mid-publish).
    Empty,
    /// The channel is closed and fully drained.
    Closed,
}

/// Error returned by [`Channel::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// The channel is closed and fully drained.
    Closed,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a closed channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on a closed and drained channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}

/// The buffer behind a channel: a Vyukov ring for [`bounded`] channels,
/// a Michael–Scott queue (generic over the reclamation backend) for
/// [`unbounded`] ones.
// The size gap (the ring's cache-padded cursors vs two pointers) is
// irrelevant here: exactly one `Buffer` exists per channel, inside the
// shared `Arc`, and boxing the ring would put an extra indirection on
// the bounded hot path.
#[allow(clippy::large_enum_variant)]
enum Buffer<T: Send + 'static, R: Reclaimer> {
    Bounded(BoundedQueue<T>),
    Unbounded(MsQueue<T, R>),
}

impl<T: Send + 'static, R: Reclaimer> Buffer<T, R> {
    fn try_enqueue(&self, value: T) -> Result<(), T> {
        match self {
            Buffer::Bounded(q) => q.try_enqueue(value),
            Buffer::Unbounded(q) => {
                q.enqueue(value);
                Ok(())
            }
        }
    }

    fn try_dequeue(&self) -> Option<T> {
        match self {
            Buffer::Bounded(q) => q.try_dequeue(),
            Buffer::Unbounded(q) => q.dequeue(),
        }
    }

    fn capacity(&self) -> Option<usize> {
        match self {
            Buffer::Bounded(q) => Some(q.capacity()),
            Buffer::Unbounded(_) => None,
        }
    }

    fn len(&self) -> usize {
        match self {
            Buffer::Bounded(q) => q.len(),
            // The Michael-Scott queue keeps no count; emptiness is all it
            // can answer. Channels report 0/1 as a hint only.
            Buffer::Unbounded(q) => usize::from(!q.is_empty()),
        }
    }
}

/// A registered select waiter: `committed` is [`SELECT_OPEN`] while the
/// waiter is up for election; a publishing sender CASes it to the
/// channel's index in the waiter's set and wakes the parker.
struct SelectWaiter {
    committed: AtomicUsize,
    parker: Parker,
}

const SELECT_OPEN: usize = usize::MAX;

struct Inner<T: Send + 'static, R: Reclaimer> {
    buffer: Buffer<T, R>,
    closed: AtomicBool,
    /// Senders inside their check-flag-then-publish window; the receiver
    /// side of the close protocol (see the crate docs) may only report
    /// `Closed` after observing this at zero.
    inflight: AtomicUsize,
    /// Model counters for conservation checks: every successful send /
    /// receive, independent of the telemetry feature.
    sent: AtomicU64,
    received: AtomicU64,
    /// Eventcount bounded senders park on when the ring is full.
    send_parker: Parker,
    /// Eventcount receivers park on when the buffer is empty.
    recv_parker: Parker,
    /// Fast-path guard for [`Inner::notify_select`]: number of
    /// registered select waiters (tracked outside the mutex so senders
    /// skip it entirely when no select is pending).
    select_count: AtomicUsize,
    /// Registered select waiters, each tagged with this channel's index
    /// in that waiter's channel set.
    select_waiters: Mutex<Vec<(usize, Arc<SelectWaiter>)>>,
}

impl<T: Send + 'static, R: Reclaimer> Inner<T, R> {
    /// One non-blocking send attempt under the in-flight window
    /// protocol; the building block for every send variant.
    fn try_send_inner(&self, value: T) -> Result<(), TrySendError<T>> {
        self.inflight.fetch_add(1, Ordering::SeqCst);
        stress::yield_point();
        if self.closed.load(Ordering::SeqCst) {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            return Err(TrySendError::Disconnected(value));
        }
        stress::yield_point();
        match self.buffer.try_enqueue(value) {
            Ok(()) => {
                self.sent.fetch_add(1, Ordering::SeqCst);
                cds_obs::count(Event::ChanSends);
                self.inflight.fetch_sub(1, Ordering::SeqCst);
                stress::yield_point();
                // Publish-then-wake: the fence pairs with a preparing
                // receiver's waiter increment (see Parker::prepare).
                fence(Ordering::SeqCst);
                self.recv_parker.unpark_all();
                self.notify_select();
                Ok(())
            }
            Err(value) => {
                self.inflight.fetch_sub(1, Ordering::SeqCst);
                Err(TrySendError::Full(value))
            }
        }
    }

    /// One non-blocking receive attempt, including the closed-path final
    /// drain; the building block for every recv variant (and for
    /// [`Select`]).
    ///
    /// `Empty` is only ever returned while the channel is observably
    /// *open*: once this attempt has seen `closed`, reporting `Empty`
    /// would not be linearizable (a `try_recv` that starts after
    /// `close` returned must answer `Received` or `Closed`). So when
    /// senders are still in flight we spin — their critical section is
    /// a handful of instructions with no parking, so the wait is
    /// bounded — until each has either published its message or
    /// observed the closed flag, and only then run the final drain.
    fn try_recv_inner(&self) -> Result<T, TryRecvError> {
        loop {
            if let Some(v) = self.buffer.try_dequeue() {
                self.on_received();
                return Ok(v);
            }
            stress::yield_point();
            if !self.closed.load(Ordering::SeqCst) {
                return Err(TryRecvError::Empty);
            }
            stress::yield_point();
            if self.inflight.load(Ordering::SeqCst) != 0 {
                // A sender is mid-publish; it will either complete
                // (making its message visible to the retried dequeue)
                // or observe the closed flag and back out. Not over.
                // `Blocked`: re-running this loop before the sender
                // moves is a pure recheck (an empty-buffer dequeue
                // mutates nothing), so the systematic explorer may
                // park us until another thread steps.
                stress::yield_point_tagged(stress::YieldTag::Blocked(
                    &self.inflight as *const AtomicUsize as usize,
                ));
                std::hint::spin_loop();
                continue;
            }
            if close_skips_final_drain() {
                // Planted bug: trusting (empty, closed, inflight == 0)
                // without the final dequeue loses a message published
                // between the first dequeue and the inflight read.
                return Err(TryRecvError::Closed);
            }
            stress::yield_point();
            return match self.buffer.try_dequeue() {
                Some(v) => {
                    self.on_received();
                    Ok(v)
                }
                None => Err(TryRecvError::Closed),
            };
        }
    }

    /// Bookkeeping + sender wake after a successful dequeue.
    fn on_received(&self) {
        self.received.fetch_add(1, Ordering::SeqCst);
        cds_obs::count(Event::ChanRecvs);
        stress::yield_point();
        // A freed ring slot must be visible before a parked bounded
        // sender is woken (same fence/waiter pairing as the send side).
        fence(Ordering::SeqCst);
        self.send_parker.unpark_all();
    }

    /// Elect and wake at most one registered select waiter (the
    /// single-winner commit rule): first CAS from `OPEN` wins.
    fn notify_select(&self) {
        if self.select_count.load(Ordering::SeqCst) == 0 {
            return;
        }
        let waiters = self
            .select_waiters
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        for (chan_idx, w) in waiters.iter() {
            if w.committed
                .compare_exchange(SELECT_OPEN, *chan_idx, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                cds_obs::count(Event::ChanSelectWins);
                w.parker.force_unpark_all();
                return;
            }
        }
    }

    /// Close-path wake of every registered select waiter, committed or
    /// not — they re-poll and observe the closed flag themselves.
    fn wake_all_select(&self) {
        if self.select_count.load(Ordering::SeqCst) == 0 {
            return;
        }
        let waiters = self
            .select_waiters
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        for (_, w) in waiters.iter() {
            w.parker.force_unpark_all();
        }
    }
}

impl<T: Send + 'static, R: Reclaimer> Drop for Inner<T, R> {
    fn drop(&mut self) {
        // Count residual messages before the underlying queue's own Drop
        // walks them: `sends == recvs + drained_at_drop` is the
        // conservation invariant the telemetry suite checks.
        let mut drained = 0u64;
        while let Some(v) = self.buffer.try_dequeue() {
            drop(v);
            drained += 1;
        }
        if drained > 0 {
            cds_obs::add(Event::ChanDrainedAtDrop, drained);
        }
    }
}

/// An MPMC channel handle; clones share one channel (clone freely for
/// producers and consumers — there is no sender/receiver split, any
/// handle may do either). See the crate docs for the close protocol and
/// the wait/wake pairing.
pub struct Channel<T: Send + 'static, R: Reclaimer = Ebr> {
    inner: Arc<Inner<T, R>>,
}

/// Creates a bounded MPMC channel on the default ([`Ebr`]) backend.
///
/// Capacity is rounded up to a power of two of at least 2 (the
/// [`BoundedQueue`] contract). `send` blocks while the ring is full.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn bounded<T: Send + 'static>(capacity: usize) -> Channel<T, Ebr> {
    Channel::bounded_with_reclaimer(capacity)
}

/// Creates an unbounded MPMC channel on the default ([`Ebr`]) backend;
/// `send` never blocks (only `recv` parks).
pub fn unbounded<T: Send + 'static>() -> Channel<T, Ebr> {
    Channel::unbounded_with_reclaimer()
}

impl<T: Send + 'static, R: Reclaimer> Channel<T, R> {
    fn from_buffer(buffer: Buffer<T, R>) -> Self {
        Channel {
            inner: Arc::new(Inner {
                buffer,
                closed: AtomicBool::new(false),
                inflight: AtomicUsize::new(0),
                sent: AtomicU64::new(0),
                received: AtomicU64::new(0),
                send_parker: Parker::new(),
                recv_parker: Parker::new(),
                select_count: AtomicUsize::new(0),
                select_waiters: Mutex::new(Vec::new()),
            }),
        }
    }

    /// [`bounded`], but on the reclamation backend `R` (only the
    /// unbounded buffer allocates reclaimed nodes; the parameter exists
    /// so one application-wide backend choice covers both flavors).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded_with_reclaimer(capacity: usize) -> Self {
        Channel::from_buffer(Buffer::Bounded(BoundedQueue::with_capacity(capacity)))
    }

    /// [`unbounded`], but on the reclamation backend `R`.
    pub fn unbounded_with_reclaimer() -> Self {
        Channel::from_buffer(Buffer::Unbounded(MsQueue::with_reclaimer()))
    }

    /// Sends a message, parking while a bounded channel is full.
    /// Unbounded sends never block. Returns the message if the channel
    /// is (or becomes) closed.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        stress::yield_point();
        let mut value = value;
        loop {
            match self.inner.try_send_inner(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(v)) => return Err(SendError::Disconnected(v)),
                Err(TrySendError::Full(v)) => {
                    let ticket = self.inner.send_parker.prepare();
                    // Re-run the op as the re-check: either it succeeds
                    // now, or no slot freed since prepare and we park.
                    match self.inner.try_send_inner(v) {
                        Ok(()) => {
                            self.inner.send_parker.cancel();
                            return Ok(());
                        }
                        Err(TrySendError::Disconnected(v)) => {
                            self.inner.send_parker.cancel();
                            return Err(SendError::Disconnected(v));
                        }
                        Err(TrySendError::Full(v)) => {
                            cds_obs::count(Event::ChanParksSend);
                            self.inner.send_parker.park(ticket);
                            value = v;
                        }
                    }
                }
            }
        }
    }

    /// Non-blocking send: fails with [`TrySendError::Full`] instead of
    /// parking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        stress::yield_point();
        let res = self.inner.try_send_inner(value);
        if res.is_err() {
            cds_obs::count(Event::ChanTrySendFail);
        }
        res
    }

    /// [`send`](Self::send) with a deadline: gives up (returning the
    /// message) once `timeout` elapses with the channel still full.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        stress::yield_point();
        let deadline = Instant::now() + timeout;
        let mut value = value;
        loop {
            match self.inner.try_send_inner(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(v)) => {
                    return Err(SendTimeoutError::Disconnected(v))
                }
                Err(TrySendError::Full(v)) => {
                    let ticket = self.inner.send_parker.prepare();
                    match self.inner.try_send_inner(v) {
                        Ok(()) => {
                            self.inner.send_parker.cancel();
                            return Ok(());
                        }
                        Err(TrySendError::Disconnected(v)) => {
                            self.inner.send_parker.cancel();
                            return Err(SendTimeoutError::Disconnected(v));
                        }
                        Err(TrySendError::Full(v)) => {
                            let now = Instant::now();
                            if now >= deadline {
                                self.inner.send_parker.cancel();
                                return Err(SendTimeoutError::Timeout(v));
                            }
                            cds_obs::count(Event::ChanParksSend);
                            self.inner.send_parker.park_timeout(ticket, deadline - now);
                            value = v;
                        }
                    }
                }
            }
        }
    }

    /// Receives a message, parking while the channel is open and empty.
    /// Returns [`RecvError::Closed`] only once the channel is closed
    /// **and** drained — residual messages are always delivered first.
    pub fn recv(&self) -> Result<T, RecvError> {
        stress::yield_point();
        loop {
            match self.inner.try_recv_inner() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Closed) => return Err(RecvError::Closed),
                Err(TryRecvError::Empty) => {
                    let ticket = self.inner.recv_parker.prepare();
                    match self.inner.try_recv_inner() {
                        Ok(v) => {
                            self.inner.recv_parker.cancel();
                            return Ok(v);
                        }
                        Err(TryRecvError::Closed) => {
                            self.inner.recv_parker.cancel();
                            return Err(RecvError::Closed);
                        }
                        Err(TryRecvError::Empty) => {
                            cds_obs::count(Event::ChanParksRecv);
                            self.inner.recv_parker.park(ticket);
                        }
                    }
                }
            }
        }
    }

    /// Non-blocking receive: reports [`TryRecvError::Empty`] instead of
    /// parking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        stress::yield_point();
        let res = self.inner.try_recv_inner();
        if matches!(res, Err(TryRecvError::Empty)) {
            cds_obs::count(Event::ChanTryRecvEmpty);
        }
        res
    }

    /// [`recv`](Self::recv) with a deadline: gives up once `timeout`
    /// elapses with no message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        stress::yield_point();
        let deadline = Instant::now() + timeout;
        loop {
            match self.inner.try_recv_inner() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Closed) => return Err(RecvTimeoutError::Closed),
                Err(TryRecvError::Empty) => {
                    let ticket = self.inner.recv_parker.prepare();
                    match self.inner.try_recv_inner() {
                        Ok(v) => {
                            self.inner.recv_parker.cancel();
                            return Ok(v);
                        }
                        Err(TryRecvError::Closed) => {
                            self.inner.recv_parker.cancel();
                            return Err(RecvTimeoutError::Closed);
                        }
                        Err(TryRecvError::Empty) => {
                            let now = Instant::now();
                            if now >= deadline {
                                self.inner.recv_parker.cancel();
                                return Err(RecvTimeoutError::Timeout);
                            }
                            cds_obs::count(Event::ChanParksRecv);
                            self.inner.recv_parker.park_timeout(ticket, deadline - now);
                        }
                    }
                }
            }
        }
    }

    /// Closes the channel (idempotent; returns whether this call did the
    /// transition) and wakes **every** parked sender, receiver, and
    /// select waiter unconditionally — the force-wake plus each waiter's
    /// own re-check is what makes the "all parked threads woken"
    /// guarantee schedule-independent.
    pub fn close(&self) -> bool {
        stress::yield_point();
        let was = self.inner.closed.swap(true, Ordering::SeqCst);
        stress::yield_point();
        self.inner.send_parker.force_unpark_all();
        self.inner.recv_parker.force_unpark_all();
        self.inner.wake_all_select();
        if !was {
            cds_obs::count(Event::ChanCloses);
        }
        !was
    }

    /// Whether [`close`](Self::close) has happened. A `false` is stale
    /// by the time you act on it; receivers should just call
    /// [`recv`](Self::recv) and match on [`RecvError::Closed`].
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::SeqCst)
    }

    /// Buffer capacity: `Some` for bounded channels, `None` for
    /// unbounded ones.
    pub fn capacity(&self) -> Option<usize> {
        self.inner.buffer.capacity()
    }

    /// Racy snapshot of the number of buffered messages (for unbounded
    /// channels just 0 or 1 as an emptiness hint). Diagnostics only.
    pub fn len(&self) -> usize {
        self.inner.buffer.len()
    }

    /// Racy emptiness snapshot; same caveats as [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Model count of successful sends (independent of the telemetry
    /// feature); with [`received`](Self::received) and the
    /// `chan_drained_at_drop` counter this witnesses message
    /// conservation in the property suite.
    pub fn sent(&self) -> u64 {
        self.inner.sent.load(Ordering::SeqCst)
    }

    /// Model count of successful receives; see [`sent`](Self::sent).
    pub fn received(&self) -> u64 {
        self.inner.received.load(Ordering::SeqCst)
    }
}

impl<T: Send + 'static, R: Reclaimer> Clone for Channel<T, R> {
    fn clone(&self) -> Self {
        Channel {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + 'static, R: Reclaimer> fmt::Debug for Channel<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Channel")
            .field("capacity", &self.capacity())
            .field("closed", &self.is_closed())
            .field("sent", &self.sent())
            .field("received", &self.received())
            .finish()
    }
}

/// Blocking receive over a fixed set of channels (all of one message
/// type and backend). See the crate docs for the single-winner commit
/// rule.
///
/// The waiter registers with every channel on first block and stays
/// registered until dropped, so a `Select` is cheap to call in a loop.
pub struct Select<'a, T: Send + 'static, R: Reclaimer = Ebr> {
    channels: Vec<&'a Channel<T, R>>,
    waiter: Arc<SelectWaiter>,
    registered: bool,
}

impl<'a, T: Send + 'static, R: Reclaimer> Select<'a, T, R> {
    /// A select over `channels` (their order defines the index returned
    /// by [`recv`](Self::recv) and the poll priority).
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty.
    pub fn new(channels: &[&'a Channel<T, R>]) -> Self {
        assert!(!channels.is_empty(), "select over no channels");
        Select {
            channels: channels.to_vec(),
            waiter: Arc::new(SelectWaiter {
                committed: AtomicUsize::new(SELECT_OPEN),
                parker: Parker::new(),
            }),
            registered: false,
        }
    }

    /// Non-blocking poll in channel order; `None` if no channel has a
    /// message ready.
    pub fn try_recv(&self) -> Option<(usize, T)> {
        for (i, ch) in self.channels.iter().enumerate() {
            if let Ok(v) = ch.inner.try_recv_inner() {
                return Some((i, v));
            }
        }
        None
    }

    /// Blocks until some channel delivers a message (returning its index
    /// and the message) or **all** channels are closed and drained.
    pub fn recv(&mut self) -> Result<(usize, T), RecvError> {
        stress::yield_point();
        loop {
            match self.poll() {
                Poll::Ready(i, v) => return Ok((i, v)),
                Poll::AllClosed => return Err(RecvError::Closed),
                Poll::Pending => {}
            }
            self.ensure_registered();
            // Re-open our commit slot, then prepare-park; the post-prepare
            // re-poll closes the publish/park race exactly as in `recv`.
            self.waiter.committed.store(SELECT_OPEN, Ordering::SeqCst);
            let ticket = self.waiter.parker.prepare();
            match self.poll() {
                Poll::Ready(i, v) => {
                    self.waiter.parker.cancel();
                    return Ok((i, v));
                }
                Poll::AllClosed => {
                    self.waiter.parker.cancel();
                    return Err(RecvError::Closed);
                }
                Poll::Pending => self.waiter.parker.park(ticket),
            }
        }
    }

    /// One pass over the channel set.
    fn poll(&self) -> Poll<T> {
        let mut all_closed = true;
        for (i, ch) in self.channels.iter().enumerate() {
            match ch.inner.try_recv_inner() {
                Ok(v) => return Poll::Ready(i, v),
                Err(TryRecvError::Closed) => {}
                Err(TryRecvError::Empty) => all_closed = false,
            }
        }
        if all_closed {
            Poll::AllClosed
        } else {
            Poll::Pending
        }
    }

    /// First-block registration with every channel. The `SeqCst`
    /// count increment (under the registry lock) pairs with the fence a
    /// sender issues between publishing and reading the count: either
    /// the sender sees us registered, or our next poll sees its message.
    fn ensure_registered(&mut self) {
        if self.registered {
            return;
        }
        for (i, ch) in self.channels.iter().enumerate() {
            let mut waiters = ch
                .inner
                .select_waiters
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            waiters.push((i, Arc::clone(&self.waiter)));
            ch.inner.select_count.fetch_add(1, Ordering::SeqCst);
        }
        fence(Ordering::SeqCst);
        self.registered = true;
    }
}

enum Poll<T> {
    Ready(usize, T),
    AllClosed,
    Pending,
}

impl<T: Send + 'static, R: Reclaimer> Drop for Select<'_, T, R> {
    fn drop(&mut self) {
        if !self.registered {
            return;
        }
        for ch in &self.channels {
            let mut waiters = ch
                .inner
                .select_waiters
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            let before = waiters.len();
            waiters.retain(|(_, w)| !Arc::ptr_eq(w, &self.waiter));
            let removed = before - waiters.len();
            if removed > 0 {
                ch.inner.select_count.fetch_sub(removed, Ordering::SeqCst);
            }
        }
    }
}

impl<T: Send + 'static, R: Reclaimer> fmt::Debug for Select<'_, T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Select")
            .field("channels", &self.channels.len())
            .field("registered", &self.registered)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_round_trip() {
        let ch = bounded::<u32>(4);
        ch.send(1).unwrap();
        ch.send(2).unwrap();
        assert_eq!(ch.recv(), Ok(1));
        assert_eq!(ch.recv(), Ok(2));
        assert_eq!(ch.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn unbounded_round_trip() {
        let ch = unbounded::<u32>();
        for i in 0..100 {
            ch.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(ch.recv(), Ok(i));
        }
    }

    #[test]
    fn bounded_try_send_full() {
        let ch = bounded::<u32>(2);
        ch.try_send(1).unwrap();
        ch.try_send(2).unwrap();
        assert_eq!(ch.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(ch.recv(), Ok(1));
        ch.try_send(3).unwrap();
    }

    #[test]
    fn close_disconnects_senders_and_drains_receivers() {
        let ch = unbounded::<u32>();
        ch.send(1).unwrap();
        ch.send(2).unwrap();
        assert!(ch.close());
        assert!(!ch.close(), "close is idempotent");
        assert_eq!(ch.send(3), Err(SendError::Disconnected(3)));
        // Receivers drain residual messages before seeing Closed.
        assert_eq!(ch.recv(), Ok(1));
        assert_eq!(ch.recv(), Ok(2));
        assert_eq!(ch.recv(), Err(RecvError::Closed));
        assert_eq!(ch.try_recv(), Err(TryRecvError::Closed));
    }

    #[test]
    fn close_wakes_parked_receiver() {
        let ch = bounded::<u32>(2);
        let rx = ch.clone();
        let h = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(10));
        ch.close();
        assert_eq!(h.join().unwrap(), Err(RecvError::Closed));
    }

    #[test]
    fn close_wakes_parked_sender() {
        let ch = bounded::<u32>(2);
        ch.send(1).unwrap();
        ch.send(2).unwrap();
        let tx = ch.clone();
        let h = thread::spawn(move || tx.send(3));
        thread::sleep(Duration::from_millis(10));
        ch.close();
        assert_eq!(h.join().unwrap(), Err(SendError::Disconnected(3)));
    }

    #[test]
    fn blocking_send_waits_for_space() {
        let ch = bounded::<u32>(2);
        ch.send(1).unwrap();
        ch.send(2).unwrap();
        let tx = ch.clone();
        let h = thread::spawn(move || tx.send(3));
        thread::sleep(Duration::from_millis(10));
        assert_eq!(ch.recv(), Ok(1));
        h.join().unwrap().unwrap();
        assert_eq!(ch.recv(), Ok(2));
        assert_eq!(ch.recv(), Ok(3));
    }

    #[test]
    fn timeouts_expire() {
        let ch = bounded::<u32>(2);
        assert_eq!(
            ch.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        ch.send(1).unwrap();
        ch.send(2).unwrap();
        assert_eq!(
            ch.send_timeout(3, Duration::from_millis(5)),
            Err(SendTimeoutError::Timeout(3))
        );
        assert_eq!(ch.recv_timeout(Duration::from_millis(5)), Ok(1));
    }

    #[test]
    fn mpmc_conservation() {
        let ch = bounded::<u64>(8);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = ch.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = ch.clone();
                thread::spawn(move || {
                    let mut got = 0u64;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        ch.close();
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
        assert_eq!(ch.sent(), 400);
        assert_eq!(ch.received(), 400);
    }

    #[test]
    fn drop_drains_residual() {
        let ch = unbounded::<Box<u32>>();
        ch.send(Box::new(1)).unwrap();
        ch.send(Box::new(2)).unwrap();
        assert_eq!(ch.sent(), 2);
        drop(ch); // Inner::drop drains; leak checkers (and miri-style
                  // Drop walks in the queues) see no residue.
    }

    #[test]
    fn select_polls_in_order() {
        let a = unbounded::<u32>();
        let b = unbounded::<u32>();
        b.send(7).unwrap();
        let mut sel = Select::new(&[&a, &b]);
        assert_eq!(sel.recv(), Ok((1, 7)));
        a.send(3).unwrap();
        assert_eq!(sel.try_recv(), Some((0, 3)));
        assert_eq!(sel.try_recv(), None);
    }

    #[test]
    fn select_wakes_on_send() {
        let a = bounded::<u32>(2);
        let b = bounded::<u32>(2);
        let tx = b.clone();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            tx.send(42).unwrap();
        });
        let mut sel = Select::new(&[&a, &b]);
        assert_eq!(sel.recv(), Ok((1, 42)));
        h.join().unwrap();
    }

    #[test]
    fn select_all_closed() {
        let a = unbounded::<u32>();
        let b = unbounded::<u32>();
        a.send(5).unwrap();
        a.close();
        b.close();
        let mut sel = Select::new(&[&a, &b]);
        // Residual drains through select too, then Closed.
        assert_eq!(sel.recv(), Ok((0, 5)));
        assert_eq!(sel.recv(), Err(RecvError::Closed));
    }

    #[test]
    fn select_close_wakes_parked_waiter() {
        let a = bounded::<u32>(2);
        let b = bounded::<u32>(2);
        let ca = a.clone();
        let cb = b.clone();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            ca.close();
            cb.close();
        });
        let mut sel = Select::new(&[&a, &b]);
        assert_eq!(sel.recv(), Err(RecvError::Closed));
        h.join().unwrap();
    }
}

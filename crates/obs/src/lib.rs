//! Allocation-free contention telemetry for the `cds` family.
//!
//! Synch-style built-in contention accounting (Kallimanis 2021): every
//! structure crate records *why* it is slow — CAS failures, lock spins,
//! elimination hits, combining batch sizes, reclamation garbage depth —
//! through this crate's event counters, and the bench pipeline merges
//! them into per-sample telemetry records.
//!
//! # Design
//!
//! * **Thread-local sharding.** Each thread claims one cache-padded shard
//!   from a fixed static table on first use (a bitmap CAS; no allocation)
//!   and releases it on thread exit. Threads beyond the table size share
//!   an overflow shard — atomic adds keep sums exact either way. Counter
//!   values are never zeroed on release, so a shard handed to a new
//!   thread keeps accumulating and totals stay monotonic.
//! * **Feature-gated to nothing.** Without the `telemetry` feature every
//!   recording function is an empty `#[inline(always)]` body and
//!   [`Snapshot::take`] returns zeros: instrumented call sites compile
//!   away entirely. Call sites whose *argument* is expensive to compute
//!   (e.g. a backlog length behind a mutex) should guard with
//!   [`enabled`], which is a `const fn` the optimizer folds.
//! * **Snapshot merge.** [`Snapshot::take`] folds all shards: [`Kind::Sum`]
//!   events add across shards, [`Kind::Max`] events (high-water marks)
//!   take the maximum. [`Snapshot::delta`] subtracts a baseline for sum
//!   events so a measurement window can be carved out of the cumulative
//!   totals; max events pass through (a high-water mark has no
//!   meaningful difference — use [`reset`] between windows when an
//!   absolute per-window peak is needed).
//!
//! # Example
//!
//! ```
//! use cds_obs::{Event, Snapshot};
//!
//! let base = Snapshot::take();
//! cds_obs::count(Event::CasAttempt);
//! cds_obs::count(Event::CasSuccess);
//! let delta = Snapshot::take().delta(&base);
//! if cds_obs::enabled() {
//!     assert_eq!(delta.get(Event::CasAttempt), 1);
//! }
//! ```

use std::fmt;

/// How an event merges across shards (and across a [`Snapshot::delta`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic totals: summed across shards, subtracted by `delta`.
    Sum,
    /// High-water marks: max across shards, passed through by `delta`.
    Max,
}

macro_rules! events {
    ($($variant:ident => $name:literal, $kind:ident;)*) => {
        /// One countable occurrence class on a hot path.
        ///
        /// The discriminant indexes the per-shard counter array; the
        /// string name is the stable key used in bench JSON and test
        /// output.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Event {
            $($variant,)*
        }

        impl Event {
            /// Number of distinct events (the counter-array length).
            pub const COUNT: usize = [$(Event::$variant,)*].len();

            /// Every event, in discriminant order.
            pub const ALL: [Event; Event::COUNT] = [$(Event::$variant,)*];

            /// Stable snake_case name (bench JSON / test output key).
            pub const fn name(self) -> &'static str {
                match self {
                    $(Event::$variant => $name,)*
                }
            }

            /// How this event merges across shards.
            pub const fn kind(self) -> Kind {
                match self {
                    $(Event::$variant => Kind::$kind,)*
                }
            }
        }
    };
}

events! {
    // --- cds-sync: lock acquisitions and spin iterations per lock type.
    TasAcquire => "tas_acquire", Sum;
    TasSpin => "tas_spin", Sum;
    TtasAcquire => "ttas_acquire", Sum;
    TtasSpin => "ttas_spin", Sum;
    TicketAcquire => "ticket_acquire", Sum;
    TicketSpin => "ticket_spin", Sum;
    McsAcquire => "mcs_acquire", Sum;
    McsSpin => "mcs_spin", Sum;
    ClhAcquire => "clh_acquire", Sum;
    ClhSpin => "clh_spin", Sum;
    RwReadAcquire => "rw_read_acquire", Sum;
    RwWriteAcquire => "rw_write_acquire", Sum;
    RwSpin => "rw_spin", Sum;
    SeqlockRead => "seqlock_read", Sum;
    SeqlockReadRetry => "seqlock_read_retry", Sum;
    SeqlockWrite => "seqlock_write", Sum;
    // One `Backoff::spin`/`snooze` round anywhere in the family.
    BackoffRound => "backoff_round", Sum;

    // --- Lock-free structures: unified CAS accounting plus per-structure
    // retry counters. Every instrumented compare-exchange records exactly
    // one attempt and exactly one outcome, so
    // `cas_success + cas_failure == cas_attempt` always holds.
    CasAttempt => "cas_attempt", Sum;
    CasSuccess => "cas_success", Sum;
    CasFailure => "cas_failure", Sum;
    TreiberRetry => "treiber_retry", Sum;
    MsQueueRetry => "ms_queue_retry", Sum;
    HarrisMichaelRetry => "harris_michael_retry", Sum;
    SkiplistRetry => "skiplist_retry", Sum;
    BstRetry => "bst_retry", Sum;

    // --- Elimination-backoff stack.
    ElimPush => "elim_push", Sum;
    ElimPop => "elim_pop", Sum;
    ElimHitPush => "elim_hit_push", Sum;
    ElimHitPop => "elim_hit_pop", Sum;
    ElimMiss => "elim_miss", Sum;

    // --- Flat combining: combining passes and ops serviced per pass
    // (`fc_ops_combined / fc_combine_rounds` = mean batch size).
    FcCombineRounds => "fc_combine_rounds", Sum;
    FcOpsCombined => "fc_ops_combined", Sum;

    // --- cds-map resizing: cooperative incremental migration. A "batch"
    // is one helping pass (or one migrate-own-bucket call); its size is
    // recorded by the *caller* while each actually-performed move is
    // recorded inside the move itself, so
    // `resize_buckets_moved == resize_batch_ops` cross-checks the two.
    ResizeBatchesHelped => "resize_batches_helped", Sum;
    ResizeBatchOps => "resize_batch_ops", Sum;
    ResizeBucketsMoved => "resize_buckets_moved", Sum;
    ResizePromoterWins => "resize_promoter_wins", Sum;

    // --- cds-reclaim: retired / freed / peak garbage per backend.
    RetiredEbr => "retired_ebr", Sum;
    RetiredHazard => "retired_hazard", Sum;
    RetiredLeak => "retired_leak", Sum;
    RetiredDebug => "retired_debug", Sum;
    FreedEbr => "freed_ebr", Sum;
    FreedHazard => "freed_hazard", Sum;
    FreedDebug => "freed_debug", Sum;
    PeakGarbageEbr => "peak_garbage_ebr", Max;
    PeakGarbageHazard => "peak_garbage_hazard", Max;
    PeakGarbageDebug => "peak_garbage_debug", Max;

    // --- cds-queue: Chase-Lev batch steals. `elems` sums every element
    // moved by a successful `steal_batch_and_pop` (including the popped
    // one); `max` tracks the largest single batch.
    DequeStealBatchElems => "deque_steal_batch_elems", Sum;
    DequeStealBatchMax => "deque_steal_batch_max", Max;

    // --- cds-exec: work-stealing executor. Conservation invariant: at
    // quiesce, `exec_tasks_spawned == exec_tasks_executed` (each task is
    // counted once at submission and once when its closure returns).
    // `steal_hit` counts steals that delivered a task to a worker,
    // `steal_miss` counts probe rounds that came back empty-handed;
    // `parks` counts committed parks (a worker actually went to sleep
    // after the prepare/re-check/commit protocol), and
    // `injector_overflow` counts spawns that fell past the bounded
    // injector into the unbounded overflow queue.
    ExecTasksSpawned => "exec_tasks_spawned", Sum;
    ExecTasksExecuted => "exec_tasks_executed", Sum;
    ExecStealHit => "exec_steal_hit", Sum;
    ExecStealMiss => "exec_steal_miss", Sum;
    ExecParks => "exec_parks", Sum;
    ExecInjectorOverflow => "exec_injector_overflow", Sum;

    // --- cds-chan: blocking MPMC channels. Conservation invariant: once
    // a channel is dropped, `chan_sends == chan_recvs +
    // chan_drained_at_drop` (every successfully sent message is counted
    // once at publication and once when it leaves the channel — through
    // a receiver or through the drop drain). `try_send_fail` /
    // `try_recv_empty` count non-blocking misses (full or
    // closed / empty); `parks_send` and `parks_recv` count committed
    // parks on the respective eventcounts; `closes` counts close() calls
    // that actually transitioned the channel (the swap winner);
    // `select_wins` counts committed select wake-ups (a sender CASed a
    // waiter's slot from OPEN to its receiver index).
    ChanSends => "chan_sends", Sum;
    ChanRecvs => "chan_recvs", Sum;
    ChanDrainedAtDrop => "chan_drained_at_drop", Sum;
    ChanTrySendFail => "chan_try_send_fail", Sum;
    ChanTryRecvEmpty => "chan_try_recv_empty", Sum;
    ChanParksSend => "chan_parks_send", Sum;
    ChanParksRecv => "chan_parks_recv", Sum;
    ChanCloses => "chan_closes", Sum;
    ChanSelectWins => "chan_select_wins", Sum;
}

/// Whether the `telemetry` feature is compiled in.
///
/// `const`, so `if cds_obs::enabled() { ... }` guards fold away in the
/// default build — use one around any recording call whose argument is
/// expensive to compute.
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// Adds `n` to `event`'s counter on the calling thread's shard.
#[inline(always)]
pub fn add(event: Event, n: u64) {
    #[cfg(feature = "telemetry")]
    imp::add(event, n);
    #[cfg(not(feature = "telemetry"))]
    let _ = (event, n);
}

/// Counts one occurrence of `event`.
#[inline(always)]
pub fn count(event: Event) {
    add(event, 1);
}

/// Records one compare-exchange: an attempt plus its outcome.
#[inline(always)]
pub fn cas_outcome(ok: bool) {
    count(Event::CasAttempt);
    count(if ok {
        Event::CasSuccess
    } else {
        Event::CasFailure
    });
}

/// Raises `event`'s high-water mark to at least `value`
/// (for [`Kind::Max`] events).
#[inline(always)]
pub fn record_max(event: Event, value: u64) {
    #[cfg(feature = "telemetry")]
    imp::record_max(event, value);
    #[cfg(not(feature = "telemetry"))]
    let _ = (event, value);
}

/// Resets every counter on every shard to zero.
///
/// Only meaningful while no other thread is recording (tests serialize
/// through the stress scheduler before calling this); a concurrent
/// recorder may land an increment on either side of the sweep.
pub fn reset() {
    #[cfg(feature = "telemetry")]
    imp::reset();
}

/// A merged view of every shard at one moment.
#[derive(Clone, PartialEq, Eq)]
pub struct Snapshot {
    counts: [u64; Event::COUNT],
}

impl Snapshot {
    /// Merges all shards: sums for [`Kind::Sum`] events, max for
    /// [`Kind::Max`] events. All zeros when telemetry is compiled out.
    pub fn take() -> Snapshot {
        #[cfg(feature = "telemetry")]
        {
            imp::take()
        }
        #[cfg(not(feature = "telemetry"))]
        {
            Snapshot {
                counts: [0; Event::COUNT],
            }
        }
    }

    /// The merged value of `event`.
    pub fn get(&self, event: Event) -> u64 {
        self.counts[event as usize]
    }

    /// The window between `base` and `self`: sum events subtract
    /// (saturating, in case `base` was taken after a [`reset`]); max
    /// events pass through unchanged.
    pub fn delta(&self, base: &Snapshot) -> Snapshot {
        let mut counts = [0; Event::COUNT];
        for (i, event) in Event::ALL.iter().enumerate() {
            counts[i] = match event.kind() {
                Kind::Sum => self.counts[i].saturating_sub(base.counts[i]),
                Kind::Max => self.counts[i],
            };
        }
        Snapshot { counts }
    }

    /// Iterates `(event, value)` pairs in discriminant order.
    pub fn iter(&self) -> impl Iterator<Item = (Event, u64)> + '_ {
        Event::ALL.iter().map(move |&e| (e, self.get(e)))
    }
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Snapshot");
        for (event, value) in self.iter() {
            if value != 0 {
                s.field(event.name(), &value);
            }
        }
        s.finish()
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use super::{Event, Kind, Snapshot};
    use cds_atomic::raw::{AtomicU64, Ordering};

    /// Dedicated shards; threads beyond this share the overflow shard.
    const MAX_SHARDS: usize = 128;
    const OVERFLOW: usize = MAX_SHARDS;

    /// One thread's counters, padded out to its own cache lines so two
    /// threads' hot increments never false-share.
    #[repr(align(128))]
    struct Shard {
        counts: [AtomicU64; Event::COUNT],
    }

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY_SHARD: Shard = Shard {
        counts: [ZERO; Event::COUNT],
    };
    static SHARDS: [Shard; MAX_SHARDS + 1] = [EMPTY_SHARD; MAX_SHARDS + 1];

    /// Occupancy bitmap over the dedicated shards.
    static OCCUPIED: [AtomicU64; MAX_SHARDS / 64] = [ZERO; MAX_SHARDS / 64];

    fn claim_slot() -> usize {
        for (w, word) in OCCUPIED.iter().enumerate() {
            loop {
                let bits = word.load(Ordering::Relaxed);
                let free = !bits;
                if free == 0 {
                    break;
                }
                let bit = free.trailing_zeros() as usize;
                if word
                    .compare_exchange(bits, bits | 1 << bit, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    return w * 64 + bit;
                }
            }
        }
        OVERFLOW
    }

    struct Slot(usize);

    impl Drop for Slot {
        fn drop(&mut self) {
            // Release the bitmap bit; the counters keep their values so
            // snapshots stay monotonic across thread churn.
            if self.0 != OVERFLOW {
                OCCUPIED[self.0 / 64].fetch_and(!(1 << (self.0 % 64)), Ordering::Relaxed);
            }
        }
    }

    thread_local! {
        static SLOT: Slot = Slot(claim_slot());
    }

    #[inline]
    fn shard() -> &'static Shard {
        // During thread teardown (a structure dropped from another TLS
        // destructor) the slot may already be gone; fall back to the
        // shared overflow shard rather than losing the event.
        let idx = SLOT.try_with(|s| s.0).unwrap_or(OVERFLOW);
        &SHARDS[idx]
    }

    #[inline]
    pub(super) fn add(event: Event, n: u64) {
        shard().counts[event as usize].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(super) fn record_max(event: Event, value: u64) {
        shard().counts[event as usize].fetch_max(value, Ordering::Relaxed);
    }

    pub(super) fn reset() {
        for shard in SHARDS.iter() {
            for counter in shard.counts.iter() {
                counter.store(0, Ordering::Relaxed);
            }
        }
    }

    pub(super) fn take() -> Snapshot {
        let mut counts = [0u64; Event::COUNT];
        for shard in SHARDS.iter() {
            for (i, counter) in shard.counts.iter().enumerate() {
                let v = counter.load(Ordering::Relaxed);
                match Event::ALL[i].kind() {
                    Kind::Sum => counts[i] += v,
                    Kind::Max => counts[i] = counts[i].max(v),
                }
            }
        }
        Snapshot { counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_match_count() {
        let mut names: Vec<&str> = Event::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), Event::COUNT);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Event::COUNT, "duplicate event name");
    }

    #[test]
    fn counts_merge_into_snapshots() {
        let base = Snapshot::take();
        count(Event::CasAttempt);
        add(Event::FcOpsCombined, 5);
        let delta = Snapshot::take().delta(&base);
        if enabled() {
            assert_eq!(delta.get(Event::CasAttempt), 1);
            assert_eq!(delta.get(Event::FcOpsCombined), 5);
        } else {
            assert_eq!(delta.get(Event::CasAttempt), 0);
        }
    }

    #[test]
    fn cas_outcome_preserves_conservation() {
        let base = Snapshot::take();
        cas_outcome(true);
        cas_outcome(false);
        cas_outcome(true);
        let d = Snapshot::take().delta(&base);
        assert_eq!(
            d.get(Event::CasSuccess) + d.get(Event::CasFailure),
            d.get(Event::CasAttempt)
        );
        if enabled() {
            assert_eq!(d.get(Event::CasAttempt), 3);
        }
    }

    #[test]
    fn max_events_merge_by_maximum() {
        record_max(Event::PeakGarbageEbr, 7);
        record_max(Event::PeakGarbageEbr, 3);
        let snap = Snapshot::take();
        if enabled() {
            assert!(snap.get(Event::PeakGarbageEbr) >= 7);
        }
    }

    #[test]
    fn cross_thread_sums_are_exact() {
        let base = Snapshot::take();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        count(Event::BackoffRound);
                    }
                });
            }
        });
        let d = Snapshot::take().delta(&base);
        if enabled() {
            assert_eq!(d.get(Event::BackoffRound), 4000);
        }
    }
}

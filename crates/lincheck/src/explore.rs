//! Bounded-exhaustive exploration driver: every schedule of a fixed
//! operation window, checked for linearizability.
//!
//! Where [`stress`](crate::stress) samples schedules at random (PCT),
//! this module enumerates them *systematically* via
//! `cds_core::stress::explore`: depth-first over scheduling decisions with
//! sleep-set pruning, so a window of `t` threads × `k` fixed operations is
//! either proven linearizable over **all** explored interleavings or
//! yields a concrete counterexample — deterministically, with no seed.
//!
//! The operation window is fixed per thread (`ops[t]` is the exact
//! sequence slot `t` executes), because exhaustiveness is only meaningful
//! when every execution runs the same operations. Failures carry a
//! [`Trace`] (format v2: the explicit step list; format v3 when
//! weak-memory exploration is on, adding each load's read-from choice)
//! and [`replay_schedule`] re-runs one schedule and returns its recorded
//! history — byte-identical to the original, timestamps included, because
//! execution under the explore scheduler is fully serialized.
//!
//! With [`ExploreOptions::weak_memory`] set, the DFS additionally
//! branches on which store each `Relaxed`/`Acquire` load of a
//! [`cds_atomic`]-instrumented location observes (bounded by
//! [`ExploreOptions::weak_window`]), so ordering bugs — a demoted
//! release, a relaxed publish — become enumerable behaviors instead of
//! rare hardware events. Real-time completion edges are inserted at
//! operation boundaries ([`cds_core::stress::op_boundary`]): a store is
//! guaranteed visible to every operation that *begins* after the storing
//! operation *returned*, matching linearizability's real-time order, so
//! only genuinely concurrent operations exhibit weak behavior.
//!
//! Exploration is a correctness tool: executions are serialized one step
//! at a time, so wall-clock numbers from these runs say nothing about
//! throughput (see EXPERIMENTS.md).

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use cds_core::stress as sched;
use cds_core::stress::explore as exp;
use cds_core::stress::explore::{ExploreBounds, Outcome};

use crate::trace::Trace;
use crate::{check_linearizable, shrink_history, Operation, Recorder, Spec};

/// Configuration of a bounded-exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Per-execution scheduling-decision budget; an execution that
    /// exceeds it is declared stuck (livelock/deadlock backstop).
    pub max_steps: u64,
    /// Total executions budget. Exploration stops (with
    /// [`ExploreReport::exhausted`] `false`) when it is hit — a guard
    /// against windows whose schedule space is larger than intended.
    pub max_executions: u64,
    /// What a stuck execution means for the run as a whole.
    pub on_stuck: OnStuck,
    /// Branch on weak-memory read-from choices for instrumented atomics
    /// (see module docs). Failures carry v3 traces. Default `false`.
    pub weak_memory: bool,
    /// With `weak_memory`: how many per-location trailing stores a load
    /// may observe (1 = SC). Default 4.
    pub weak_window: usize,
    /// With `weak_memory`: panic deterministically when a thread
    /// dereferences a published region ([`cds_atomic::stress::publish_region`])
    /// without having synchronized with its release — catches demoted
    /// publication even when the stale read itself happens through a
    /// plain (non-atomic) field. Default `false`.
    pub detect_races: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_steps: 4096,
            max_executions: 1_000_000,
            on_stuck: OnStuck::Fail,
            weak_memory: false,
            weak_window: 4,
            detect_races: false,
        }
    }
}

/// Policy for executions that hit the step budget or wedge with every
/// thread blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnStuck {
    /// Fail the exploration: for windows of non-blocking operations a
    /// stuck execution is itself a bug (livelock or lost wakeup).
    Fail,
    /// Count it and keep exploring: expected when a *planted* bug can
    /// wedge some schedules while the interesting counterexample lives in
    /// others.
    Continue,
}

/// Coverage statistics of a completed exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreReport {
    /// Complete (non-pruned, non-stuck) executions — the number of
    /// distinct schedules actually checked. This is the count the
    /// `explore-matrix` CI job pins per spec.
    pub schedules: u64,
    /// Executions pruned mid-flight by the sleep set (every enabled
    /// thread provably commutes with an already-explored sibling).
    pub redundant: u64,
    /// Executions aborted by the step budget or a full wedge.
    pub stuck: u64,
    /// Total executions launched (`schedules + redundant + stuck`).
    pub executions: u64,
    /// Whether the DFS ran out of branches (as opposed to hitting
    /// [`ExploreOptions::max_executions`]).
    pub exhausted: bool,
}

/// A failed exploration, carrying a replayable [`Trace`].
pub enum ExploreError<S: Spec> {
    /// A complete execution recorded a non-linearizable window.
    NonLinearizable {
        /// The failing schedule as a v2 (or, weak, v3) trace; feed it to
        /// [`replay_schedule`] to reproduce the identical history.
        trace: Trace,
        /// The full recorded window.
        history: Vec<Operation<S::Op, S::Res>>,
        /// The window minimized by [`shrink_history`].
        minimized: Vec<Operation<S::Op, S::Res>>,
    },
    /// An execution stuck under [`OnStuck::Fail`]; the trace holds the
    /// decisions made before the abort.
    Stuck {
        /// Partial schedule up to the abort.
        trace: Trace,
    },
    /// A worker panicked (assertion failure inside the structure under
    /// test, not a linearizability violation).
    Panicked {
        /// Schedule of the execution that panicked.
        trace: Trace,
        /// The panic payload, stringified.
        message: String,
    },
}

impl<S: Spec> Debug for ExploreError<S>
where
    S::Op: Debug,
    S::Res: Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::NonLinearizable {
                trace,
                history,
                minimized,
            } => f
                .debug_struct("NonLinearizable")
                .field("trace", &format_args!("{trace}"))
                .field("history_len", &history.len())
                .field("minimized", minimized)
                .finish(),
            ExploreError::Stuck { trace } => f
                .debug_struct("Stuck")
                .field("trace", &format_args!("{trace}"))
                .finish(),
            ExploreError::Panicked { trace, message } => f
                .debug_struct("Panicked")
                .field("trace", &format_args!("{trace}"))
                .field("message", message)
                .finish(),
        }
    }
}

/// Why a replayed schedule did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayScheduleError {
    /// The schedule named a thread that was not enabled at that step —
    /// the trace does not match this window.
    Diverged,
    /// The replayed execution hit the step budget.
    Stuck,
    /// A worker panicked; the payload, stringified.
    Panicked(String),
}

impl std::fmt::Display for ReplayScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayScheduleError::Diverged => write!(f, "schedule diverged from this window"),
            ReplayScheduleError::Stuck => write!(f, "replayed execution exceeded the step budget"),
            ReplayScheduleError::Panicked(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for ReplayScheduleError {}

/// Explores every schedule (modulo sleep-set pruning) of the fixed window
/// `ops` against `setup`/`exec`, checking each complete execution's
/// recorded history for linearizability against `spec`.
///
/// * `ops[t]` is the exact operation sequence worker slot `t` runs;
/// * `setup` builds a fresh structure per execution;
/// * `exec` runs one operation against it, in spec terms.
///
/// Returns coverage statistics on success. On the first failing
/// execution, prints the v2 trace to stderr and returns the error. No
/// randomness is involved anywhere: the same window explores the same
/// schedules in the same order on every run.
pub fn explore<S, T, Setup, Exec>(
    spec: S,
    opts: &ExploreOptions,
    ops: &[Vec<S::Op>],
    setup: Setup,
    exec: Exec,
) -> Result<ExploreReport, Box<ExploreError<S>>>
where
    S: Spec,
    S::Op: Clone + Send + Sync + Debug,
    S::Res: Clone + PartialEq + Send + Debug,
    T: Sync,
    Setup: Fn() -> T,
    Exec: Fn(&T, &S::Op) -> S::Res + Sync,
{
    let threads = ops.len();
    let window: usize = ops.iter().map(Vec::len).sum();
    assert!(
        window <= 64,
        "explore window of {window} ops exceeds the checker's 64-op cap"
    );
    let bounds = bounds_of(opts);
    let mut explorer = exp::Explorer::new(threads, bounds);
    loop {
        // `run` owns the installed round; it must outlive the worker scope
        // and is consumed by `finish` to harvest the decisions.
        let run = explorer.begin();
        let (history, panic_msg) = run_window(threads, ops, &setup, &exec);
        let outcome = explorer.finish(run);
        let trace = if opts.weak_memory {
            Trace::V3 {
                threads,
                steps: explorer.last_schedule(),
                reads: explorer.last_reads(),
            }
        } else {
            Trace::V2 {
                threads,
                steps: explorer.last_schedule(),
            }
        };
        if let Some(message) = panic_msg {
            eprintln!("explore: worker panicked ({message}); schedule {trace}");
            return Err(Box::new(ExploreError::Panicked { trace, message }));
        }
        match outcome {
            Outcome::Complete => {
                if !check_linearizable(spec.clone(), &history) {
                    eprintln!("explore: non-linearizable window; replay with `{trace}`");
                    return Err(Box::new(ExploreError::NonLinearizable {
                        trace,
                        minimized: shrink_history(&spec, &history),
                        history,
                    }));
                }
            }
            Outcome::Stuck if opts.on_stuck == OnStuck::Fail => {
                eprintln!("explore: stuck execution; partial schedule `{trace}`");
                return Err(Box::new(ExploreError::Stuck { trace }));
            }
            Outcome::Stuck | Outcome::Redundant => {}
            Outcome::Diverged => panic!(
                "explore: execution diverged from its own plan — the window is \
                 nondeterministic (schedule `{trace}`)"
            ),
        }
        if explorer.executions() >= opts.max_executions {
            return Ok(report(&explorer, false));
        }
        if !explorer.advance() {
            return Ok(report(&explorer, true));
        }
    }
}

fn bounds_of(opts: &ExploreOptions) -> ExploreBounds {
    ExploreBounds {
        max_steps: opts.max_steps,
        weak_memory: opts.weak_memory,
        weak_window: opts.weak_window,
        detect_races: opts.detect_races,
    }
}

fn report(e: &exp::Explorer, exhausted: bool) -> ExploreReport {
    ExploreReport {
        schedules: e.schedules(),
        redundant: e.redundant(),
        stuck: e.stuck(),
        executions: e.executions(),
        exhausted,
    }
}

/// Re-runs one explored schedule against a fresh instance of the window
/// and returns its recorded history.
///
/// Because the explore scheduler serializes execution completely, the
/// returned history is **byte-identical** to the one the original
/// execution recorded — same operations, same results, same logical
/// timestamps — which is what the replay tests assert.
pub fn replay_schedule<T, Op, Res, Setup, Exec>(
    ops: &[Vec<Op>],
    steps: &[usize],
    reads: &[usize],
    opts: &ExploreOptions,
    setup: Setup,
    exec: Exec,
) -> Result<Vec<Operation<Op, Res>>, ReplayScheduleError>
where
    Op: Clone + Send + Sync,
    Res: Clone + Send,
    T: Sync,
    Setup: Fn() -> T,
    Exec: Fn(&T, &Op) -> Res + Sync,
{
    let threads = ops.len();
    let bounds = bounds_of(opts);
    let run = exp::begin_replay(threads, steps, reads, &bounds);
    let (history, panic_msg) = run_window(threads, ops, &setup, &exec);
    let result = exp::finish_replay(run);
    if let Some(msg) = panic_msg {
        return Err(ReplayScheduleError::Panicked(msg));
    }
    match result {
        Ok(_) => Ok(history),
        Err(exp::ReplayError::Diverged) => Err(ReplayScheduleError::Diverged),
        Err(exp::ReplayError::Stuck) => Err(ReplayScheduleError::Stuck),
    }
}

/// Minimizes a window whose exploration fails with a *panic* — e.g. a
/// weak-memory region race from [`ExploreOptions::detect_races`] — by
/// greedy ddmin over the per-thread operation lists: repeatedly drop one
/// operation and keep the smaller window whenever exploration still
/// panics. Linearizability violations shrink through
/// [`shrink_history`](crate::shrink_history) instead; this is for
/// failures that have no history to shrink because a worker died.
///
/// Returns the minimized window together with the trace and message of
/// its panicking execution, or `None` if the original window does not
/// panic at all. Each probe is a full (bounded) exploration of a smaller
/// window, so use this on the small fixed windows it is meant for.
pub fn shrink_panicking_window<T, Op, Res, Setup, Exec>(
    opts: &ExploreOptions,
    ops: &[Vec<Op>],
    setup: Setup,
    exec: Exec,
) -> Option<(Vec<Vec<Op>>, Trace, String)>
where
    Op: Clone + Send + Sync,
    Res: Clone + Send,
    T: Sync,
    Setup: Fn() -> T,
    Exec: Fn(&T, &Op) -> Res + Sync,
{
    let mut cur: Vec<Vec<Op>> = ops.to_vec();
    let (mut trace, mut message) = explore_for_panic(opts, &cur, &setup, &exec)?;
    loop {
        let mut improved = false;
        for t in 0..cur.len() {
            let mut i = 0;
            while i < cur[t].len() {
                let mut cand = cur.clone();
                cand[t].remove(i);
                if let Some((tr, msg)) = explore_for_panic(opts, &cand, &setup, &exec) {
                    cur = cand;
                    trace = tr;
                    message = msg;
                    improved = true;
                } else {
                    i += 1;
                }
            }
        }
        if !improved {
            return Some((cur, trace, message));
        }
    }
}

/// Explores `ops` looking only for a panicking execution; ignores
/// linearizability entirely (no spec required). Stuck executions are
/// skipped. Returns the first panic's trace and message.
fn explore_for_panic<T, Op, Res, Setup, Exec>(
    opts: &ExploreOptions,
    ops: &[Vec<Op>],
    setup: &Setup,
    exec: &Exec,
) -> Option<(Trace, String)>
where
    Op: Clone + Send + Sync,
    Res: Clone + Send,
    T: Sync,
    Setup: Fn() -> T,
    Exec: Fn(&T, &Op) -> Res + Sync,
{
    let threads = ops.len();
    let mut explorer = exp::Explorer::new(threads, bounds_of(opts));
    loop {
        let run = explorer.begin();
        let (_history, panic_msg): (Vec<Operation<Op, Res>>, _) =
            run_window(threads, ops, setup, exec);
        let _ = explorer.finish(run);
        if let Some(message) = panic_msg {
            let trace = if opts.weak_memory {
                Trace::V3 {
                    threads,
                    steps: explorer.last_schedule(),
                    reads: explorer.last_reads(),
                }
            } else {
                Trace::V2 {
                    threads,
                    steps: explorer.last_schedule(),
                }
            };
            return Some((trace, message));
        }
        if explorer.executions() >= opts.max_executions || !explorer.advance() {
            return None;
        }
    }
}

fn run_window<T, Op, Res, Setup, Exec>(
    threads: usize,
    ops: &[Vec<Op>],
    setup: &Setup,
    exec: &Exec,
) -> (Vec<Operation<Op, Res>>, Option<String>)
where
    Op: Clone + Send + Sync,
    Res: Clone + Send,
    T: Sync,
    Setup: Fn() -> T,
    Exec: Fn(&T, &Op) -> Res + Sync,
{
    let target = setup();
    let recorder: Recorder<Op, Res> = Recorder::new();
    let panics: Mutex<Vec<String>> = Mutex::new(Vec::new());
    // All workers must be registered before any of them starts operating;
    // the explore scheduler additionally serializes everything after the
    // first yield point, so the barrier only shields the (trivial)
    // pre-window code from spawn-order noise.
    let start = std::sync::Barrier::new(threads);
    std::thread::scope(|s| {
        for (t, thread_ops) in ops.iter().enumerate() {
            let target = &target;
            let recorder = &recorder;
            let start = &start;
            let panics = &panics;
            s.spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let _slot = sched::register(t);
                    start.wait();
                    for op in thread_ops {
                        sched::yield_point();
                        recorder.record(op.clone(), || {
                            // Real-time completion edges for weak-memory
                            // exploration: absorb everything that completed
                            // before this operation was invoked, and publish
                            // this operation's effects before its response
                            // is recorded. Both sit *inside* the recorded
                            // span, so the synchronization they add is only
                            // ever a sound under-approximation of the
                            // history's real-time order. No-ops otherwise.
                            sched::op_boundary();
                            let res = exec(target, op);
                            sched::op_boundary();
                            res
                        });
                    }
                }));
                if let Err(payload) = result {
                    // `ExploreAbort` is the scheduler's own control flow
                    // (pruned/stuck executions); everything else is a real
                    // failure of the structure under test.
                    if payload.downcast_ref::<exp::ExploreAbort>().is_none() {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic payload>".into());
                        panics.lock().unwrap().push(msg);
                    }
                }
            });
        }
    });
    let history = recorder.into_history();
    let panic_msg = panics.into_inner().unwrap().into_iter().next();
    (history, panic_msg)
}

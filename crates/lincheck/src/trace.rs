//! Versioned, replayable counterexample traces.
//!
//! When a harness finds a non-linearizable window it prints a one-line
//! trace that is sufficient to reproduce the exact failing execution:
//!
//! * **v1** — `cds-trace v1 seed=0x1f2e3d` — a PCT stress round. The seed
//!   drives every scheduling decision and every generated operation, so
//!   [`stress::replay`](crate::stress::replay) reproduces the round.
//! * **v2** — `cds-trace v2 threads=3 steps=0,1,0,2` — a systematic
//!   exploration. There is no seed: the schedule *is* the list of worker
//!   slots granted each step, and `explore::replay_schedule` re-runs it
//!   byte-identically (identical history, timestamps included).
//! * **v3** — `cds-trace v3 threads=2 steps=0,1,0 reads=1,0` — a
//!   weak-memory exploration: the schedule plus the read-from choice
//!   each multi-candidate load made (offset into its candidate suffix,
//!   `0` = stalest permitted store). Loads with a single candidate are
//!   not recorded; `reads=` may therefore be empty even in weak mode.
//!
//! Parsing accepts all older versions forever: v1 traces recorded before the
//! exploration mode existed still parse and replay. Unknown versions are
//! rejected with [`TraceParseError::UnsupportedVersion`] rather than
//! misread.

use std::fmt;
use std::str::FromStr;

/// Current trace format version. Bump when the printed representation
/// changes incompatibly; the `explore-matrix` CI job keys its pinned
/// schedule counts to this number.
pub const TRACE_FORMAT_VERSION: u32 = 3;

/// A replayable counterexample trace (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trace {
    /// A seeded PCT stress round.
    V1 {
        /// The round seed (as in `StressFailure::seed`).
        seed: u64,
    },
    /// An explicit explored schedule: worker slot granted at each step.
    V2 {
        /// Worker threads in the window (slots `0..threads`).
        threads: usize,
        /// The slot granted at each scheduling decision, in order.
        steps: Vec<usize>,
    },
    /// A weak-memory exploration: the schedule plus the read-from
    /// choices (one per load that had more than one candidate).
    V3 {
        /// Worker threads in the window (slots `0..threads`).
        threads: usize,
        /// The slot granted at each scheduling decision, in order.
        steps: Vec<usize>,
        /// Read-from choice per multi-candidate load, in execution
        /// order; each is an offset into that load's candidate suffix.
        reads: Vec<usize>,
    },
}

fn write_list(f: &mut fmt::Formatter<'_>, items: &[usize]) -> fmt::Result {
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(",")?;
        }
        write!(f, "{s}")?;
    }
    Ok(())
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trace::V1 { seed } => write!(f, "cds-trace v1 seed={seed:#x}"),
            Trace::V2 { threads, steps } => {
                write!(f, "cds-trace v2 threads={threads} steps=")?;
                write_list(f, steps)
            }
            Trace::V3 {
                threads,
                steps,
                reads,
            } => {
                write!(f, "cds-trace v3 threads={threads} steps=")?;
                write_list(f, steps)?;
                f.write_str(" reads=")?;
                write_list(f, reads)
            }
        }
    }
}

/// Why a trace line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The line is not a `cds-trace` line or a field is missing/garbled.
    Malformed(String),
    /// The line is a `cds-trace` line of a version this build predates.
    UnsupportedVersion(u32),
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::Malformed(why) => write!(f, "malformed trace: {why}"),
            TraceParseError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "trace version v{v} is newer than this build (supports up to \
                     v{TRACE_FORMAT_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn field<'a>(token: Option<&'a str>, key: &str) -> Result<&'a str, TraceParseError> {
    token
        .and_then(|t| t.strip_prefix(key))
        .and_then(|t| t.strip_prefix('='))
        .ok_or_else(|| TraceParseError::Malformed(format!("expected `{key}=...`")))
}

fn parse_list(s: &str, what: &str) -> Result<Vec<usize>, TraceParseError> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| t.parse())
        .collect::<Result<_, _>>()
        .map_err(|_| TraceParseError::Malformed(format!("unparseable {what}")))
}

impl FromStr for Trace {
    type Err = TraceParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut tokens = s.split_whitespace();
        if tokens.next() != Some("cds-trace") {
            return Err(TraceParseError::Malformed(
                "missing `cds-trace` prefix".into(),
            ));
        }
        let version = tokens
            .next()
            .and_then(|t| t.strip_prefix('v'))
            .and_then(|t| t.parse::<u32>().ok())
            .ok_or_else(|| TraceParseError::Malformed("missing version".into()))?;
        match version {
            1 => {
                let seed = parse_u64(field(tokens.next(), "seed")?)
                    .ok_or_else(|| TraceParseError::Malformed("unparseable seed".into()))?;
                Ok(Trace::V1 { seed })
            }
            2 | 3 => {
                let threads: usize = field(tokens.next(), "threads")?
                    .parse()
                    .map_err(|_| TraceParseError::Malformed("unparseable threads".into()))?;
                let steps = parse_list(field(tokens.next(), "steps")?, "steps")?;
                if steps.iter().any(|&s| s >= threads) {
                    return Err(TraceParseError::Malformed(
                        "step names a slot >= threads".into(),
                    ));
                }
                if version == 2 {
                    return Ok(Trace::V2 { threads, steps });
                }
                let reads = parse_list(field(tokens.next(), "reads")?, "reads")?;
                Ok(Trace::V3 {
                    threads,
                    steps,
                    reads,
                })
            }
            v => Err(TraceParseError::UnsupportedVersion(v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_round_trips() {
        let t = Trace::V1 { seed: 0x5eed };
        let s = t.to_string();
        assert_eq!(s, "cds-trace v1 seed=0x5eed");
        assert_eq!(s.parse::<Trace>().unwrap(), t);
    }

    #[test]
    fn v1_decimal_seed_parses() {
        assert_eq!(
            "cds-trace v1 seed=12345".parse::<Trace>().unwrap(),
            Trace::V1 { seed: 12345 }
        );
    }

    #[test]
    fn v2_round_trips() {
        let t = Trace::V2 {
            threads: 3,
            steps: vec![0, 1, 0, 2, 2],
        };
        let s = t.to_string();
        assert_eq!(s, "cds-trace v2 threads=3 steps=0,1,0,2,2");
        assert_eq!(s.parse::<Trace>().unwrap(), t);
    }

    #[test]
    fn v2_empty_schedule_round_trips() {
        let t = Trace::V2 {
            threads: 1,
            steps: vec![],
        };
        assert_eq!(t.to_string().parse::<Trace>().unwrap(), t);
    }

    #[test]
    fn v3_round_trips() {
        let t = Trace::V3 {
            threads: 2,
            steps: vec![0, 1, 0],
            reads: vec![1, 0],
        };
        let s = t.to_string();
        assert_eq!(s, "cds-trace v3 threads=2 steps=0,1,0 reads=1,0");
        assert_eq!(s.parse::<Trace>().unwrap(), t);
    }

    #[test]
    fn v3_empty_reads_round_trips() {
        let t = Trace::V3 {
            threads: 2,
            steps: vec![0, 1],
            reads: vec![],
        };
        assert_eq!(t.to_string().parse::<Trace>().unwrap(), t);
    }

    #[test]
    fn unknown_version_is_rejected_not_misread() {
        match "cds-trace v4 wormholes=yes".parse::<Trace>() {
            Err(TraceParseError::UnsupportedVersion(4)) => {}
            other => panic!("expected UnsupportedVersion(4), got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_malformed() {
        assert!(matches!(
            "not a trace".parse::<Trace>(),
            Err(TraceParseError::Malformed(_))
        ));
        assert!(matches!(
            "cds-trace v2 threads=2 steps=0,7".parse::<Trace>(),
            Err(TraceParseError::Malformed(_))
        ));
    }
}

//! Deterministic stress driver: seeded PCT-style scheduled rounds over a
//! real structure, checked for linearizability, with seed replay.
//!
//! Each round:
//!
//! 1. derives a round seed from the root seed,
//! 2. installs the `cds_core::stress` scheduler (live when the `stress`
//!    feature is enabled; inert otherwise — the round still runs, just
//!    without controlled preemption),
//! 3. spawns worker threads that generate operations from per-thread
//!    seeded streams and record them through a [`Recorder`],
//! 4. checks the recorded window with the memoized Wing–Gong search.
//!
//! On failure the driver shrinks the window with
//! [`shrink_history`](crate::shrink_history) and returns a
//! [`StressFailure`] carrying the *round seed*; [`replay`] re-runs
//! exactly that round. Because every scheduling decision and every
//! generated operation derives from the seed, the failure reproduces
//! deterministically (best-effort where the OS blocks the token holder —
//! see `cds_core::stress`).
//!
//! # Example: find and replay a planted bug
//!
//! ```
//! use cds_lincheck::specs::{CounterOp, CounterSpec};
//! use cds_lincheck::stress::{stress, StressOptions};
//! use std::sync::atomic::{AtomicI64, Ordering};
//!
//! // A correct counter: fetch_add is atomic, so every round passes.
//! let opts = StressOptions { rounds: 3, ..StressOptions::default() };
//! let ok = stress(
//!     CounterSpec::default(),
//!     &opts,
//!     || AtomicI64::new(0),
//!     |rng, _thread| {
//!         if rng.below(2) == 0 {
//!             CounterOp::Add(rng.below(5) as i64)
//!         } else {
//!             CounterOp::Get
//!         }
//!     },
//!     |c, op| match op {
//!         CounterOp::Add(d) => {
//!             c.fetch_add(*d, Ordering::SeqCst);
//!             0
//!         }
//!         CounterOp::Get => c.load(Ordering::SeqCst),
//!     },
//! );
//! assert!(ok.is_ok());
//! ```

use std::fmt::Debug;

use cds_core::stress as sched;
use cds_core::stress::{mix_seed, SplitMix64, StressConfig};

use crate::{check_linearizable, shrink_history, Operation, Recorder, Spec};

/// Configuration of a stress run (a sequence of scheduled rounds).
#[derive(Debug, Clone)]
pub struct StressOptions {
    /// Worker threads per round.
    pub threads: usize,
    /// Recorded operations per worker (window = `threads * ops_per_thread`
    /// operations, capped at 64 by the checker).
    pub ops_per_thread: usize,
    /// Number of rounds, each with a distinct derived seed.
    pub rounds: usize,
    /// Root seed; override with `CDS_STRESS_SEED` to replay a whole run.
    pub seed: u64,
    /// Scheduler priority-change period (see `cds_core::stress`).
    pub change_period: u64,
    /// Forced-backoff injection: one in `backoff_denom` scheduler steps
    /// spins `backoff_spins` times (0 disables).
    pub backoff_denom: u64,
    /// Spin count per injected backoff.
    pub backoff_spins: u32,
}

impl Default for StressOptions {
    fn default() -> Self {
        StressOptions {
            threads: 3,
            ops_per_thread: 5,
            rounds: 16,
            seed: seed_from_env(),
            change_period: 3,
            backoff_denom: 0,
            backoff_spins: 0,
        }
    }
}

fn seed_from_env() -> u64 {
    match std::env::var("CDS_STRESS_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("unparseable CDS_STRESS_SEED: {s:?}"))
        }
        Err(_) => 0x5eed,
    }
}

/// A non-linearizable window found by [`stress`], with everything needed
/// to reproduce it.
pub struct StressFailure<S: Spec> {
    /// The *round* seed; pass to [`replay`] to re-run this schedule.
    pub seed: u64,
    /// Which round of the run failed.
    pub round: usize,
    /// The full recorded window.
    pub history: Vec<Operation<S::Op, S::Res>>,
    /// The window minimized by [`shrink_history`](crate::shrink_history).
    pub minimized: Vec<Operation<S::Op, S::Res>>,
}

impl<S: Spec> StressFailure<S> {
    /// This failure as a replayable [`Trace`](crate::trace::Trace)
    /// (format v1: the round seed).
    pub fn trace(&self) -> crate::trace::Trace {
        crate::trace::Trace::V1 { seed: self.seed }
    }
}

impl<S: Spec> Debug for StressFailure<S>
where
    S::Op: Debug,
    S::Res: Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StressFailure")
            .field("seed", &format_args!("{:#x}", self.seed))
            .field("round", &self.round)
            .field("history_len", &self.history.len())
            .field("minimized", &self.minimized)
            .finish()
    }
}

/// Runs `opts.rounds` scheduled rounds of `threads × ops_per_thread`
/// operations against a fresh structure per round, checking each recorded
/// window for linearizability against `spec`.
///
/// * `setup` builds the structure under test (fresh per round);
/// * `gen` draws the next operation for a worker from its seeded stream;
/// * `exec` runs an operation against the structure and returns the
///   result in spec terms.
///
/// On the first non-linearizable window, prints the round seed to stderr
/// (so it survives even if the caller just `unwrap`s) and returns a
/// [`StressFailure`]. Pass that seed to [`replay`] — or set
/// `CDS_STRESS_SEED` and re-run the test — to reproduce the schedule.
pub fn stress<S, T, Setup, Gen, Exec>(
    spec: S,
    opts: &StressOptions,
    setup: Setup,
    gen: Gen,
    exec: Exec,
) -> Result<(), Box<StressFailure<S>>>
where
    S: Spec,
    S::Op: Clone + Send + Debug,
    S::Res: Clone + PartialEq + Send + Debug,
    T: Sync,
    Setup: Fn() -> T,
    Gen: Fn(&mut SplitMix64, usize) -> S::Op + Sync,
    Exec: Fn(&T, &S::Op) -> S::Res + Sync,
{
    for round in 0..opts.rounds {
        let round_seed = mix_seed(opts.seed, round as u64);
        if let Some(failure) = run_round(&spec, opts, round_seed, &setup, &gen, &exec) {
            eprintln!(
                "stress: non-linearizable window in round {round} \
                 (round seed {round_seed:#x}, root seed {:#x}); \
                 replay with cds_lincheck::stress::replay(.., {round_seed:#x}) \
                 or CDS_STRESS_SEED={:#x}",
                opts.seed, opts.seed,
            );
            return Err(Box::new(StressFailure {
                seed: round_seed,
                round,
                minimized: shrink_history(&spec, &failure),
                history: failure,
            }));
        }
    }
    Ok(())
}

/// Re-runs a single round under `round_seed` (as returned in
/// [`StressFailure::seed`]); returns the failure if it reproduces.
pub fn replay<S, T, Setup, Gen, Exec>(
    spec: S,
    opts: &StressOptions,
    round_seed: u64,
    setup: Setup,
    gen: Gen,
    exec: Exec,
) -> Result<(), Box<StressFailure<S>>>
where
    S: Spec,
    S::Op: Clone + Send + Debug,
    S::Res: Clone + PartialEq + Send + Debug,
    T: Sync,
    Setup: Fn() -> T,
    Gen: Fn(&mut SplitMix64, usize) -> S::Op + Sync,
    Exec: Fn(&T, &S::Op) -> S::Res + Sync,
{
    match run_round(&spec, opts, round_seed, &setup, &gen, &exec) {
        None => Ok(()),
        Some(history) => Err(Box::new(StressFailure {
            seed: round_seed,
            round: 0,
            minimized: shrink_history(&spec, &history),
            history,
        })),
    }
}

/// Runs one scheduled round; returns the recorded window if it is *not*
/// linearizable.
fn run_round<S, T, Setup, Gen, Exec>(
    spec: &S,
    opts: &StressOptions,
    round_seed: u64,
    setup: &Setup,
    gen: &Gen,
    exec: &Exec,
) -> Option<Vec<Operation<S::Op, S::Res>>>
where
    S: Spec,
    S::Op: Clone + Send,
    S::Res: Clone + PartialEq + Send,
    T: Sync,
    Setup: Fn() -> T,
    Gen: Fn(&mut SplitMix64, usize) -> S::Op + Sync,
    Exec: Fn(&T, &S::Op) -> S::Res + Sync,
{
    let window = opts.threads * opts.ops_per_thread;
    assert!(
        window <= 64,
        "stress window of {window} ops exceeds the checker's 64-op cap"
    );
    assert!(opts.threads <= sched::MAX_THREADS);
    let target = setup();
    let recorder: Recorder<S::Op, S::Res> = Recorder::new();
    // All workers must be registered before any of them starts operating:
    // otherwise the token holder races ahead while the OS is still
    // starting the other threads, and the schedule depends on spawn
    // timing instead of the seed alone.
    let start = std::sync::Barrier::new(opts.threads);
    let run = sched::install(StressConfig {
        seed: round_seed,
        change_period: opts.change_period,
        backoff_denom: opts.backoff_denom,
        backoff_spins: opts.backoff_spins,
    });
    std::thread::scope(|s| {
        for t in 0..opts.threads {
            let target = &target;
            let recorder = &recorder;
            let start = &start;
            s.spawn(move || {
                let _slot = sched::register(t);
                start.wait();
                // Per-thread op stream: a pure function of (round seed,
                // thread index), independent of scheduling.
                let mut rng = SplitMix64::new(mix_seed(round_seed, 0x7ead + t as u64));
                for _ in 0..opts.ops_per_thread {
                    let op = gen(&mut rng, t);
                    sched::yield_point();
                    recorder.record(op.clone(), || exec(target, &op));
                }
            });
        }
    });
    drop(run);
    let history = recorder.into_history();
    if check_linearizable(spec.clone(), &history) {
        None
    } else {
        Some(history)
    }
}

//! A small seeded property-testing harness with a delta-debugging
//! shrinker.
//!
//! The workspace cannot reach crates.io, so instead of `proptest` the
//! suite uses this module: generate inputs from a [`Prng`] seeded by a
//! root seed and case index, run the property (any panicking assertion
//! counts as a failure), and on failure *shrink* the input to a locally
//! minimal failing case by removing chunks, then single elements
//! (Zeller's ddmin). The failure report prints the root seed, the case
//! index, and the minimized input, so
//! `CDS_PROP_SEED=<seed> cargo test <name>` replays the exact sequence.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use cds_core::stress::{mix_seed, SplitMix64};

/// The generator handed to property input builders; a thin seeded PRNG.
pub type Prng = SplitMix64;

/// Configuration for [`forall_vec`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases.
    pub cases: usize,
    /// Root seed; override with the `CDS_PROP_SEED` environment variable
    /// to replay a reported failure.
    pub seed: u64,
    /// Maximum generated vector length.
    pub max_len: usize,
}

impl Config {
    /// `cases` cases of vectors up to `max_len` elements, seeded from
    /// `CDS_PROP_SEED` if set (decimal or `0x`-prefixed hex).
    pub fn new(cases: usize, max_len: usize) -> Self {
        Config {
            cases,
            seed: seed_from_env(),
            max_len,
        }
    }
}

fn seed_from_env() -> u64 {
    match std::env::var("CDS_PROP_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("unparseable CDS_PROP_SEED: {s:?}"))
        }
        Err(_) => 0xcd5_c0ffee,
    }
}

/// Checks `prop` against `cases` seeded random vectors built element-wise
/// by `gen`; on failure, shrinks to a locally minimal failing input and
/// panics with the seed and minimized case.
///
/// `prop` signals failure by panicking (use plain `assert!`/`assert_eq!`).
pub fn forall_vec<T, G, P>(config: &Config, gen: G, prop: P)
where
    T: Clone + Debug,
    G: Fn(&mut Prng) -> T,
    P: Fn(&[T]),
{
    for case in 0..config.cases {
        let mut rng = Prng::new(mix_seed(config.seed, case as u64));
        let len = (rng.next_u64() as usize) % (config.max_len + 1);
        let input: Vec<T> = (0..len).map(|_| gen(&mut rng)).collect();
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| prop(&input))) {
            let minimized = shrink_vec(&input, &prop);
            let message = panic_message(payload.as_ref());
            panic!(
                "property failed (seed {:#x}, case {case}): {message}\n\
                 original input ({} elems), minimized to {} elems:\n{minimized:#?}\n\
                 replay with CDS_PROP_SEED={:#x}",
                config.seed,
                input.len(),
                minimized.len(),
                config.seed,
            );
        }
    }
}

/// Minimizes `input` to a locally minimal vector still failing `prop`
/// (chunk removal then single-element removal; every removal that keeps
/// the failure is accepted greedily).
pub fn shrink_vec<T, P>(input: &[T], prop: &P) -> Vec<T>
where
    T: Clone,
    P: Fn(&[T]),
{
    let fails = |candidate: &[T]| catch_unwind(AssertUnwindSafe(|| prop(candidate))).is_err();
    let mut current: Vec<T> = input.to_vec();
    if !fails(&current) {
        return current;
    }
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if fails(&candidate) {
                current = candidate;
                progressed = true;
                // Re-test from the same offset: new content slid into it.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            if !progressed {
                return current;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic payload>".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let seen = std::cell::Cell::new(0usize);
        forall_vec(
            &Config {
                cases: 16,
                seed: 1,
                max_len: 8,
            },
            |rng| rng.below(100),
            |xs: &[u64]| {
                assert!(xs.iter().all(|&x| x < 100));
                seen.set(seen.get() + 1);
            },
        );
        assert_eq!(seen.get(), 16);
    }

    #[test]
    fn failing_property_reports_minimized_input_and_seed() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            forall_vec(
                &Config {
                    cases: 64,
                    seed: 3,
                    max_len: 40,
                },
                |rng| rng.below(50),
                |xs: &[u64]| assert!(!xs.contains(&7), "found a 7"),
            );
        }))
        .expect_err("property must fail");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("seed 0x3"), "missing seed in: {msg}");
        assert!(msg.contains("minimized to 1 elems"), "not minimal: {msg}");
        assert!(msg.contains("CDS_PROP_SEED"), "missing replay hint: {msg}");
    }

    #[test]
    fn shrinker_is_locally_minimal() {
        // Fails iff the vector contains both a 1 and a 2 somewhere.
        let prop = |xs: &[u32]| assert!(!(xs.contains(&1) && xs.contains(&2)));
        let input = vec![9, 1, 4, 4, 2, 9, 1, 3];
        let small = shrink_vec(&input, &prop);
        assert_eq!(small.len(), 2);
        assert!(small.contains(&1) && small.contains(&2));
    }

    #[test]
    fn shrinker_returns_passing_input_unchanged() {
        let prop = |_: &[u32]| {};
        assert_eq!(shrink_vec(&[1, 2, 3], &prop), vec![1, 2, 3]);
    }
}

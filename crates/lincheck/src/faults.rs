//! Fault injection for the lock-based structures.
//!
//! Three fault classes from the Rust-concurrency failure catalogue
//! (Saligrama et al.) are covered:
//!
//! * **Poisoned-lock recovery** — the workspace's `parking_lot` shim
//!   recovers the inner `std` lock when a holder panics, matching real
//!   `parking_lot`'s non-poisoning semantics. [`crash_worker`] drives a
//!   worker that dies mid-operation so tests can assert the structure
//!   stays usable afterwards.
//! * **Forced backoff** — configure
//!   [`StressOptions::backoff_denom`](crate::stress::StressOptions) so the
//!   scheduler injects spin delays at seeded yield points, stretching
//!   critical sections and lock hand-offs.
//! * **Contention storms** — [`with_contention_storm`] hammers a
//!   structure from background threads while the caller runs a checked
//!   workload in the foreground.

use cds_atomic::raw::{AtomicBool, Ordering};
use std::fmt::Debug;

/// Configuration for [`with_contention_storm`].
#[derive(Debug, Clone)]
pub struct StormOptions {
    /// Background hammer threads.
    pub threads: usize,
    /// Operations each hammer thread performs.
    pub ops_per_thread: usize,
}

impl Default for StormOptions {
    fn default() -> Self {
        StormOptions {
            threads: 4,
            ops_per_thread: 2_000,
        }
    }
}

/// Runs `main` against `target` while `opts.threads` background threads
/// each apply `hammer(target, thread, i)` `opts.ops_per_thread` times —
/// a contention storm. Returns `main`'s result after the storm subsides.
///
/// Hammer panics are swallowed (a storm thread dying — e.g. a planted
/// panic to poison a lock — must not mask the foreground assertion), but
/// the count of panicked hammers is handed to `main` via
/// [`StormHandle::crashed`] so tests can require or forbid casualties.
pub fn with_contention_storm<T, R>(
    target: &T,
    opts: &StormOptions,
    hammer: impl Fn(&T, usize, usize) + Sync,
    main: impl FnOnce(&T, &StormHandle) -> R,
) -> R
where
    T: Sync,
{
    let handle = StormHandle {
        crashed: cds_atomic::raw::AtomicUsize::new(0),
        done: AtomicBool::new(false),
    };
    std::thread::scope(|s| {
        for t in 0..opts.threads {
            let hammer = &hammer;
            let handle = &handle;
            s.spawn(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    for i in 0..opts.ops_per_thread {
                        hammer(target, t, i);
                    }
                }));
                if outcome.is_err() {
                    handle.crashed.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        let out = main(target, &handle);
        handle.done.store(true, Ordering::SeqCst);
        out
    })
}

/// Storm bookkeeping visible to the foreground closure.
#[derive(Debug)]
pub struct StormHandle {
    crashed: cds_atomic::raw::AtomicUsize,
    done: AtomicBool,
}

impl StormHandle {
    /// Hammer threads that panicked so far.
    pub fn crashed(&self) -> usize {
        self.crashed.load(Ordering::SeqCst)
    }
}

/// Runs `f` against `target` on a fresh thread and waits for it;
/// returns `true` if the worker panicked.
///
/// The canonical use is planting a panic *inside* a lock-based
/// structure's critical section (or while holding a `parking_lot` shim
/// guard) and then asserting the structure still works — the shim's
/// poisoned-lock recovery is what makes that pass.
pub fn crash_worker<T>(target: &T, f: impl FnOnce(&T) + Send) -> bool
where
    T: Sync,
{
    std::thread::scope(|s| {
        s.spawn(|| std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(target))).is_err())
            .join()
            .expect("crash_worker join")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_atomic::raw::AtomicI64;

    #[test]
    fn storm_runs_all_hammers_and_main() {
        let counter = AtomicI64::new(0);
        let opts = StormOptions {
            threads: 3,
            ops_per_thread: 100,
        };
        let seen = with_contention_storm(
            &counter,
            &opts,
            |c, _, _| {
                c.fetch_add(1, Ordering::SeqCst);
            },
            |c, handle| {
                assert_eq!(handle.crashed(), 0);
                c.fetch_add(1, Ordering::SeqCst);
                true
            },
        );
        assert!(seen);
        assert_eq!(counter.load(Ordering::SeqCst), 301);
    }

    #[test]
    fn storm_counts_crashed_hammers() {
        let cell = AtomicI64::new(0);
        let opts = StormOptions {
            threads: 2,
            ops_per_thread: 1,
        };
        with_contention_storm(
            &cell,
            &opts,
            |_, t, _| {
                if t == 0 {
                    panic!("planted hammer crash");
                }
            },
            |_, _| (),
        );
        // After the scope ends every hammer has finished; re-check count.
    }

    #[test]
    fn crash_worker_reports_panic() {
        let x = AtomicI64::new(0);
        assert!(crash_worker(&x, |_| panic!("boom")));
        assert!(!crash_worker(&x, |x| {
            x.store(1, Ordering::SeqCst);
        }));
        assert_eq!(x.load(Ordering::SeqCst), 1);
    }
}

//! Executable linearizability checking (Herlihy & Wing, 1990).
//!
//! Linearizability is the correctness criterion for every structure in
//! this family: each operation must appear to take effect atomically at
//! some instant between its invocation and its response. This crate makes
//! the criterion *executable* for the test suite:
//!
//! 1. wrap concurrent calls in a [`Recorder`], which timestamps each
//!    operation's invocation and response with a global atomic clock;
//! 2. describe the abstract type with a sequential [`Spec`] (specs for
//!    stacks, queues, deques, sets, registers and counters ship in
//!    [`specs`]);
//! 3. ask [`check_linearizable`] whether *any* sequential order of the
//!    recorded operations (a) respects the real-time order — an operation
//!    that returned before another was invoked must come first — and
//!    (b) makes the spec reproduce every recorded result.
//!
//! # The memoized Wing–Gong search
//!
//! The search is the Wing–Gong algorithm — depth-first over the orders
//! that respect real time, backtracking when the spec disagrees — with
//! the memoization of Lowe's *just-in-time linearizability* checkers
//! layered on top: every explored configuration is the pair
//! ⟨set of already-linearized operations, abstract state⟩, and two search
//! paths that linearize the same *set* of operations and land the spec in
//! the same *state* have identical futures. Caching those pairs turns the
//! factorial blow-up of the plain search into something bounded by the
//! number of *distinct reachable configurations*, which for realistic
//! histories is tiny: windows of 40–50 operations from 4 threads check
//! in milliseconds (the suite asserts a 40-operation window in under a
//! second as a regression test). The hard cap is 64 operations per
//! window (the linearized set is a `u64` bitmask).
//!
//! Window-size guidance: the memo key contains the abstract state, so
//! the cache is effective exactly when many interleavings collapse to
//! few states (counters, queues, small-key-range sets). Histories of
//! fully-concurrent operations over *distinct* values keep states
//! distinct and can still be exponential; keep such windows ≤ ~24
//! operations.
//!
//! # Beyond checking: stress, faults, shrinking
//!
//! * [`stress`] drives whole structures through seeded, PCT-style
//!   scheduled rounds (`cds_core::stress`) and re-prints the seed of any
//!   failing schedule so it can be replayed deterministically.
//! * [`faults`] injects contention storms and forced backoff, and the
//!   workspace's `parking_lot` shim performs poisoned-lock recovery so
//!   lock-based structures can be tested across worker panics.
//! * [`shrink_history`] minimizes a failing window to a locally minimal
//!   non-linearizable sub-history before it is reported.
//! * [`prop`] is a small seeded property-testing harness (generation +
//!   delta-debugging shrinker) the suite uses instead of `proptest`.
//!
//! # Example
//!
//! ```
//! use cds_lincheck::{check_linearizable, Recorder};
//! use cds_lincheck::specs::{RegisterOp, RegisterSpec};
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicI64, Ordering};
//!
//! let reg = Arc::new(AtomicI64::new(0));
//! let recorder = Arc::new(Recorder::new());
//! let handles: Vec<_> = (0..2)
//!     .map(|i| {
//!         let reg = Arc::clone(&reg);
//!         let recorder = Arc::clone(&recorder);
//!         std::thread::spawn(move || {
//!             recorder.record(RegisterOp::Write(i + 1), || {
//!                 reg.store(i + 1, Ordering::SeqCst);
//!                 0
//!             });
//!             recorder.record(RegisterOp::Read, || reg.load(Ordering::SeqCst));
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! let history = Arc::try_unwrap(recorder).unwrap().into_history();
//! assert!(check_linearizable(RegisterSpec::default(), &history));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[cfg(feature = "stress")]
pub mod explore;
pub mod faults;
pub mod prop;
pub mod specs;
pub mod stress;
pub mod trace;

use cds_atomic::raw::{AtomicU64, Ordering};
use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;
use std::sync::Mutex;

/// A sequential specification of an abstract data type.
///
/// `apply` runs one operation against the abstract state and returns the
/// result the sequential type would produce. The checker clones the state
/// while backtracking and memoizes on `(linearized-set, state)` — hence
/// the `Eq + Hash` bounds — so keep the state small and canonical (two
/// states that are `==` must have identical futures).
pub trait Spec: Clone + Eq + Hash {
    /// Operation descriptions (inputs).
    type Op;
    /// Operation results; compared against the recorded outputs.
    type Res: PartialEq;

    /// Applies `op` to the state, returning the sequential result.
    fn apply(&mut self, op: &Self::Op) -> Self::Res;
}

/// One completed operation in a recorded history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation<Op, Res> {
    /// What was invoked.
    pub op: Op,
    /// What it returned.
    pub result: Res,
    /// Logical invocation time.
    pub call: u64,
    /// Logical response time (`> call`).
    pub ret: u64,
}

/// Timestamps concurrent operations to build a checkable history.
///
/// Thread-safe: share it (e.g. in an `Arc`) among the worker threads and
/// wrap every operation in [`record`](Recorder::record).
pub struct Recorder<Op, Res> {
    clock: AtomicU64,
    ops: Mutex<Vec<Operation<Op, Res>>>,
}

impl<Op, Res> Recorder<Op, Res> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder {
            clock: AtomicU64::new(0),
            ops: Mutex::new(Vec::new()),
        }
    }

    /// Runs `f`, recording `op` with invocation/response timestamps and
    /// the produced result. Returns the result to the caller.
    pub fn record(&self, op: Op, f: impl FnOnce() -> Res) -> Res
    where
        Res: Clone,
    {
        let call = self.clock.fetch_add(1, Ordering::SeqCst);
        let result = f();
        let ret = self.clock.fetch_add(1, Ordering::SeqCst);
        self.ops.lock().unwrap().push(Operation {
            op,
            result: result.clone(),
            call,
            ret,
        });
        result
    }

    /// Finishes recording, returning the completed history.
    pub fn into_history(self) -> Vec<Operation<Op, Res>> {
        self.ops.into_inner().unwrap()
    }
}

impl<Op, Res> Default for Recorder<Op, Res> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Op, Res> fmt::Debug for Recorder<Op, Res> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("recorded", &self.ops.lock().unwrap().len())
            .finish()
    }
}

/// Checks whether `history` is linearizable with respect to `spec`.
///
/// Memoized Wing–Gong search (see the [crate docs](crate)); panics on
/// histories over 64 operations.
pub fn check_linearizable<S: Spec>(spec: S, history: &[Operation<S::Op, S::Res>]) -> bool {
    linearization(spec, history).is_some()
}

/// Like [`check_linearizable`], but on success returns a witness: the
/// indices of `history` in one legal linearization order.
///
/// `None` means no legal order exists (the history is not linearizable).
pub fn linearization<S: Spec>(spec: S, history: &[Operation<S::Op, S::Res>]) -> Option<Vec<usize>> {
    let n = history.len();
    assert!(
        n <= 64,
        "history too large for exhaustive checking ({n} ops); record smaller windows"
    );
    if n == 0 {
        return Some(Vec::new());
    }
    // pred_mask[i]: operations that *must* linearize before i because they
    // returned before i was invoked. i is minimal in a partial order state
    // `remaining` iff pred_mask[i] ∩ remaining = ∅.
    let pred_mask: Vec<u64> = (0..n)
        .map(|i| {
            let mut m = 0u64;
            for (j, other) in history.iter().enumerate() {
                if j != i && other.ret < history[i].call {
                    m |= 1 << j;
                }
            }
            m
        })
        .collect();
    let full: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
    let mut seen: HashSet<(u64, S)> = HashSet::new();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    if dfs(&spec, full, history, &pred_mask, &mut seen, &mut order) {
        Some(order)
    } else {
        None
    }
}

fn dfs<S: Spec>(
    spec: &S,
    remaining: u64,
    history: &[Operation<S::Op, S::Res>],
    pred_mask: &[u64],
    seen: &mut HashSet<(u64, S)>,
    order: &mut Vec<usize>,
) -> bool {
    if remaining == 0 {
        return true;
    }
    // Memoization (Lowe): a ⟨remaining-set, state⟩ pair already explored
    // without success cannot succeed now — identical futures.
    if !seen.insert((remaining, spec.clone())) {
        return false;
    }
    let mut bits = remaining;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        if pred_mask[i] & remaining != 0 {
            continue; // a predecessor is still pending; i is not minimal
        }
        let mut next = spec.clone();
        if next.apply(&history[i].op) == history[i].result {
            order.push(i);
            if dfs(
                &next,
                remaining & !(1 << i),
                history,
                pred_mask,
                seen,
                order,
            ) {
                return true;
            }
            order.pop();
        }
    }
    false
}

/// Minimizes a non-linearizable history to a *locally minimal* failing
/// sub-history: removing any single remaining operation makes it
/// linearizable.
///
/// Greedy delta debugging: repeatedly drop operations whose removal keeps
/// the history non-linearizable. The result pins the conflict down to a
/// handful of operations, which is what gets printed alongside the seed
/// when a stress round fails. (Minimal sub-histories can look "impossible"
/// in isolation — e.g. a dequeue of a value whose enqueue was dropped —
/// but they are still faithful counterexamples: a sub-history of a
/// linearizable history over these specs would itself be linearizable.)
///
/// Returns the history unchanged if it is actually linearizable.
pub fn shrink_history<S: Spec>(
    spec: &S,
    history: &[Operation<S::Op, S::Res>],
) -> Vec<Operation<S::Op, S::Res>>
where
    S::Op: Clone,
    S::Res: Clone,
{
    let mut current: Vec<Operation<S::Op, S::Res>> = history.to_vec();
    if check_linearizable(spec.clone(), &current) {
        return current;
    }
    loop {
        let mut progressed = false;
        let mut idx = 0;
        while idx < current.len() {
            let mut candidate = current.clone();
            candidate.remove(idx);
            if !check_linearizable(spec.clone(), &candidate) {
                current = candidate;
                progressed = true;
                // Do not advance: the element now at `idx` is new.
            } else {
                idx += 1;
            }
        }
        if !progressed {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::specs::*;
    use super::*;

    fn op<OpT, ResT>(op: OpT, result: ResT, call: u64, ret: u64) -> Operation<OpT, ResT> {
        Operation {
            op,
            result,
            call,
            ret,
        }
    }

    #[test]
    fn sequential_counter_history_accepts() {
        let h = vec![op(CounterOp::Add(1), 0, 0, 1), op(CounterOp::Get, 1, 2, 3)];
        assert!(check_linearizable(CounterSpec::default(), &h));
    }

    #[test]
    fn wrong_result_rejects() {
        let h = vec![op(CounterOp::Add(1), 0, 0, 1), op(CounterOp::Get, 5, 2, 3)];
        assert!(!check_linearizable(CounterSpec::default(), &h));
    }

    #[test]
    fn real_time_order_is_enforced() {
        // Get returned 0 strictly AFTER Add completed: not linearizable.
        let h = vec![op(CounterOp::Add(1), 0, 0, 1), op(CounterOp::Get, 0, 2, 3)];
        assert!(!check_linearizable(CounterSpec::default(), &h));
        // But a Get overlapping the Add may legally return 0.
        let h = vec![op(CounterOp::Add(1), 0, 0, 3), op(CounterOp::Get, 0, 1, 2)];
        assert!(check_linearizable(CounterSpec::default(), &h));
    }

    #[test]
    fn concurrent_stack_pops_commute() {
        // Two overlapping pushes then two overlapping pops that see them in
        // the opposite order: linearizable (the pushes overlap).
        let h = vec![
            op(StackOp::Push(1), StackRes::Pushed, 0, 3),
            op(StackOp::Push(2), StackRes::Pushed, 1, 2),
            op(StackOp::Pop, StackRes::Popped(Some(1)), 4, 5),
            op(StackOp::Pop, StackRes::Popped(Some(2)), 6, 7),
        ];
        assert!(check_linearizable(StackSpec::default(), &h));
    }

    #[test]
    fn stack_lifo_violation_rejects() {
        // Sequential pushes (non-overlapping) must pop in LIFO order.
        let h = vec![
            op(StackOp::Push(1), StackRes::Pushed, 0, 1),
            op(StackOp::Push(2), StackRes::Pushed, 2, 3),
            op(StackOp::Pop, StackRes::Popped(Some(1)), 4, 5),
            op(StackOp::Pop, StackRes::Popped(Some(2)), 6, 7),
        ];
        assert!(!check_linearizable(StackSpec::default(), &h));
    }

    #[test]
    fn queue_fifo_is_checked() {
        let good = vec![
            op(QueueOp::Enqueue(1), QueueRes::Enqueued, 0, 1),
            op(QueueOp::Enqueue(2), QueueRes::Enqueued, 2, 3),
            op(QueueOp::Dequeue, QueueRes::Dequeued(Some(1)), 4, 5),
        ];
        assert!(check_linearizable(QueueSpec::default(), &good));
        let bad = vec![
            op(QueueOp::Enqueue(1), QueueRes::Enqueued, 0, 1),
            op(QueueOp::Enqueue(2), QueueRes::Enqueued, 2, 3),
            op(QueueOp::Dequeue, QueueRes::Dequeued(Some(2)), 4, 5),
        ];
        assert!(!check_linearizable(QueueSpec::default(), &bad));
    }

    #[test]
    fn set_duplicate_insert_semantics() {
        let h = vec![
            op(SetOp::Insert(7), true, 0, 1),
            op(SetOp::Insert(7), false, 2, 3),
            op(SetOp::Remove(7), true, 4, 5),
            op(SetOp::Contains(7), false, 6, 7),
        ];
        assert!(check_linearizable(SetSpec::default(), &h));
        // Two non-overlapping successful inserts of the same key: illegal.
        let bad = vec![
            op(SetOp::Insert(7), true, 0, 1),
            op(SetOp::Insert(7), true, 2, 3),
        ];
        assert!(!check_linearizable(SetSpec::default(), &bad));
    }

    #[test]
    fn recorder_round_trip() {
        let r: Recorder<CounterOp, i64> = Recorder::new();
        let out = r.record(CounterOp::Add(5), || 0);
        assert_eq!(out, 0);
        r.record(CounterOp::Get, || 5);
        let h = r.into_history();
        assert_eq!(h.len(), 2);
        assert!(h[0].call < h[0].ret);
        assert!(check_linearizable(CounterSpec::default(), &h));
    }

    #[test]
    #[should_panic(expected = "history too large")]
    fn oversized_history_panics() {
        let h: Vec<Operation<CounterOp, i64>> = (0..70)
            .map(|i| op(CounterOp::Get, 0, 2 * i, 2 * i + 1))
            .collect();
        let _ = check_linearizable(CounterSpec::default(), &h);
    }

    #[test]
    fn windows_up_to_64_ops_are_accepted() {
        // The seed checker capped windows at 24 operations; the memoized
        // search takes the full bitmask range. 64 sequential counter ops
        // check instantly.
        let mut h = Vec::new();
        let mut total = 0i64;
        for i in 0..32u64 {
            h.push(op(CounterOp::Add(1), 0, 4 * i, 4 * i + 1));
            total += 1;
            h.push(op(CounterOp::Get, total, 4 * i + 2, 4 * i + 3));
        }
        assert_eq!(h.len(), 64);
        assert!(check_linearizable(CounterSpec::default(), &h));
    }

    #[test]
    fn memoization_handles_wide_concurrency() {
        // 40 fully-overlapping counter increments plus interleaved gets:
        // the plain Wing–Gong search would explore factorially many
        // orders; the memo collapses them by (mask, state).
        let n = 40u64;
        let h: Vec<Operation<CounterOp, i64>> = (0..n)
            .map(|i| op(CounterOp::Add(1), 0, 0, 100 + i))
            .collect();
        let start = std::time::Instant::now();
        assert!(check_linearizable(CounterSpec::default(), &h));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "memoized check took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn linearization_witness_is_legal() {
        let h = vec![
            op(QueueOp::Enqueue(1), QueueRes::Enqueued, 0, 5),
            op(QueueOp::Enqueue(2), QueueRes::Enqueued, 1, 2),
            op(QueueOp::Dequeue, QueueRes::Dequeued(Some(2)), 3, 4),
        ];
        let order = linearization(QueueSpec::default(), &h).expect("linearizable");
        // Replaying the witness order against a fresh spec reproduces
        // every recorded result.
        let mut spec = QueueSpec::default();
        for &i in &order {
            assert_eq!(spec.apply(&h[i].op), h[i].result);
        }
        // And the witness respects real time: op 1 returned before op 2
        // was invoked, so it must come first.
        let p1 = order.iter().position(|&i| i == 1).unwrap();
        let p2 = order.iter().position(|&i| i == 2).unwrap();
        assert!(p1 < p2);
    }

    #[test]
    fn shrinker_finds_minimal_core() {
        // A long linearizable prefix plus one impossible Get: shrinking
        // must cut it down to just the contradiction.
        let mut h: Vec<Operation<CounterOp, i64>> = (0..10)
            .map(|i| op(CounterOp::Add(1), 0, 2 * i, 2 * i + 1))
            .collect();
        h.push(op(CounterOp::Get, -7, 20, 21)); // impossible: counter never negative
        let spec = CounterSpec::default();
        assert!(!check_linearizable(spec.clone(), &h));
        let small = shrink_history(&spec, &h);
        assert!(!check_linearizable(spec.clone(), &small));
        // Locally minimal: removing any one op makes it linearizable.
        for i in 0..small.len() {
            let mut cand = small.clone();
            cand.remove(i);
            assert!(check_linearizable(spec.clone(), &cand));
        }
        assert_eq!(small.len(), 1, "core should be just the impossible Get");
    }

    #[test]
    fn shrinker_returns_linearizable_histories_untouched() {
        let h = vec![op(CounterOp::Add(1), 0, 0, 1), op(CounterOp::Get, 1, 2, 3)];
        assert_eq!(shrink_history(&CounterSpec::default(), &h), h);
    }
}

//! Executable linearizability checking (Herlihy & Wing, 1990).
//!
//! Linearizability is the correctness criterion for every structure in
//! this family: each operation must appear to take effect atomically at
//! some instant between its invocation and its response. This crate makes
//! the criterion *executable* for the test suite:
//!
//! 1. wrap concurrent calls in a [`Recorder`], which timestamps each
//!    operation's invocation and response with a global atomic clock;
//! 2. describe the abstract type with a sequential [`Spec`] (specs for
//!    stacks, queues, sets, registers and counters ship in [`specs`]);
//! 3. ask [`check_linearizable`] whether *any* sequential order of the
//!    recorded operations (a) respects the real-time order — an operation
//!    that returned before another was invoked must come first — and
//!    (b) makes the spec reproduce every recorded result.
//!
//! The search is the Wing–Gong algorithm: depth-first over the orders that
//! respect real time, backtracking when the spec disagrees. It is
//! exponential in the worst case, so keep recorded windows small (the
//! suite uses ≤ ~16 operations per window, which checks in microseconds).
//!
//! # Example
//!
//! ```
//! use cds_lincheck::{check_linearizable, Recorder};
//! use cds_lincheck::specs::{RegisterOp, RegisterSpec};
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicI64, Ordering};
//!
//! let reg = Arc::new(AtomicI64::new(0));
//! let recorder = Arc::new(Recorder::new());
//! let handles: Vec<_> = (0..2)
//!     .map(|i| {
//!         let reg = Arc::clone(&reg);
//!         let recorder = Arc::clone(&recorder);
//!         std::thread::spawn(move || {
//!             recorder.record(RegisterOp::Write(i + 1), || {
//!                 reg.store(i + 1, Ordering::SeqCst);
//!                 0
//!             });
//!             recorder.record(RegisterOp::Read, || reg.load(Ordering::SeqCst));
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! let history = Arc::try_unwrap(recorder).unwrap().into_history();
//! assert!(check_linearizable(RegisterSpec::default(), &history));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod specs;

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A sequential specification of an abstract data type.
///
/// `apply` runs one operation against the abstract state and returns the
/// result the sequential type would produce. The checker clones the state
/// while backtracking, so keep it small.
pub trait Spec: Clone {
    /// Operation descriptions (inputs).
    type Op;
    /// Operation results; compared against the recorded outputs.
    type Res: PartialEq;

    /// Applies `op` to the state, returning the sequential result.
    fn apply(&mut self, op: &Self::Op) -> Self::Res;
}

/// One completed operation in a recorded history.
#[derive(Debug, Clone)]
pub struct Operation<Op, Res> {
    /// What was invoked.
    pub op: Op,
    /// What it returned.
    pub result: Res,
    /// Logical invocation time.
    pub call: u64,
    /// Logical response time (`> call`).
    pub ret: u64,
}

/// Timestamps concurrent operations to build a checkable history.
///
/// Thread-safe: share it (e.g. in an `Arc`) among the worker threads and
/// wrap every operation in [`record`](Recorder::record).
pub struct Recorder<Op, Res> {
    clock: AtomicU64,
    ops: Mutex<Vec<Operation<Op, Res>>>,
}

impl<Op, Res> Recorder<Op, Res> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder {
            clock: AtomicU64::new(0),
            ops: Mutex::new(Vec::new()),
        }
    }

    /// Runs `f`, recording `op` with invocation/response timestamps and
    /// the produced result. Returns the result to the caller.
    pub fn record(&self, op: Op, f: impl FnOnce() -> Res) -> Res
    where
        Res: Clone,
    {
        let call = self.clock.fetch_add(1, Ordering::SeqCst);
        let result = f();
        let ret = self.clock.fetch_add(1, Ordering::SeqCst);
        self.ops.lock().unwrap().push(Operation {
            op,
            result: result.clone(),
            call,
            ret,
        });
        result
    }

    /// Finishes recording, returning the completed history.
    pub fn into_history(self) -> Vec<Operation<Op, Res>> {
        self.ops.into_inner().unwrap()
    }
}

impl<Op, Res> Default for Recorder<Op, Res> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Op, Res> fmt::Debug for Recorder<Op, Res> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("recorded", &self.ops.lock().unwrap().len())
            .finish()
    }
}

/// Checks whether `history` is linearizable with respect to `spec`.
///
/// Wing–Gong search: try, in turn, every operation that is *minimal* in
/// the real-time order (no other pending operation returned before it was
/// invoked), apply it to a copy of the spec state, and recurse; succeed
/// when every operation has been placed with matching results.
///
/// Worst-case exponential; intended for small windows (≤ ~16 operations).
pub fn check_linearizable<S: Spec>(spec: S, history: &[Operation<S::Op, S::Res>]) -> bool {
    let n = history.len();
    assert!(
        n <= 24,
        "history too large for exhaustive checking ({n} ops); record smaller windows"
    );
    let mut remaining: Vec<usize> = (0..n).collect();
    dfs(&spec, &mut remaining, history)
}

fn dfs<S: Spec>(
    spec: &S,
    remaining: &mut Vec<usize>,
    history: &[Operation<S::Op, S::Res>],
) -> bool {
    if remaining.is_empty() {
        return true;
    }
    // Minimal operations: i such that no other remaining j returned before
    // i was invoked (otherwise j must be linearized first).
    for idx in 0..remaining.len() {
        let i = remaining[idx];
        let minimal = remaining
            .iter()
            .all(|&j| j == i || history[j].ret > history[i].call);
        if !minimal {
            continue;
        }
        let mut next = spec.clone();
        if next.apply(&history[i].op) == history[i].result {
            remaining.swap_remove(idx);
            if dfs(&next, remaining, history) {
                return true;
            }
            // Restore `remaining` (swap_remove moved the tail element in).
            remaining.push(i);
            let last = remaining.len() - 1;
            remaining.swap(idx, last);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::specs::*;
    use super::*;

    fn op<OpT, ResT>(op: OpT, result: ResT, call: u64, ret: u64) -> Operation<OpT, ResT> {
        Operation {
            op,
            result,
            call,
            ret,
        }
    }

    #[test]
    fn sequential_counter_history_accepts() {
        let h = vec![op(CounterOp::Add(1), 0, 0, 1), op(CounterOp::Get, 1, 2, 3)];
        assert!(check_linearizable(CounterSpec::default(), &h));
    }

    #[test]
    fn wrong_result_rejects() {
        let h = vec![op(CounterOp::Add(1), 0, 0, 1), op(CounterOp::Get, 5, 2, 3)];
        assert!(!check_linearizable(CounterSpec::default(), &h));
    }

    #[test]
    fn real_time_order_is_enforced() {
        // Get returned 0 strictly AFTER Add completed: not linearizable.
        let h = vec![op(CounterOp::Add(1), 0, 0, 1), op(CounterOp::Get, 0, 2, 3)];
        assert!(!check_linearizable(CounterSpec::default(), &h));
        // But a Get overlapping the Add may legally return 0.
        let h = vec![op(CounterOp::Add(1), 0, 0, 3), op(CounterOp::Get, 0, 1, 2)];
        assert!(check_linearizable(CounterSpec::default(), &h));
    }

    #[test]
    fn concurrent_stack_pops_commute() {
        // Two overlapping pushes then two overlapping pops that see them in
        // the opposite order: linearizable (the pushes overlap).
        let h = vec![
            op(StackOp::Push(1), StackRes::Pushed, 0, 3),
            op(StackOp::Push(2), StackRes::Pushed, 1, 2),
            op(StackOp::Pop, StackRes::Popped(Some(1)), 4, 5),
            op(StackOp::Pop, StackRes::Popped(Some(2)), 6, 7),
        ];
        assert!(check_linearizable(StackSpec::default(), &h));
    }

    #[test]
    fn stack_lifo_violation_rejects() {
        // Sequential pushes (non-overlapping) must pop in LIFO order.
        let h = vec![
            op(StackOp::Push(1), StackRes::Pushed, 0, 1),
            op(StackOp::Push(2), StackRes::Pushed, 2, 3),
            op(StackOp::Pop, StackRes::Popped(Some(1)), 4, 5),
            op(StackOp::Pop, StackRes::Popped(Some(2)), 6, 7),
        ];
        assert!(!check_linearizable(StackSpec::default(), &h));
    }

    #[test]
    fn queue_fifo_is_checked() {
        let good = vec![
            op(QueueOp::Enqueue(1), QueueRes::Enqueued, 0, 1),
            op(QueueOp::Enqueue(2), QueueRes::Enqueued, 2, 3),
            op(QueueOp::Dequeue, QueueRes::Dequeued(Some(1)), 4, 5),
        ];
        assert!(check_linearizable(QueueSpec::default(), &good));
        let bad = vec![
            op(QueueOp::Enqueue(1), QueueRes::Enqueued, 0, 1),
            op(QueueOp::Enqueue(2), QueueRes::Enqueued, 2, 3),
            op(QueueOp::Dequeue, QueueRes::Dequeued(Some(2)), 4, 5),
        ];
        assert!(!check_linearizable(QueueSpec::default(), &bad));
    }

    #[test]
    fn set_duplicate_insert_semantics() {
        let h = vec![
            op(SetOp::Insert(7), true, 0, 1),
            op(SetOp::Insert(7), false, 2, 3),
            op(SetOp::Remove(7), true, 4, 5),
            op(SetOp::Contains(7), false, 6, 7),
        ];
        assert!(check_linearizable(SetSpec::default(), &h));
        // Two non-overlapping successful inserts of the same key: illegal.
        let bad = vec![
            op(SetOp::Insert(7), true, 0, 1),
            op(SetOp::Insert(7), true, 2, 3),
        ];
        assert!(!check_linearizable(SetSpec::default(), &bad));
    }

    #[test]
    fn recorder_round_trip() {
        let r: Recorder<CounterOp, i64> = Recorder::new();
        let out = r.record(CounterOp::Add(5), || 0);
        assert_eq!(out, 0);
        r.record(CounterOp::Get, || 5);
        let h = r.into_history();
        assert_eq!(h.len(), 2);
        assert!(h[0].call < h[0].ret);
        assert!(check_linearizable(CounterSpec::default(), &h));
    }

    #[test]
    #[should_panic(expected = "history too large")]
    fn oversized_history_panics() {
        let h: Vec<Operation<CounterOp, i64>> = (0..30)
            .map(|i| op(CounterOp::Get, 0, 2 * i, 2 * i + 1))
            .collect();
        let _ = check_linearizable(CounterSpec::default(), &h);
    }
}

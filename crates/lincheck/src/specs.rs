//! Sequential specifications for the family's abstract types.

use std::collections::{BTreeSet, VecDeque};

use crate::Spec;

/// Stack operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackOp<T> {
    /// Push a value.
    Push(T),
    /// Pop the top value.
    Pop,
}

/// Stack results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackRes<T> {
    /// A push completed.
    Pushed,
    /// What a pop returned.
    Popped(Option<T>),
}

/// Sequential LIFO stack.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct StackSpec<T> {
    items: Vec<T>,
}

impl<T: Clone + Eq + std::hash::Hash> Spec for StackSpec<T> {
    type Op = StackOp<T>;
    type Res = StackRes<T>;

    fn apply(&mut self, op: &StackOp<T>) -> StackRes<T> {
        match op {
            StackOp::Push(v) => {
                self.items.push(v.clone());
                StackRes::Pushed
            }
            StackOp::Pop => StackRes::Popped(self.items.pop()),
        }
    }
}

/// Queue operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueOp<T> {
    /// Enqueue at the tail.
    Enqueue(T),
    /// Dequeue from the head.
    Dequeue,
}

/// Queue results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueRes<T> {
    /// An enqueue completed.
    Enqueued,
    /// What a dequeue returned.
    Dequeued(Option<T>),
}

/// Sequential FIFO queue.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct QueueSpec<T> {
    items: VecDeque<T>,
}

impl<T: Clone + Eq + std::hash::Hash> Spec for QueueSpec<T> {
    type Op = QueueOp<T>;
    type Res = QueueRes<T>;

    fn apply(&mut self, op: &QueueOp<T>) -> QueueRes<T> {
        match op {
            QueueOp::Enqueue(v) => {
                self.items.push_back(v.clone());
                QueueRes::Enqueued
            }
            QueueOp::Dequeue => QueueRes::Dequeued(self.items.pop_front()),
        }
    }
}

/// Work-stealing deque operations (Chase–Lev): the owner pushes and pops
/// at the bottom; thieves steal from the top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DequeOp<T> {
    /// Owner pushes at the bottom (the LIFO end).
    PushBottom(T),
    /// Owner pops from the bottom.
    PopBottom,
    /// A thief steals from the top (the FIFO end).
    Steal,
}

/// Work-stealing deque results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DequeRes<T> {
    /// A push completed.
    Pushed,
    /// What the owner's pop returned.
    Popped(Option<T>),
    /// What a steal returned (`None` = observed empty).
    Stolen(Option<T>),
}

/// Sequential work-stealing deque: owner end is LIFO, thief end is FIFO.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct DequeSpec<T> {
    items: VecDeque<T>,
}

impl<T: Clone + PartialEq + Eq + std::hash::Hash> Spec for DequeSpec<T> {
    type Op = DequeOp<T>;
    type Res = DequeRes<T>;

    fn apply(&mut self, op: &DequeOp<T>) -> DequeRes<T> {
        match op {
            DequeOp::PushBottom(v) => {
                self.items.push_back(v.clone());
                DequeRes::Pushed
            }
            DequeOp::PopBottom => DequeRes::Popped(self.items.pop_back()),
            DequeOp::Steal => DequeRes::Stolen(self.items.pop_front()),
        }
    }
}

/// Set (dictionary) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetOp<T> {
    /// Insert-if-absent.
    Insert(T),
    /// Remove-if-present.
    Remove(T),
    /// Membership query.
    Contains(T),
}

/// Sequential ordered set with dictionary semantics; results are `bool`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct SetSpec<T: Ord> {
    items: BTreeSet<T>,
}

impl<T: Ord + Clone + std::hash::Hash> Spec for SetSpec<T> {
    type Op = SetOp<T>;
    type Res = bool;

    fn apply(&mut self, op: &SetOp<T>) -> bool {
        match op {
            SetOp::Insert(v) => self.items.insert(v.clone()),
            SetOp::Remove(v) => self.items.remove(v),
            SetOp::Contains(v) => self.items.contains(v),
        }
    }
}

/// Map (dictionary) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapOp<K, V> {
    /// Insert-if-absent.
    Insert(K, V),
    /// Remove-if-present.
    Remove(K),
    /// Lookup.
    Get(K),
    /// Membership test.
    ContainsKey(K),
    /// Entry count — included so resize tests can pin down `len`'s
    /// linearization point while buckets are mid-migration. Only generate
    /// it against maps whose `len` *is* linearizable (a single counter
    /// updated inside the operation's critical section); quiescently
    /// consistent counters like the split-ordered map's will legitimately
    /// fail.
    Len,
}

/// Map results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapRes<V> {
    /// Whether an insert or remove took effect.
    Changed(bool),
    /// What a get returned.
    Got(Option<V>),
    /// What a membership test returned.
    Has(bool),
    /// What `len` returned.
    Len(usize),
}

/// Sequential map with insert-if-absent semantics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct MapSpec<K: Ord, V> {
    items: std::collections::BTreeMap<K, V>,
}

impl<K: Ord, V> MapSpec<K, V> {
    /// A spec whose abstract state starts with `items` already present.
    ///
    /// For windows whose structure is pre-filled during `setup`: the
    /// setup operations are not part of the recorded history, so the
    /// spec's initial state must match the structure's.
    pub fn prefilled(items: impl IntoIterator<Item = (K, V)>) -> Self {
        MapSpec {
            items: items.into_iter().collect(),
        }
    }
}

impl<K: Ord + Clone + std::hash::Hash, V: Clone + Eq + std::hash::Hash> Spec for MapSpec<K, V> {
    type Op = MapOp<K, V>;
    type Res = MapRes<V>;

    fn apply(&mut self, op: &MapOp<K, V>) -> MapRes<V> {
        match op {
            MapOp::Insert(k, v) => {
                if self.items.contains_key(k) {
                    MapRes::Changed(false)
                } else {
                    self.items.insert(k.clone(), v.clone());
                    MapRes::Changed(true)
                }
            }
            MapOp::Remove(k) => MapRes::Changed(self.items.remove(k).is_some()),
            MapOp::Get(k) => MapRes::Got(self.items.get(k).cloned()),
            MapOp::ContainsKey(k) => MapRes::Has(self.items.contains_key(k)),
            MapOp::Len => MapRes::Len(self.items.len()),
        }
    }
}

/// Min-priority-queue operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PqOp<T> {
    /// Insert-if-absent.
    Insert(T),
    /// Remove and return the minimum.
    RemoveMin,
}

/// Priority-queue results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PqRes<T> {
    /// Whether an insert took effect.
    Inserted(bool),
    /// What remove-min returned.
    Removed(Option<T>),
}

/// Sequential min-priority queue (set-like: duplicates rejected).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct PqSpec<T: Ord> {
    items: BTreeSet<T>,
}

impl<T: Ord + Clone + std::hash::Hash> Spec for PqSpec<T> {
    type Op = PqOp<T>;
    type Res = PqRes<T>;

    fn apply(&mut self, op: &PqOp<T>) -> PqRes<T> {
        match op {
            PqOp::Insert(v) => PqRes::Inserted(self.items.insert(v.clone())),
            PqOp::RemoveMin => {
                let min = self.items.iter().next().cloned();
                if let Some(m) = &min {
                    self.items.remove(m);
                }
                PqRes::Removed(min)
            }
        }
    }
}

/// Counter operations (results are the counter value for `Get`, `0` for
/// `Add` — a placeholder since `add` returns nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CounterOp {
    /// Add a delta.
    Add(i64),
    /// Read the value.
    Get,
}

/// Sequential counter; results are `i64`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct CounterSpec {
    value: i64,
}

impl Spec for CounterSpec {
    type Op = CounterOp;
    type Res = i64;

    fn apply(&mut self, op: &CounterOp) -> i64 {
        match op {
            CounterOp::Add(d) => {
                self.value += d;
                0
            }
            CounterOp::Get => self.value,
        }
    }
}

/// Eventcount (gate) operations, modelling the prepare/re-check/commit
/// protocol of `cds_exec`'s `Parker`: a `Signal` publishes a flag and
/// wakes waiters; an `Await` announces intent to sleep (`prepare`),
/// re-checks the flag, and either commits to having been woken or backs
/// out (`cancel`). `Await` never actually blocks — bounded windows need
/// every operation to return — so its result reports what the re-check
/// observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventcountOp {
    /// Set the flag, then wake all prepared waiters.
    Signal,
    /// Prepare to wait, re-check the flag, back out.
    Await,
}

/// Eventcount results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventcountRes {
    /// A signal completed.
    Signaled,
    /// The re-check observed the flag: this await would have returned
    /// immediately (or been woken) rather than slept.
    Woken,
    /// The re-check observed no flag: this await would have slept. Legal
    /// only while no `Signal` has linearized before it — an `Await` that
    /// returns `WouldBlock` *after* a completed `Signal` is exactly a
    /// lost wakeup.
    WouldBlock,
}

/// Sequential eventcount: one latch-like flag.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct EventcountSpec {
    signaled: bool,
}

impl Spec for EventcountSpec {
    type Op = EventcountOp;
    type Res = EventcountRes;

    fn apply(&mut self, op: &EventcountOp) -> EventcountRes {
        match op {
            EventcountOp::Signal => {
                self.signaled = true;
                EventcountRes::Signaled
            }
            EventcountOp::Await => {
                if self.signaled {
                    EventcountRes::Woken
                } else {
                    EventcountRes::WouldBlock
                }
            }
        }
    }
}

/// Channel operations, modelling `cds_chan`'s MPMC channel: FIFO buffer
/// (optionally capacity-bounded), a sticky closed flag, and two-phase
/// close semantics (send-after-close disconnects, recv-after-close
/// drains residual messages before reporting closed).
///
/// Blocking operations are modelled atomically: a `Send` on a full open
/// channel or a `Recv` on an empty open channel yields
/// [`ChanRes::WouldBlock`] from the spec — a result no *completed*
/// operation ever records — so a history in which such an operation
/// completed anyway (e.g. a receiver that reported `Closed` while an
/// `Ok`-sent message was still in the buffer) admits no linearization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChanOp {
    /// Blocking send of a value.
    Send(u32),
    /// Non-blocking send of a value.
    TrySend(u32),
    /// Blocking receive.
    Recv,
    /// Non-blocking receive.
    TryRecv,
    /// Close the channel (idempotent; result records whether this call
    /// made the transition).
    Close,
}

/// Channel results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChanRes {
    /// A send completed.
    Sent,
    /// A send (of either flavor) observed the channel closed.
    Disconnected,
    /// A `TrySend` observed a full buffer.
    Full,
    /// A receive delivered this value.
    Received(u32),
    /// A `TryRecv` observed an open, empty channel.
    Empty,
    /// A receive observed the channel closed *and* drained.
    Closed,
    /// The operation would have parked at this linearization point;
    /// legal for no completed operation (see the type docs).
    WouldBlock,
    /// A `Close` completed; `true` iff it performed the transition.
    CloseDone(bool),
}

/// Sequential MPMC channel with close semantics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ChannelSpec {
    buffer: VecDeque<u32>,
    closed: bool,
    capacity: Option<usize>,
}

impl ChannelSpec {
    /// An unbounded channel (sends never block).
    pub fn unbounded() -> Self {
        ChannelSpec::default()
    }

    /// A channel bounded at `capacity` messages. Match this to the
    /// *real* capacity of the structure under test
    /// (`cds_chan::Channel::capacity`), which rounds up to a power of
    /// two of at least 2.
    pub fn bounded(capacity: usize) -> Self {
        ChannelSpec {
            capacity: Some(capacity),
            ..ChannelSpec::default()
        }
    }

    fn full(&self) -> bool {
        self.capacity.is_some_and(|c| self.buffer.len() >= c)
    }
}

impl Spec for ChannelSpec {
    type Op = ChanOp;
    type Res = ChanRes;

    fn apply(&mut self, op: &ChanOp) -> ChanRes {
        match op {
            ChanOp::Send(v) => {
                if self.closed {
                    ChanRes::Disconnected
                } else if self.full() {
                    ChanRes::WouldBlock
                } else {
                    self.buffer.push_back(*v);
                    ChanRes::Sent
                }
            }
            ChanOp::TrySend(v) => {
                if self.closed {
                    ChanRes::Disconnected
                } else if self.full() {
                    ChanRes::Full
                } else {
                    self.buffer.push_back(*v);
                    ChanRes::Sent
                }
            }
            ChanOp::Recv => match self.buffer.pop_front() {
                Some(v) => ChanRes::Received(v),
                None if self.closed => ChanRes::Closed,
                None => ChanRes::WouldBlock,
            },
            ChanOp::TryRecv => match self.buffer.pop_front() {
                Some(v) => ChanRes::Received(v),
                None if self.closed => ChanRes::Closed,
                None => ChanRes::Empty,
            },
            ChanOp::Close => {
                let was = self.closed;
                self.closed = true;
                ChanRes::CloseDone(!was)
            }
        }
    }
}

/// Register operations (results are the read value for `Read`, `0` for
/// `Write`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterOp {
    /// Store a value.
    Write(i64),
    /// Load the value.
    Read,
}

/// Sequential read/write register; results are `i64`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct RegisterSpec {
    value: i64,
}

impl Spec for RegisterSpec {
    type Op = RegisterOp;
    type Res = i64;

    fn apply(&mut self, op: &RegisterOp) -> i64 {
        match op {
            RegisterOp::Write(v) => {
                self.value = *v;
                0
            }
            RegisterOp::Read => self.value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Spec;

    #[test]
    fn stack_spec_is_lifo() {
        let mut s = StackSpec::default();
        s.apply(&StackOp::Push(1));
        s.apply(&StackOp::Push(2));
        assert_eq!(s.apply(&StackOp::Pop), StackRes::Popped(Some(2)));
        assert_eq!(s.apply(&StackOp::Pop), StackRes::Popped(Some(1)));
        assert_eq!(s.apply(&StackOp::Pop), StackRes::Popped(None));
    }

    #[test]
    fn map_spec_insert_if_absent() {
        let mut m = MapSpec::default();
        assert_eq!(m.apply(&MapOp::Insert(1, "a")), MapRes::Changed(true));
        assert_eq!(m.apply(&MapOp::Insert(1, "b")), MapRes::Changed(false));
        assert_eq!(m.apply(&MapOp::Get(1)), MapRes::Got(Some("a")));
    }

    #[test]
    fn pq_spec_returns_minimum() {
        let mut p = PqSpec::default();
        p.apply(&PqOp::Insert(5));
        p.apply(&PqOp::Insert(2));
        assert_eq!(p.apply(&PqOp::RemoveMin), PqRes::Removed(Some(2)));
    }

    #[test]
    fn channel_spec_two_phase_close() {
        let mut c = ChannelSpec::unbounded();
        assert_eq!(c.apply(&ChanOp::Send(1)), ChanRes::Sent);
        assert_eq!(c.apply(&ChanOp::Send(2)), ChanRes::Sent);
        assert_eq!(c.apply(&ChanOp::Close), ChanRes::CloseDone(true));
        assert_eq!(c.apply(&ChanOp::Close), ChanRes::CloseDone(false));
        assert_eq!(c.apply(&ChanOp::Send(3)), ChanRes::Disconnected);
        // Residual messages drain before Closed is ever reported.
        assert_eq!(c.apply(&ChanOp::Recv), ChanRes::Received(1));
        assert_eq!(c.apply(&ChanOp::TryRecv), ChanRes::Received(2));
        assert_eq!(c.apply(&ChanOp::Recv), ChanRes::Closed);
        assert_eq!(c.apply(&ChanOp::TryRecv), ChanRes::Closed);
    }

    #[test]
    fn channel_spec_bounded_blocks_and_fills() {
        let mut c = ChannelSpec::bounded(2);
        assert_eq!(c.apply(&ChanOp::TrySend(1)), ChanRes::Sent);
        assert_eq!(c.apply(&ChanOp::Send(2)), ChanRes::Sent);
        assert_eq!(c.apply(&ChanOp::TrySend(3)), ChanRes::Full);
        assert_eq!(c.apply(&ChanOp::Send(3)), ChanRes::WouldBlock);
        assert_eq!(c.apply(&ChanOp::TryRecv), ChanRes::Received(1));
        assert_eq!(c.apply(&ChanOp::Send(3)), ChanRes::Sent);
        // Blocking recv on an open empty channel has no completed result.
        let mut empty = ChannelSpec::bounded(2);
        assert_eq!(empty.apply(&ChanOp::Recv), ChanRes::WouldBlock);
        assert_eq!(empty.apply(&ChanOp::TryRecv), ChanRes::Empty);
    }
}

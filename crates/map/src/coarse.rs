use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use cds_core::ConcurrentMap;
use parking_lot::Mutex;

/// A `HashMap` behind one mutex: the coarse-grained baseline (E5).
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentMap;
/// use cds_map::CoarseMap;
///
/// let m = CoarseMap::new();
/// m.insert("k", 1);
/// assert_eq!(m.get(&"k"), Some(1));
/// ```
pub struct CoarseMap<K, V> {
    inner: Mutex<HashMap<K, V>>,
}

impl<K, V> CoarseMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        CoarseMap {
            inner: Mutex::new(HashMap::new()),
        }
    }
}

impl<K, V> Default for CoarseMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Send, V: Clone + Send> ConcurrentMap<K, V> for CoarseMap<K, V> {
    const NAME: &'static str = "coarse";

    fn insert(&self, key: K, value: V) -> bool {
        let mut inner = self.inner.lock();
        if let std::collections::hash_map::Entry::Vacant(e) = inner.entry(key) {
            e.insert(value);
            true
        } else {
            false
        }
    }

    fn remove(&self, key: &K) -> bool {
        self.inner.lock().remove(key).is_some()
    }

    fn get(&self, key: &K) -> Option<V> {
        self.inner.lock().get(key).cloned()
    }

    fn len(&self) -> usize {
        self.inner.lock().len()
    }
}

impl<K, V> fmt::Debug for CoarseMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoarseMap")
            .field("len", &self.inner.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentMap;

    #[test]
    fn insert_if_absent() {
        let m = CoarseMap::new();
        assert!(m.insert(1, 10));
        assert!(!m.insert(1, 20));
        assert_eq!(m.get(&1), Some(10));
    }
}

use cds_atomic::{AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::fmt;
use std::hash::{BuildHasher, Hash, RandomState};

use cds_core::ConcurrentMap;
use parking_lot::Mutex;

/// A hash map with **lock striping** and an all-stripe resize
/// (Herlihy & Shavit ch. 13).
///
/// A fixed array of `L` locks guards a growable table of buckets. An
/// operation locks stripe `hash % L` and then works on bucket
/// `hash % table.len()`; since the table length is always a multiple of
/// `L`, every key of a bucket maps to the same stripe, so one stripe lock
/// suffices. A resize acquires *all* stripes in index order (deadlock-free)
/// and doubles the table; the number of locks never changes, so contention
/// eventually grows with core count — the measured middle ground of
/// experiment E5.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentMap;
/// use cds_map::StripedHashMap;
///
/// let m = StripedHashMap::new();
/// for i in 0..100 {
///     m.insert(i, i * i);
/// }
/// assert_eq!(m.get(&12), Some(144));
/// ```
pub struct StripedHashMap<K, V, S = RandomState> {
    locks: Box<[Mutex<()>]>,
    /// Replaced only while *all* stripes are held; read under any one
    /// stripe.
    #[allow(clippy::type_complexity)]
    table: UnsafeCell<Vec<UnsafeCell<Vec<(K, V)>>>>,
    size: AtomicUsize,
    hasher: S,
}

// SAFETY: every bucket is guarded by exactly one stripe lock (table.len()
// is a multiple of locks.len()); the table vector itself is only replaced
// under all locks.
unsafe impl<K: Send, V: Send, S: Send> Send for StripedHashMap<K, V, S> {}
unsafe impl<K: Send, V: Send, S: Sync> Sync for StripedHashMap<K, V, S> {}

const STRIPES: usize = 16;
const INITIAL_BUCKETS: usize = 16;
const MAX_LOAD_FACTOR: usize = 4;

impl<K: Hash + Eq, V> StripedHashMap<K, V, RandomState> {
    /// Creates an empty map with the default hasher.
    pub fn new() -> Self {
        Self::with_hasher(RandomState::new())
    }
}

impl<K: Hash + Eq, V> Default for StripedHashMap<K, V, RandomState> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V> StripedHashMap<K, V, RandomState> {
    /// Creates an empty map with explicit geometry: `stripes` locks over
    /// `buckets` initial buckets (both rounded up to powers of two, and
    /// `buckets` to at least `stripes` so the table length stays a
    /// multiple of the lock count across doublings).
    ///
    /// Tiny geometries let bounded stress windows reach the all-stripe
    /// resize path: with one stripe and one bucket, the fifth insert
    /// already doubles the table.
    pub fn with_config(stripes: usize, buckets: usize) -> Self {
        let stripes = stripes.next_power_of_two().max(1);
        let buckets = buckets.next_power_of_two().max(stripes);
        StripedHashMap {
            locks: (0..stripes).map(|_| Mutex::new(())).collect(),
            table: UnsafeCell::new((0..buckets).map(|_| UnsafeCell::new(Vec::new())).collect()),
            size: AtomicUsize::new(0),
            hasher: RandomState::new(),
        }
    }
}

impl<K: Hash + Eq, V, S: BuildHasher> StripedHashMap<K, V, S> {
    /// Creates an empty map with a caller-supplied hasher.
    pub fn with_hasher(hasher: S) -> Self {
        StripedHashMap {
            locks: (0..STRIPES).map(|_| Mutex::new(())).collect(),
            table: UnsafeCell::new(
                (0..INITIAL_BUCKETS)
                    .map(|_| UnsafeCell::new(Vec::new()))
                    .collect(),
            ),
            size: AtomicUsize::new(0),
            hasher,
        }
    }

    fn hash(&self, key: &K) -> usize {
        self.hasher.hash_one(key) as usize
    }

    /// Runs `f` on the key's bucket while holding its stripe lock.
    fn with_bucket<R>(&self, hash: usize, f: impl FnOnce(&mut Vec<(K, V)>) -> R) -> R {
        let _guard = self.locks[hash % self.locks.len()].lock();
        // SAFETY: the table pointer is stable while we hold a stripe (a
        // resize needs every stripe), and the chosen bucket is guarded by
        // exactly this stripe.
        let table = unsafe { &*self.table.get() };
        let bucket = unsafe { &mut *table[hash % table.len()].get() };
        f(bucket)
    }

    /// Doubles the table if it still has `old_len` buckets.
    fn resize(&self, old_len: usize) {
        cds_core::stress::yield_point();
        // Acquire every stripe in index order (deadlock-free).
        let _guards: Vec<_> = self.locks.iter().map(|l| l.lock()).collect();
        // SAFETY: all stripes held — exclusive access to the table.
        let table = unsafe { &mut *self.table.get() };
        if table.len() != old_len {
            return; // someone else resized first
        }
        let new_len = old_len * 2;
        let new_table: Vec<UnsafeCell<Vec<(K, V)>>> =
            (0..new_len).map(|_| UnsafeCell::new(Vec::new())).collect();
        for bucket in table.drain(..) {
            cds_core::stress::yield_point();
            for (k, v) in bucket.into_inner() {
                let idx = self.hash(&k) % new_len;
                // SAFETY: new_table is local to this call.
                unsafe { &mut *new_table[idx].get() }.push((k, v));
            }
        }
        *table = new_table;
    }

    /// Current bucket count (diagnostics; racy outside locks).
    pub fn bucket_count(&self) -> usize {
        let _guard = self.locks[0].lock();
        // SAFETY: a stripe is held.
        unsafe { &*self.table.get() }.len()
    }
}

impl<K, V, S> ConcurrentMap<K, V> for StripedHashMap<K, V, S>
where
    K: Hash + Eq + Send,
    V: Clone + Send,
    S: BuildHasher + Send + Sync,
{
    const NAME: &'static str = "striped";

    fn insert(&self, key: K, value: V) -> bool {
        let hash = self.hash(&key);
        let (inserted, needs_resize) = self.with_bucket(hash, |bucket| {
            if bucket.iter().any(|(k, _)| *k == key) {
                (false, None)
            } else {
                bucket.push((key, value));
                let size = self.size.fetch_add(1, Ordering::Relaxed) + 1;
                // SAFETY: stripe held (we are inside with_bucket's closure,
                // called under the lock).
                let table_len = unsafe { &*self.table.get() }.len();
                let resize = if size > table_len * MAX_LOAD_FACTOR {
                    Some(table_len)
                } else {
                    None
                };
                (true, resize)
            }
        });
        if let Some(old_len) = needs_resize {
            self.resize(old_len);
        }
        inserted
    }

    fn remove(&self, key: &K) -> bool {
        let hash = self.hash(key);
        self.with_bucket(hash, |bucket| {
            if let Some(pos) = bucket.iter().position(|(k, _)| k == key) {
                bucket.swap_remove(pos);
                self.size.fetch_sub(1, Ordering::Relaxed);
                true
            } else {
                false
            }
        })
    }

    fn get(&self, key: &K) -> Option<V> {
        let hash = self.hash(key);
        self.with_bucket(hash, |bucket| {
            bucket
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
        })
    }

    fn len(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }
}

impl<K, V, S> fmt::Debug for StripedHashMap<K, V, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StripedHashMap")
            .field("len", &self.size.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<K, V> FromIterator<(K, V)> for StripedHashMap<K, V, RandomState>
where
    K: Hash + Eq + Send,
    V: Clone + Send,
{
    /// Collects key/value pairs; on duplicate keys the **first** wins
    /// (insert-if-absent semantics).
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let map = StripedHashMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentMap;
    use std::sync::Arc;

    #[test]
    fn resize_preserves_entries() {
        let m: StripedHashMap<u64, u64> = StripedHashMap::new();
        let before = m.bucket_count();
        for i in 0..1_000 {
            assert!(m.insert(i, i));
        }
        assert!(m.bucket_count() > before, "table never grew");
        for i in 0..1_000 {
            assert_eq!(m.get(&i), Some(i));
        }
    }

    #[test]
    fn concurrent_resize_and_reads() {
        let m: Arc<StripedHashMap<u64, u64>> = Arc::new(StripedHashMap::new());
        let writers: Vec<_> = (0..2)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        m.insert(t * 10_000 + i, i);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let _ = m.get(&i);
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 4_000);
    }

    #[test]
    fn swap_remove_does_not_lose_entries() {
        let m: StripedHashMap<u64, u64> = StripedHashMap::new();
        for i in 0..64 {
            m.insert(i, i);
        }
        // Remove every other key; the rest must remain reachable.
        for i in (0..64).step_by(2) {
            assert!(m.remove(&i));
        }
        for i in (1..64).step_by(2) {
            assert_eq!(m.get(&i), Some(i));
        }
        assert_eq!(m.len(), 32);
    }
}

//! Concurrent hash maps.
//!
//! Five implementations of [`cds_core::ConcurrentMap`] spanning the
//! classical design space:
//!
//! * [`CoarseMap`] — `std::collections::HashMap` behind one mutex; the
//!   baseline of experiment E5.
//! * [`StripedHashMap`] — **lock striping** (Herlihy & Shavit ch. 13): a
//!   fixed array of locks guards a growable bucket table, so operations on
//!   different stripes proceed in parallel; a resize briefly acquires every
//!   stripe. Because the table length is always a multiple of the lock
//!   count, keys in one bucket always map to the same stripe.
//! * [`BucketedHashSet`] — Michael's lock-free hash set (PPoPP 2002): a
//!   *fixed* array of Harris–Michael lists; fully lock-free but cannot
//!   grow.
//! * [`SplitOrderedHashMap`] — Shalev & Shavit's **split-ordered list**
//!   (JACM 2006): the only known way to make a lock-free hash table *grow*
//!   without ever moving an item. All items live in one lock-free sorted
//!   list ordered by bit-reversed hash; the "table" is just an array of
//!   shortcut pointers to *dummy* nodes, and doubling the table splits each
//!   bucket logically — recursively — by inserting one new dummy per new
//!   bucket.
//! * [`ResizingMap`] — a production-style **sharded map with cooperative
//!   incremental migration**: per-shard bucket tables double when a shard
//!   exceeds its load factor, and every thread that touches a resizing
//!   shard helps move a few buckets — no stop-the-world pause, with old
//!   bucket arrays retired through the [`cds_reclaim::Reclaimer`] trait.
//!
//! # Example
//!
//! ```
//! use cds_core::ConcurrentMap;
//! use cds_map::StripedHashMap;
//!
//! let m = StripedHashMap::new();
//! assert!(m.insert(1, "one"));
//! assert_eq!(m.get(&1), Some("one"));
//! assert!(m.remove(&1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bucketed;
mod coarse;
mod resizing;
mod split_ordered;
mod striped;

pub use bucketed::BucketedHashSet;
pub use coarse::CoarseMap;
#[cfg(feature = "stress")]
#[doc(hidden)]
pub use resizing::set_migration_gap;
pub use resizing::ResizingMap;
pub use split_ordered::SplitOrderedHashMap;
pub use striped::StripedHashMap;

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentMap;
    use std::sync::Arc;

    fn map_semantics<M: ConcurrentMap<u64, String> + Default>() {
        let m = M::default();
        assert!(m.is_empty());
        assert_eq!(m.get(&1), None);
        assert!(!m.remove(&1));
        assert!(m.insert(1, "one".into()));
        assert!(!m.insert(1, "uno".into()), "insert-if-absent must reject");
        assert_eq!(m.get(&1).as_deref(), Some("one"));
        assert!(m.contains_key(&1));
        assert_eq!(m.len(), 1);
        assert!(m.remove(&1));
        assert!(!m.contains_key(&1));
        assert!(m.is_empty());
    }

    fn grows_past_initial_capacity<M: ConcurrentMap<u64, u64> + Default>() {
        let m = M::default();
        for i in 0..10_000 {
            assert!(m.insert(i, i * 2));
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000 {
            assert_eq!(m.get(&i), Some(i * 2), "lost key {i} after growth");
        }
    }

    fn concurrent_disjoint_inserts<M: ConcurrentMap<u64, u64> + Default + 'static>() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 2_000;
        let m = Arc::new(M::default());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let k = t * PER_THREAD + i;
                        assert!(m.insert(k, k + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len() as u64, THREADS * PER_THREAD);
        for k in 0..THREADS * PER_THREAD {
            assert_eq!(m.get(&k), Some(k + 1), "missing {k}");
        }
    }

    fn one_insert_winner<M: ConcurrentMap<u64, u64> + Default + 'static>() {
        for round in 0..10 {
            let m = Arc::new(M::default());
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let m = Arc::clone(&m);
                    std::thread::spawn(move || m.insert(round, t))
                })
                .collect();
            let wins = handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&w| w)
                .count();
            assert_eq!(wins, 1);
            assert_eq!(m.len(), 1);
        }
    }

    #[test]
    fn all_maps_have_dictionary_semantics() {
        map_semantics::<CoarseMap<u64, String>>();
        map_semantics::<StripedHashMap<u64, String>>();
        map_semantics::<SplitOrderedHashMap<u64, String>>();
        map_semantics::<ResizingMap<u64, String>>();
    }

    #[test]
    fn all_maps_grow() {
        grows_past_initial_capacity::<CoarseMap<u64, u64>>();
        grows_past_initial_capacity::<StripedHashMap<u64, u64>>();
        grows_past_initial_capacity::<SplitOrderedHashMap<u64, u64>>();
        grows_past_initial_capacity::<ResizingMap<u64, u64>>();
    }

    #[test]
    fn disjoint_inserts_all_land() {
        concurrent_disjoint_inserts::<CoarseMap<u64, u64>>();
        concurrent_disjoint_inserts::<StripedHashMap<u64, u64>>();
        concurrent_disjoint_inserts::<SplitOrderedHashMap<u64, u64>>();
        concurrent_disjoint_inserts::<ResizingMap<u64, u64>>();
    }

    #[test]
    fn same_key_insert_races_have_one_winner() {
        one_insert_winner::<CoarseMap<u64, u64>>();
        one_insert_winner::<StripedHashMap<u64, u64>>();
        one_insert_winner::<SplitOrderedHashMap<u64, u64>>();
        one_insert_winner::<ResizingMap<u64, u64>>();
    }
}

use cds_atomic::{AtomicUsize, Ordering};
use std::fmt;
use std::hash::{BuildHasher, Hash, RandomState};

use cds_core::ConcurrentMap;
use cds_reclaim::epoch::{Atomic, Guard, Owned, Shared};
use cds_reclaim::{Ebr, ReclaimGuard, Reclaimer};
use cds_sync::Backoff;
use parking_lot::Mutex;

/// Default shard count (power of two).
const SHARDS: usize = 8;
/// Default buckets per shard at construction (power of two).
const INITIAL_BUCKETS: usize = 8;
/// A shard resizes when `entries > MAX_LOAD_FACTOR * buckets` — the same
/// threshold the fixed-capacity [`StripedHashMap`](crate::StripedHashMap)
/// uses, so E11 compares like against like.
const MAX_LOAD_FACTOR: usize = 4;
/// How many extra buckets an operation that observes an in-flight
/// migration claims and moves on behalf of the resize, beyond the one
/// bucket its own key needs. Small so no single operation stalls; nonzero
/// so the migration finishes even if the triggering thread dies.
const HELP_BATCH: usize = 2;

/// Planted-regression toggle (stress builds only): when set,
/// `migrate_bucket` publishes the source bucket's `migrated` flag and
/// releases its lock *before* the drained entries reach the destination
/// buckets, with a yield point in the gap. During that gap the moved
/// entries exist in **neither** table, so a concurrent lookup observes an
/// inserted key as missing — the migration-gap race fixed in an earlier
/// revision, re-armed as a known-answer target for the
/// systematic-exploration suite. Ordinary builds and ordinary stress runs
/// (toggle off) are unaffected.
///
/// Ideally this would be `#[cfg(test)]`, but the exploration suite lives
/// in the workspace integration tests, which cannot see a library's
/// `cfg(test)` items — `stress` + `#[doc(hidden)]` is the nearest gate.
#[cfg(feature = "stress")]
static MIGRATION_GAP: cds_atomic::raw::AtomicBool = cds_atomic::raw::AtomicBool::new(false);

/// See [`MIGRATION_GAP`]. Returns the previous setting.
#[cfg(feature = "stress")]
#[doc(hidden)]
pub fn set_migration_gap(on: bool) -> bool {
    MIGRATION_GAP.swap(on, Ordering::SeqCst)
}

/// One bucket: a small open-addressing-free chain of entries plus the
/// migration flag that makes bucket moves idempotent.
struct Bucket<K, V> {
    entries: Vec<(K, V)>,
    /// Set (under this bucket's lock) once the entries have been moved to
    /// the successor table. Every operation re-checks this after locking
    /// any bucket and restarts if set — that re-check is the linchpin of
    /// the migration protocol (see the type-level docs).
    migrated: bool,
}

impl<K, V> Bucket<K, V> {
    fn new() -> Self {
        Bucket {
            entries: Vec::new(),
            migrated: false,
        }
    }
}

/// One generation of a shard's bucket array. Tables form a chain through
/// `next`; at most two links are ever live per shard (see
/// [`ResizingMap`] docs for why the chain cannot grow past the successor
/// before the predecessor is fully migrated).
struct Table<K, V> {
    buckets: Box<[Mutex<Bucket<K, V>>]>,
    /// Successor table (twice the buckets), installed by whichever thread
    /// first observes the shard over its load factor. Null while no
    /// resize is in flight.
    next: Atomic<Table<K, V>>,
    /// Next bucket index for cooperative helpers to claim. May overshoot
    /// `buckets.len()`; claims past the end are no-ops.
    claim: AtomicUsize,
    /// Buckets whose `migrated` flag has transitioned; the thread that
    /// moves the *last* bucket promotes `next` and retires this table.
    done: AtomicUsize,
}

impl<K, V> Table<K, V> {
    fn new(buckets: usize) -> Self {
        Table {
            buckets: (0..buckets).map(|_| Mutex::new(Bucket::new())).collect(),
            next: Atomic::null(),
            claim: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
        }
    }

    fn mask(&self) -> usize {
        self.buckets.len() - 1
    }
}

struct Shard<K, V> {
    current: Atomic<Table<K, V>>,
    /// Entries in this shard (updated under bucket locks). Drives the
    /// load-factor trigger; `shard_lens` exposes it for balance tests.
    size: AtomicUsize,
}

/// A sharded hash map that grows by **cooperative incremental migration**:
/// no operation ever stops the world, and any thread that touches a shard
/// mid-resize helps finish the resize.
///
/// # Structure
///
/// Keys hash to one of `shards` independent shards (high hash bits); each
/// shard owns a power-of-two [`Table`] of mutex-guarded buckets (low hash
/// bits). When an insert observes the shard over [`MAX_LOAD_FACTOR`], it
/// allocates a table of twice as many buckets and CASes it into the
/// current table's `next` pointer. Nothing is copied at that point.
///
/// # Migration protocol
///
/// Buckets migrate **on access**. An operation that finds `next` non-null
/// first moves its own key's source bucket (old bucket `i` splits into new
/// buckets `i` and `i + m`, holding the old-bucket lock for the whole
/// move, then the two new-bucket locks in index order — old-table locks
/// are always taken before new-table locks, so the protocol is
/// deadlock-free), then claims up to [`HELP_BATCH`] more buckets from a
/// shared `claim` counter, then operates on the new table. The move is
/// idempotent: a `migrated` flag, written only under the bucket's lock,
/// makes the first mover win and every later mover a no-op.
///
/// Because **every** operation re-checks `migrated` after locking **any**
/// bucket (and restarts from the shard root if set), an operation that
/// raced the resize and locked a stale bucket can never read or write
/// entries that have already moved — that re-check is what makes lookups
/// and removes linearizable across the resize boundary.
///
/// The thread whose move transitions the *last* unmigrated bucket CASes
/// the shard's `current` pointer to the successor and **retires the old
/// table through the reclamation guard** ([`ReclaimGuard::retire`]): the
/// old array is unreachable to any operation that starts afterwards
/// (operations start from `current`), which is exactly the retire
/// contract, so the map runs unmodified under [`Ebr`], [`Hazard`]
/// (blanket-era mode), [`Leak`], and `DebugReclaim`. A second resize of
/// the same shard cannot begin until the first promotes (the trigger only
/// fires on the table an operation actually inserted into, and operations
/// insert into the successor while a migration is in flight — the
/// successor only becomes triggerable once it is `current`), so entries
/// can never be stranded in a half-dead intermediate table.
///
/// `len` is O(1) and linearizable: a single map-wide counter updated
/// while the mutating operation still holds its bucket lock, so the
/// counter transition happens inside the operation's critical section.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentMap;
/// use cds_map::ResizingMap;
///
/// let m = ResizingMap::new();
/// for i in 0..10_000u64 {
///     m.insert(i, i * 2);
/// }
/// assert_eq!(m.get(&4321), Some(8642));
/// assert_eq!(m.len(), 10_000);
/// assert!(m.doublings() >= 3); // grew without ever pausing
/// ```
pub struct ResizingMap<K, V, S = RandomState, R: Reclaimer = Ebr> {
    shards: Box<[Shard<K, V>]>,
    /// Map-wide entry count, updated under bucket locks (linearizable).
    len: AtomicUsize,
    /// Completed table promotions across all shards (diagnostics / E11).
    doublings: AtomicUsize,
    hasher: S,
    _reclaimer: std::marker::PhantomData<R>,
}

// SAFETY: entries are owned by mutex-guarded buckets; tables are
// reclaimer-managed. K/V cross threads by value and by `&` (get clones).
unsafe impl<K: Send + Sync, V: Send + Sync, S: Send, R: Reclaimer> Send
    for ResizingMap<K, V, S, R>
{
}
unsafe impl<K: Send + Sync, V: Send + Sync, S: Sync, R: Reclaimer> Sync
    for ResizingMap<K, V, S, R>
{
}

impl<K: Hash + Eq, V> ResizingMap<K, V, RandomState> {
    /// Creates an empty map with the default hasher on the default
    /// ([`Ebr`]) backend.
    pub fn new() -> Self {
        Self::with_hasher(RandomState::new())
    }
}

impl<K: Hash + Eq, V> Default for ResizingMap<K, V, RandomState> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V, R: Reclaimer> ResizingMap<K, V, RandomState, R> {
    /// Creates an empty map with the default hasher on the reclamation
    /// backend `R`.
    pub fn with_reclaimer() -> Self {
        Self::with_hasher(RandomState::new())
    }

    /// Creates an empty map with explicit geometry: `shards` shards of
    /// `buckets` buckets each (both rounded up to powers of two).
    ///
    /// Tests use tiny geometries (one shard, one bucket) so a handful of
    /// inserts forces a resize inside a bounded lincheck window.
    pub fn with_config(shards: usize, buckets: usize) -> Self {
        Self::with_config_and_hasher(shards, buckets, RandomState::new())
    }
}

impl<K: Hash + Eq, V, S: BuildHasher, R: Reclaimer> ResizingMap<K, V, S, R> {
    /// Creates an empty map with the given hasher and default geometry.
    pub fn with_hasher(hasher: S) -> Self {
        Self::with_config_and_hasher(SHARDS, INITIAL_BUCKETS, hasher)
    }

    /// [`with_config`](Self::with_config) plus an explicit hasher (a fixed
    /// hasher makes shard-balance properties deterministic).
    pub fn with_config_and_hasher(shards: usize, buckets: usize, hasher: S) -> Self {
        let shards = shards.next_power_of_two().max(1);
        let buckets = buckets.next_power_of_two().max(1);
        ResizingMap {
            shards: (0..shards)
                .map(|_| Shard {
                    current: Atomic::new(Table::new(buckets)),
                    size: AtomicUsize::new(0),
                })
                .collect(),
            len: AtomicUsize::new(0),
            doublings: AtomicUsize::new(0),
            hasher,
            _reclaimer: std::marker::PhantomData,
        }
    }

    fn hash(&self, key: &K) -> u64 {
        self.hasher.hash_one(key)
    }

    /// Shard index from the high hash bits (bucket indices use the low
    /// bits, so shard and bucket choice stay uncorrelated).
    fn shard(&self, hash: u64) -> &Shard<K, V> {
        let idx = (hash >> 48) as usize & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Number of table promotions (completed doublings) so far.
    pub fn doublings(&self) -> usize {
        self.doublings.load(Ordering::Relaxed)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard entry counts (quiescently consistent; exact at
    /// quiescence). `len()` equals their sum whenever no operation is in
    /// flight — the shard-balance property tests assert exactly that.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.size.load(Ordering::Relaxed))
            .collect()
    }

    /// Total buckets across all shards' *deepest* tables (the capacity
    /// the map is growing into while a migration is in flight).
    pub fn capacity(&self) -> usize {
        let guard = R::enter_blanket();
        self.shards
            .iter()
            .map(|s| {
                // SAFETY: `current` is never null and the blanket guard
                // keeps both chain links alive.
                let table = unsafe { s.current.load(Ordering::Acquire, &guard).deref() };
                let next = table.next.load(Ordering::Acquire, &guard);
                match unsafe { next.as_ref() } {
                    Some(n) => n.buckets.len(),
                    None => table.buckets.len(),
                }
            })
            .sum()
    }

    /// Moves old bucket `idx` of `old` into `new` (old bucket `i` splits
    /// into new buckets `i` and `i + m`). Idempotent: returns `false`
    /// without effect if the bucket already migrated, `true` if this call
    /// performed the move. The thread that moves the last bucket promotes
    /// `new` to the shard's current table and retires `old` through
    /// `guard`.
    fn migrate_bucket(
        &self,
        shard: &Shard<K, V>,
        old_ptr: Shared<'_, Table<K, V>>,
        new_ptr: Shared<'_, Table<K, V>>,
        idx: usize,
        guard: &R::Guard,
    ) -> bool {
        // SAFETY: both tables are protected by the caller's blanket guard.
        let old = unsafe { old_ptr.deref() };
        let new = unsafe { new_ptr.deref() };
        let m = old.buckets.len();
        debug_assert_eq!(new.buckets.len(), 2 * m);

        cds_core::stress::yield_point();
        let mut src = old.buckets[idx].lock();
        if src.migrated {
            return false;
        }
        cds_core::stress::yield_point();

        // Split the source run by the new table's extra hash bit. Holding
        // the source lock for the whole move means no operation can
        // observe the entries "in neither table": any operation for these
        // keys must pass through this same source bucket first.
        let mut low: Vec<(K, V)> = Vec::new();
        let mut high: Vec<(K, V)> = Vec::new();
        for (k, v) in src.entries.drain(..) {
            let h = self.hash(&k) as usize;
            debug_assert_eq!(h & (m - 1), idx);
            if h & new.mask() == idx {
                low.push((k, v));
            } else {
                high.push((k, v));
            }
        }
        #[cfg(feature = "stress")]
        let gap = MIGRATION_GAP.load(Ordering::Relaxed);
        #[cfg(not(feature = "stress"))]
        let gap = false;
        if gap {
            // Planted regression (see [`MIGRATION_GAP`]): mark the source
            // migrated and release it before the destinations are filled.
            // A lookup that lands in the gap restarts into the new table
            // and finds the entries in neither place.
            src.migrated = true;
            drop(src);
            cds_core::stress::yield_point();
            {
                let mut dst = new.buckets[idx].lock();
                dst.entries.extend(low);
            }
            cds_core::stress::yield_point();
            {
                let mut dst = new.buckets[idx + m].lock();
                dst.entries.extend(high);
            }
        } else {
            // New-table locks after the old-table lock, in index order.
            {
                let mut dst = new.buckets[idx].lock();
                debug_assert!(!dst.migrated);
                dst.entries.extend(low);
            }
            cds_core::stress::yield_point();
            {
                let mut dst = new.buckets[idx + m].lock();
                debug_assert!(!dst.migrated);
                dst.entries.extend(high);
            }
            src.migrated = true;
            drop(src);
        }
        cds_obs::count(cds_obs::Event::ResizeBucketsMoved);

        // Count the transition exactly once (we own the false→true edge).
        if old.done.fetch_add(1, Ordering::AcqRel) + 1 == m {
            cds_core::stress::yield_point();
            // Every bucket has moved: promote the successor. Operations
            // that start after this CAS can no longer reach `old`, which
            // is precisely the retire contract.
            let promoted = shard
                .current
                .compare_exchange(old_ptr, new_ptr, Ordering::AcqRel, Ordering::Acquire, guard)
                .is_ok();
            cds_obs::cas_outcome(promoted);
            if promoted {
                cds_obs::count(cds_obs::Event::ResizePromoterWins);
                self.doublings.fetch_add(1, Ordering::Relaxed);
                // SAFETY: non-null, allocated via Atomic/Owned, severed
                // from `current` by the CAS above, retired once (only the
                // unique promoter reaches this line).
                unsafe { guard.retire(old_ptr) };
            }
        }
        true
    }

    /// Claims and moves up to [`HELP_BATCH`] buckets of the in-flight
    /// migration, so resizes complete even if the triggering thread stalls
    /// and no single operation bears the whole cost.
    fn help_migrate(
        &self,
        shard: &Shard<K, V>,
        old_ptr: Shared<'_, Table<K, V>>,
        new_ptr: Shared<'_, Table<K, V>>,
        guard: &R::Guard,
    ) {
        // SAFETY: protected by the caller's blanket guard.
        let old = unsafe { old_ptr.deref() };
        let m = old.buckets.len();
        let mut claimed = false;
        let mut moved = 0u64;
        for _ in 0..HELP_BATCH {
            if old.claim.load(Ordering::Relaxed) >= m {
                break;
            }
            let idx = old.claim.fetch_add(1, Ordering::Relaxed);
            if idx >= m {
                break;
            }
            claimed = true;
            if self.migrate_bucket(shard, old_ptr, new_ptr, idx, guard) {
                moved += 1;
            }
        }
        if claimed {
            cds_obs::count(cds_obs::Event::ResizeBatchesHelped);
            cds_obs::add(cds_obs::Event::ResizeBatchOps, moved);
        }
    }

    /// Installs a successor table of twice the buckets if `table` has none
    /// yet. Called only on tables reached as `shard.current` with no
    /// successor, so at most one resize per shard is ever in flight.
    fn install_next<'g>(
        &self,
        table_ptr: Shared<'g, Table<K, V>>,
        guard: &'g R::Guard,
    ) -> Shared<'g, Table<K, V>> {
        // SAFETY: protected by the caller's blanket guard.
        let table = unsafe { table_ptr.deref() };
        let fresh = Owned::new(Table::new(table.buckets.len() * 2)).into_shared(guard);
        cds_core::stress::yield_point();
        match table.next.compare_exchange(
            Shared::null(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
            guard,
        ) {
            Ok(_) => {
                cds_obs::cas_outcome(true);
                fresh
            }
            Err(existing) => {
                cds_obs::cas_outcome(false);
                // Another thread won the install; free our candidate —
                // it was never published.
                // SAFETY: `fresh` lost the CAS and is ours alone.
                drop(unsafe { fresh.into_owned() });
                existing
            }
        }
    }

    /// Runs `f` on the bucket that currently owns `hash`, after helping
    /// any in-flight migration of that bucket's shard. `f` gets the locked
    /// bucket, the shard (for size accounting), and whether the map-wide
    /// trigger may install a resize from this bucket (true only when the
    /// bucket belongs to the shard's root table — see the protocol docs).
    fn with_bucket<T>(
        &self,
        hash: u64,
        mut f: impl FnMut(&mut Bucket<K, V>, &Shard<K, V>) -> (T, bool),
    ) -> T {
        let shard = self.shard(hash);
        let guard = R::enter_blanket();
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            let table_ptr = shard.current.load(Ordering::Acquire, &guard);
            // SAFETY: `current` is never null; the blanket guard keeps the
            // table alive even if it is concurrently promoted away.
            let table = unsafe { table_ptr.deref() };
            let next_ptr = table.next.load(Ordering::Acquire, &guard);

            let (target, target_ptr) = if next_ptr.is_null() {
                (table, table_ptr)
            } else {
                // A migration is in flight: move our own source bucket
                // first (idempotent), help a bounded batch, then operate
                // on the successor.
                let idx = hash as usize & table.mask();
                if self.migrate_bucket(shard, table_ptr, next_ptr, idx, &guard) {
                    // Own-bucket moves count toward batch ops so that
                    // buckets-moved == Σ batch sizes holds exactly.
                    cds_obs::add(cds_obs::Event::ResizeBatchOps, 1);
                }
                self.help_migrate(shard, table_ptr, next_ptr, &guard);
                // SAFETY: protected by the blanket guard.
                (unsafe { next_ptr.deref() }, next_ptr)
            };

            let idx = hash as usize & target.mask();
            let mut bucket = target.buckets[idx].lock();
            cds_core::stress::yield_point();
            if bucket.migrated {
                // We locked a stale generation (its entries already moved
                // on): restart from the shard root.
                drop(bucket);
                backoff.spin();
                continue;
            }
            let (out, wants_resize) = f(&mut bucket, shard);
            drop(bucket);

            // The trigger only fires for the shard's root table (a
            // successor becomes triggerable once promoted): this caps the
            // chain at two tables and rules out stranded entries.
            if wants_resize
                && next_ptr.is_null()
                && target.next.load(Ordering::Acquire, &guard).is_null()
                && shard.size.load(Ordering::Relaxed) > MAX_LOAD_FACTOR * target.buckets.len()
            {
                self.install_next(target_ptr, &guard);
            }
            return out;
        }
    }
}

impl<K, V, S, R> ConcurrentMap<K, V> for ResizingMap<K, V, S, R>
where
    K: Hash + Eq + Send + Sync,
    V: Clone + Send + Sync,
    S: BuildHasher + Send + Sync,
    R: Reclaimer,
{
    const NAME: &'static str = "resizing";

    fn insert(&self, key: K, value: V) -> bool {
        let hash = self.hash(&key);
        let mut slot = Some((key, value));
        self.with_bucket(hash, |bucket, shard| {
            let (key, value) = slot.take().expect("closure runs once per loop pass");
            if bucket.entries.iter().any(|(k, _)| *k == key) {
                slot = Some((key, value));
                (false, false)
            } else {
                bucket.entries.push((key, value));
                // Both counters move inside the bucket's critical section:
                // the map-wide `len` transition is the linearization point.
                shard.size.fetch_add(1, Ordering::Relaxed);
                self.len.fetch_add(1, Ordering::Relaxed);
                (true, true)
            }
        })
    }

    fn remove(&self, key: &K) -> bool {
        let hash = self.hash(key);
        self.with_bucket(hash, |bucket, shard| {
            match bucket.entries.iter().position(|(k, _)| k == key) {
                Some(i) => {
                    bucket.entries.swap_remove(i);
                    shard.size.fetch_sub(1, Ordering::Relaxed);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    (true, false)
                }
                None => (false, false),
            }
        })
    }

    fn get(&self, key: &K) -> Option<V> {
        let hash = self.hash(key);
        self.with_bucket(hash, |bucket, _| {
            (
                bucket
                    .entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone()),
                false,
            )
        })
    }

    fn contains_key(&self, key: &K) -> bool {
        let hash = self.hash(key);
        self.with_bucket(hash, |bucket, _| {
            (bucket.entries.iter().any(|(k, _)| k == key), false)
        })
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
}

impl<K, V, S, R> ResizingMap<K, V, S, R>
where
    K: Hash + Eq + Clone,
    S: BuildHasher,
    R: Reclaimer,
{
    /// Collects every key currently in the map. **Quiescent diagnostic**:
    /// exact only while no operation is in flight (property tests call it
    /// after joining all workers to check no key was lost or duplicated
    /// across a resize).
    pub fn snapshot_keys(&self) -> Vec<K> {
        let guard = R::enter_blanket();
        let mut keys = Vec::new();
        for shard in self.shards.iter() {
            // SAFETY: `current` is never null; the guard protects the
            // whole chain.
            let table = unsafe { shard.current.load(Ordering::Acquire, &guard).deref() };
            let next = table.next.load(Ordering::Acquire, &guard);
            for bucket in table.buckets.iter() {
                let b = bucket.lock();
                if !b.migrated {
                    keys.extend(b.entries.iter().map(|(k, _)| k.clone()));
                }
            }
            // SAFETY: guard-protected.
            if let Some(next) = unsafe { next.as_ref() } {
                for bucket in next.buckets.iter() {
                    let b = bucket.lock();
                    keys.extend(b.entries.iter().map(|(k, _)| k.clone()));
                }
            }
        }
        keys
    }
}

impl<K, V, S, R: Reclaimer> Drop for ResizingMap<K, V, S, R> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` gives unique access; the unprotected guard
        // only performs plain loads here.
        let guard = unsafe { Guard::unprotected() };
        for shard in self.shards.iter() {
            let mut ptr = shard.current.load(Ordering::Relaxed, &guard);
            while !ptr.is_null() {
                // SAFETY: unique access; each chain link is freed once.
                let owned = unsafe { ptr.into_owned() };
                ptr = owned.next.load(Ordering::Relaxed, &guard);
                drop(owned);
            }
        }
    }
}

impl<K, V, S, R: Reclaimer> fmt::Debug for ResizingMap<K, V, S, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResizingMap")
            .field("len", &self.len.load(Ordering::Relaxed))
            .field("shards", &self.shards.len())
            .field("doublings", &self.doublings.load(Ordering::Relaxed))
            .field("reclaimer", &R::NAME)
            .finish()
    }
}

impl<K, V> FromIterator<(K, V)> for ResizingMap<K, V, RandomState>
where
    K: Hash + Eq + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Collects key/value pairs; on duplicate keys the **first** wins
    /// (insert-if-absent semantics).
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let map = ResizingMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_reclaim::{DebugReclaim, Hazard, Leak};

    #[test]
    fn grows_through_many_doublings() {
        let m: ResizingMap<u64, u64> = ResizingMap::with_config(1, 1);
        for i in 0..1024 {
            assert!(m.insert(i, i + 1));
        }
        assert_eq!(m.len(), 1024);
        for i in 0..1024 {
            assert_eq!(m.get(&i), Some(i + 1), "key {i} after resize");
        }
        assert!(
            m.doublings() >= 3,
            "expected ≥3 doublings, got {}",
            m.doublings()
        );
    }

    #[test]
    fn remove_across_resize_boundary() {
        let m: ResizingMap<u64, u64> = ResizingMap::with_config(1, 2);
        for i in 0..256 {
            m.insert(i, i);
        }
        for i in (0..256).step_by(2) {
            assert!(m.remove(&i));
            assert!(!m.remove(&i), "double remove of {i}");
        }
        assert_eq!(m.len(), 128);
        for i in 0..256 {
            assert_eq!(m.contains_key(&i), i % 2 == 1);
        }
    }

    #[test]
    fn len_matches_shard_sum_at_quiescence() {
        let m: ResizingMap<u64, u64> = ResizingMap::with_config(4, 2);
        for i in 0..500 {
            m.insert(i, i);
        }
        for i in 0..100 {
            m.remove(&i);
        }
        assert_eq!(m.len(), m.shard_lens().iter().sum::<usize>());
        let mut keys = m.snapshot_keys();
        keys.sort_unstable();
        assert_eq!(keys, (100..500).collect::<Vec<_>>());
    }

    #[test]
    fn runs_under_every_backend() {
        fn one<R: Reclaimer>() {
            let m: ResizingMap<u64, u64, RandomState, R> = ResizingMap::with_reclaimer();
            for i in 0..300 {
                assert!(m.insert(i, i));
            }
            for i in 0..300 {
                assert_eq!(m.get(&i), Some(i), "backend {}", R::NAME);
            }
            R::collect();
        }
        one::<Ebr>();
        one::<Hazard>();
        one::<Leak>();
        one::<DebugReclaim>();
    }

    #[test]
    fn capacity_reflects_deepest_table() {
        let m: ResizingMap<u64, u64> = ResizingMap::with_config(1, 1);
        assert_eq!(m.capacity(), 1);
        for i in 0..64 {
            m.insert(i, i);
        }
        assert!(m.capacity() >= 8);
    }
}

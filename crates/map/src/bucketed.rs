use std::fmt;
use std::hash::{BuildHasher, Hash, RandomState};

use cds_core::ConcurrentSet;
use cds_list::HarrisMichaelList;

/// Michael's lock-free hash set (PPoPP 2002): a **fixed** array of
/// lock-free ordered lists.
///
/// The original paper's construction: hash the key, walk the bucket's
/// [Harris–Michael list](cds_list::HarrisMichaelList). With the bucket
/// count fixed, every operation is lock-free and extremely simple — the
/// price is that load factor grows with the element count, degrading to
/// O(n/buckets) chains. Shalev & Shavit's
/// [`SplitOrderedHashMap`](crate::SplitOrderedHashMap) exists precisely to
/// remove this limitation; keeping both makes the trade-off measurable.
///
/// Implements [`ConcurrentSet`] (the paper's interface is a set; pair it
/// with values by storing `(K, V)` tuples ordered by key if needed).
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentSet;
/// use cds_map::BucketedHashSet;
///
/// let s = BucketedHashSet::new();
/// assert!(s.insert(42));
/// assert!(s.contains(&42));
/// assert!(s.remove(&42));
/// ```
pub struct BucketedHashSet<T, S = RandomState> {
    buckets: Box<[HarrisMichaelList<T>]>,
    hasher: S,
}

const DEFAULT_BUCKETS: usize = 256;

impl<T: Ord + Hash> BucketedHashSet<T, RandomState> {
    /// Creates a set with the default bucket count (256).
    pub fn new() -> Self {
        Self::with_buckets(DEFAULT_BUCKETS)
    }

    /// Creates a set with `buckets` fixed buckets (rounded up to a power
    /// of two).
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn with_buckets(buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        BucketedHashSet {
            buckets: (0..buckets.next_power_of_two())
                .map(|_| HarrisMichaelList::new())
                .collect(),
            hasher: RandomState::new(),
        }
    }
}

impl<T: Ord + Hash> Default for BucketedHashSet<T, RandomState> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Hash, S: BuildHasher> BucketedHashSet<T, S> {
    fn bucket(&self, value: &T) -> &HarrisMichaelList<T> {
        &self.buckets[(self.hasher.hash_one(value) as usize) & (self.buckets.len() - 1)]
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

impl<T, S> ConcurrentSet<T> for BucketedHashSet<T, S>
where
    T: Ord + Hash + Send + Sync,
    S: BuildHasher + Send + Sync,
{
    const NAME: &'static str = "bucketed";

    fn insert(&self, value: T) -> bool {
        self.bucket(&value).insert(value)
    }

    fn remove(&self, value: &T) -> bool {
        self.bucket(value).remove(value)
    }

    fn contains(&self, value: &T) -> bool {
        self.bucket(value).contains(value)
    }

    fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }
}

impl<T, S> fmt::Debug for BucketedHashSet<T, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BucketedHashSet")
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_semantics() {
        let s = BucketedHashSet::with_buckets(4);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(&1));
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert!(s.is_empty());
    }

    #[test]
    fn spreads_across_buckets() {
        let s = BucketedHashSet::with_buckets(8);
        for i in 0..1_000u64 {
            assert!(s.insert(i));
        }
        assert_eq!(s.len(), 1_000);
        for i in 0..1_000u64 {
            assert!(s.contains(&i));
        }
    }

    #[test]
    fn concurrent_inserts_disjoint() {
        let s = Arc::new(BucketedHashSet::new());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        assert!(s.insert(t * 1_000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 4_000);
    }
}

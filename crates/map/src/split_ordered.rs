use cds_atomic::{AtomicUsize, Ordering};
use std::fmt;
use std::hash::{BuildHasher, Hash, RandomState};

use cds_core::ConcurrentMap;
use cds_reclaim::epoch::{Atomic, Guard, Owned, Shared};
use cds_reclaim::{Ebr, ReclaimGuard, Reclaimer};
use cds_sync::Backoff;

/// Logical-deletion mark (low tag bit of a node's own `next` pointer).
const MARK: usize = 1;

/// The bucket directory is a fixed array of lazily-allocated segments, so
/// growing the table never relocates existing bucket pointers.
const SEGMENT_BITS: usize = 10;
const SEGMENT_SIZE: usize = 1 << SEGMENT_BITS;
const MAX_SEGMENTS: usize = 1 << 10; // up to 2^20 buckets
const MAX_LOAD_FACTOR: usize = 4;

/// Regular nodes carry a key/value pair; dummy nodes (one per bucket) have
/// `kv == None`.
struct Node<K, V> {
    /// Split-order key: bit-reversed hash, odd for regular nodes, even for
    /// dummies — see [`regular_key`]/[`dummy_key`].
    so_key: u64,
    kv: Option<(K, V)>,
    next: Atomic<Node<K, V>>,
}

/// Bit-reverse a hash and set the dropped top bit so regular keys are odd.
fn regular_key(hash: u64) -> u64 {
    (hash | 0x8000_0000_0000_0000).reverse_bits()
}

/// Bit-reverse a bucket index; dummy keys are even (top bit not set).
fn dummy_key(bucket: u64) -> u64 {
    bucket.reverse_bits()
}

/// Shalev & Shavit's **split-ordered list** hash map (JACM 2006) — a
/// lock-free hash table that grows without moving a single item.
///
/// The construction inverts the usual design: instead of a table of
/// independent chains, *all* items live in **one** lock-free sorted list
/// (the Harris–Michael list of `cds-list`, re-derived here for
/// hash-ordered, possibly-duplicate keys). The list is ordered by
/// **bit-reversed hash**: in this order, the items of bucket `b` under a
/// table of size `2^k` form one contiguous run, and doubling the table
/// merely *splits* each run in two. The "table" is a directory of shortcut
/// pointers to per-bucket **dummy nodes**; a new bucket is initialized
/// lazily by inserting its dummy after its *parent* bucket (the index with
/// the top bit cleared), recursively.
///
/// All operations are lock-free; `len` is O(1) (a shared counter,
/// quiescently consistent). The map is generic over its reclamation
/// backend `R` ([`cds_reclaim::Reclaimer`], default [`Ebr`]) and uses the
/// **blanket** protection mode ([`Reclaimer::enter_blanket`]): like the
/// Harris–Michael list it is built on, traversals restart through marked
/// chains that per-location hazards cannot cover, so protection comes
/// from epoch pins or hazard eras.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentMap;
/// use cds_map::SplitOrderedHashMap;
///
/// let m = SplitOrderedHashMap::new();
/// for i in 0..1000u64 {
///     m.insert(i, i + 1);
/// }
/// assert_eq!(m.get(&500), Some(501));
/// assert_eq!(m.len(), 1000);
/// ```
pub struct SplitOrderedHashMap<K, V, S = RandomState, R: Reclaimer = Ebr> {
    /// Directory of segments of bucket pointers; segment allocated on first
    /// touch.
    segments: Box<[Atomic<Segment<K, V>>]>,
    /// Current number of logical buckets (a power of two).
    bucket_count: AtomicUsize,
    size: AtomicUsize,
    hasher: S,
    _reclaimer: std::marker::PhantomData<R>,
}

struct Segment<K, V> {
    buckets: Box<[Atomic<Node<K, V>>]>,
}

// SAFETY: nodes are reclaimer-managed; keys/values cross threads by value
// and by `&` (get clones), hence Send + Sync on both.
unsafe impl<K: Send + Sync, V: Send + Sync, S: Send, R: Reclaimer> Send
    for SplitOrderedHashMap<K, V, S, R>
{
}
unsafe impl<K: Send + Sync, V: Send + Sync, S: Sync, R: Reclaimer> Sync
    for SplitOrderedHashMap<K, V, S, R>
{
}

impl<K: Hash + Eq, V> SplitOrderedHashMap<K, V, RandomState> {
    /// Creates an empty map with the default hasher on the default
    /// ([`Ebr`]) backend.
    pub fn new() -> Self {
        Self::with_hasher(RandomState::new())
    }
}

impl<K: Hash + Eq, V, R: Reclaimer> SplitOrderedHashMap<K, V, RandomState, R> {
    /// Creates an empty map with the default hasher on the reclamation
    /// backend `R`.
    pub fn with_reclaimer() -> Self {
        Self::with_hasher(RandomState::new())
    }
}

impl<K: Hash + Eq, V> Default for SplitOrderedHashMap<K, V, RandomState> {
    fn default() -> Self {
        Self::new()
    }
}

type FindResult<'g, K, V> = (bool, &'g Atomic<Node<K, V>>, Shared<'g, Node<K, V>>);

impl<K: Hash + Eq, V, S: BuildHasher, R: Reclaimer> SplitOrderedHashMap<K, V, S, R> {
    /// Creates an empty map with a caller-supplied hasher.
    pub fn with_hasher(hasher: S) -> Self {
        let map = SplitOrderedHashMap {
            segments: (0..MAX_SEGMENTS).map(|_| Atomic::null()).collect(),
            bucket_count: AtomicUsize::new(2),
            size: AtomicUsize::new(0),
            hasher,
            _reclaimer: std::marker::PhantomData,
        };
        // Eagerly initialize bucket 0 with the list head dummy.
        // SAFETY: not shared yet.
        let guard = unsafe { Guard::unprotected() };
        let head = Owned::new(Node {
            so_key: dummy_key(0),
            kv: None,
            next: Atomic::null(),
        })
        .into_shared(&guard);
        map.bucket_slot(0, &guard).store(head, Ordering::Relaxed);
        map
    }

    fn hash(&self, key: &K) -> u64 {
        self.hasher.hash_one(key)
    }

    /// Returns the directory slot for `bucket`, allocating its segment if
    /// needed.
    fn bucket_slot<'g, G: ReclaimGuard>(
        &'g self,
        bucket: usize,
        guard: &'g G,
    ) -> &'g Atomic<Node<K, V>> {
        let seg_idx = bucket >> SEGMENT_BITS;
        let seg = self.segments[seg_idx].load(Ordering::Acquire, guard);
        let seg = if seg.is_null() {
            let fresh = Owned::new(Segment {
                buckets: (0..SEGMENT_SIZE).map(|_| Atomic::null()).collect(),
            })
            .into_shared(guard);
            match self.segments[seg_idx].compare_exchange(
                Shared::null(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(_) => fresh,
                Err(actual) => {
                    // SAFETY: our segment lost the race and was never shared.
                    unsafe { drop(fresh.into_owned()) };
                    actual
                }
            }
        } else {
            seg
        };
        // SAFETY: segments are never freed while the map lives.
        &unsafe { seg.deref() }.buckets[bucket & (SEGMENT_SIZE - 1)]
    }

    /// Ensures `bucket` has its dummy node, inserting it (and its
    /// ancestors') lazily. Returns the bucket's dummy node.
    fn initialize_bucket<'g, G: ReclaimGuard>(
        &'g self,
        bucket: usize,
        guard: &'g G,
    ) -> Shared<'g, Node<K, V>> {
        let slot = self.bucket_slot(bucket, guard);
        let existing = slot.load(Ordering::Acquire, guard);
        if !existing.is_null() {
            return existing;
        }
        // Parent: clear the highest set bit (bucket 0 is pre-initialized).
        debug_assert!(bucket != 0, "bucket 0 must be pre-initialized");
        let parent = bucket & !(1 << (usize::BITS - 1 - bucket.leading_zeros()));
        let parent_dummy = self.initialize_bucket(parent, guard);

        // Insert this bucket's dummy into the list, starting at the parent.
        let key = dummy_key(bucket as u64);
        let mut dummy = Owned::new(Node {
            so_key: key,
            kv: None,
            next: Atomic::null(),
        });
        let dummy_shared = loop {
            cds_core::stress::yield_point();
            let (found, prev, curr) = self.find_from(parent_dummy, key, None, guard);
            if found {
                // Another thread inserted the dummy; ours dies unpublished.
                drop(dummy);
                break curr;
            }
            dummy.next.store(curr, Ordering::Relaxed);
            let staged = dummy.into_shared(guard);
            match prev.compare_exchange(curr, staged, Ordering::AcqRel, Ordering::Relaxed, guard) {
                Ok(_) => break staged,
                Err(_) => {
                    // SAFETY: unpublished after a failed CAS.
                    dummy = unsafe { staged.into_owned() };
                }
            }
        };
        // Publish the shortcut (racers may publish the same node — benign).
        let _ = slot.compare_exchange(
            Shared::null(),
            dummy_shared,
            Ordering::AcqRel,
            Ordering::Relaxed,
            guard,
        );
        slot.load(Ordering::Acquire, guard)
    }

    /// Harris–Michael `find` specialized for split-order keys: positions at
    /// the first node with `so_key > key`, or at the node matching
    /// `(key, k)` exactly. Nodes with equal `so_key` but different `K`
    /// (hash collisions) are scanned through.
    fn find_from<'g, G: ReclaimGuard>(
        &'g self,
        start: Shared<'g, Node<K, V>>,
        key: u64,
        k: Option<&K>,
        guard: &'g G,
    ) -> FindResult<'g, K, V> {
        'retry: loop {
            cds_core::stress::yield_point();
            // SAFETY: dummies are never removed, so `start` is alive.
            let start_ref = unsafe { start.deref() };
            let mut prev = &start_ref.next;
            let mut curr = prev.load(Ordering::Acquire, guard);
            loop {
                cds_core::stress::yield_point();
                let curr_ref = match unsafe { curr.as_ref() } {
                    None => return (false, prev, curr),
                    Some(c) => c,
                };
                let next = curr_ref.next.load(Ordering::Acquire, guard);
                if next.tag() == MARK {
                    match prev.compare_exchange(
                        curr.with_tag(0),
                        next.with_tag(0),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                        guard,
                    ) {
                        Ok(_) => {
                            // SAFETY: unlinked by this CAS.
                            unsafe { guard.retire(curr) };
                            curr = next.with_tag(0);
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }
                if curr_ref.so_key > key {
                    return (false, prev, curr);
                }
                if curr_ref.so_key == key {
                    match (k, &curr_ref.kv) {
                        // Exact regular match requires equal K.
                        (Some(k), Some((ck, _))) if ck == k => return (true, prev, curr),
                        // Dummy search matches the dummy node itself.
                        (None, None) => return (true, prev, curr),
                        // Hash collision or kind mismatch: keep scanning
                        // through the equal-so_key run.
                        _ => {}
                    }
                }
                prev = &curr_ref.next;
                curr = next;
            }
        }
    }

    /// Returns the dummy node that starts `key`'s bucket run.
    fn bucket_for<'g, G: ReclaimGuard>(
        &'g self,
        hash: u64,
        guard: &'g G,
    ) -> Shared<'g, Node<K, V>> {
        let bucket = (hash as usize) & (self.bucket_count.load(Ordering::Acquire) - 1);
        if bucket == 0 {
            let slot = self.bucket_slot(0, guard);
            slot.load(Ordering::Acquire, guard)
        } else {
            self.initialize_bucket(bucket, guard)
        }
    }

    /// Current number of logical buckets (diagnostics).
    pub fn bucket_count(&self) -> usize {
        self.bucket_count.load(Ordering::Relaxed)
    }
}

impl<K, V, S, R> ConcurrentMap<K, V> for SplitOrderedHashMap<K, V, S, R>
where
    K: Hash + Eq + Send + Sync,
    V: Clone + Send + Sync,
    S: BuildHasher + Send + Sync,
    R: Reclaimer,
{
    const NAME: &'static str = "split-ordered";

    fn insert(&self, key: K, value: V) -> bool {
        let guard = R::enter_blanket();
        let hash = self.hash(&key);
        let so_key = regular_key(hash);
        let bucket = self.bucket_for(hash, &guard);
        let backoff = Backoff::new();
        let mut node = Owned::new(Node {
            so_key,
            kv: Some((key, value)),
            next: Atomic::null(),
        });
        loop {
            cds_core::stress::yield_point();
            let k_ref = node.kv.as_ref().map(|(k, _)| k);
            let (found, prev, curr) = self.find_from(bucket, so_key, k_ref.map(|k| k as _), &guard);
            if found {
                drop(node);
                return false;
            }
            node.next.store(curr, Ordering::Relaxed);
            let staged = node.into_shared(&guard);
            match prev.compare_exchange(curr, staged, Ordering::AcqRel, Ordering::Relaxed, &guard) {
                Ok(_) => break,
                Err(_) => {
                    // SAFETY: unpublished.
                    node = unsafe { staged.into_owned() };
                    backoff.spin();
                }
            }
        }
        let size = self.size.fetch_add(1, Ordering::Relaxed) + 1;
        // Grow: double the bucket count when the load factor is exceeded.
        let buckets = self.bucket_count.load(Ordering::Relaxed);
        if size > buckets * MAX_LOAD_FACTOR && buckets < MAX_SEGMENTS * SEGMENT_SIZE {
            let _ = self.bucket_count.compare_exchange(
                buckets,
                buckets * 2,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        }
        true
    }

    fn remove(&self, key: &K) -> bool {
        let guard = R::enter_blanket();
        let hash = self.hash(key);
        let so_key = regular_key(hash);
        let bucket = self.bucket_for(hash, &guard);
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            let (found, prev, curr) = self.find_from(bucket, so_key, Some(key), &guard);
            if !found {
                return false;
            }
            // SAFETY: pinned, found unmarked.
            let curr_ref = unsafe { curr.deref() };
            let next = curr_ref.next.load(Ordering::Acquire, &guard);
            if next.tag() == MARK {
                backoff.spin();
                continue;
            }
            if curr_ref
                .next
                .compare_exchange(
                    next.with_tag(0),
                    next.with_tag(MARK),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                    &guard,
                )
                .is_err()
            {
                backoff.spin();
                continue;
            }
            self.size.fetch_sub(1, Ordering::Relaxed);
            match prev.compare_exchange(
                curr.with_tag(0),
                next.with_tag(0),
                Ordering::AcqRel,
                Ordering::Relaxed,
                &guard,
            ) {
                // SAFETY: unlinked by us.
                Ok(_) => unsafe { guard.retire(curr) },
                Err(_) => {
                    let _ = self.find_from(bucket, so_key, Some(key), &guard);
                }
            }
            return true;
        }
    }

    fn get(&self, key: &K) -> Option<V> {
        let guard = R::enter_blanket();
        let hash = self.hash(key);
        let so_key = regular_key(hash);
        let bucket = self.bucket_for(hash, &guard);
        let (found, _, curr) = self.find_from(bucket, so_key, Some(key), &guard);
        if found {
            // SAFETY: pinned; found regular node.
            let (_, v) = unsafe { curr.deref() }.kv.as_ref().expect("regular node");
            Some(v.clone())
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }
}

impl<K, V, S, R: Reclaimer> Drop for SplitOrderedHashMap<K, V, S, R> {
    fn drop(&mut self) {
        // SAFETY: unique access; the unprotected guard is a pure load
        // witness on every backend. Already-retired nodes are unreachable
        // from the list head and are freed by the backend, not here.
        let guard = unsafe { Guard::unprotected() };
        // Free the whole list from the head dummy (bucket 0 of segment 0).
        let seg0 = self.segments[0].load(Ordering::Relaxed, &guard);
        if !seg0.is_null() {
            // SAFETY: unique ownership.
            let head = unsafe { seg0.deref() }.buckets[0].load(Ordering::Relaxed, &guard);
            let mut cur = head;
            while !cur.is_null() {
                // SAFETY: unique ownership of the chain.
                unsafe {
                    let boxed = cur.with_tag(0).into_owned().into_box();
                    cur = boxed.next.load(Ordering::Relaxed, &guard).with_tag(0);
                }
            }
        }
        // Free the segments.
        for slot in self.segments.iter() {
            let seg = slot.load(Ordering::Relaxed, &guard);
            if !seg.is_null() {
                // SAFETY: unique ownership.
                unsafe { drop(seg.into_owned()) };
            }
        }
    }
}

impl<K, V, S, R: Reclaimer> fmt::Debug for SplitOrderedHashMap<K, V, S, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SplitOrderedHashMap")
            .field("len", &self.size.load(Ordering::Relaxed))
            .field("buckets", &self.bucket_count.load(Ordering::Relaxed))
            .field("reclaimer", &R::NAME)
            .finish()
    }
}

impl<K, V> FromIterator<(K, V)> for SplitOrderedHashMap<K, V, RandomState>
where
    K: Hash + Eq + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Collects key/value pairs; on duplicate keys the **first** wins
    /// (insert-if-absent semantics).
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let map = SplitOrderedHashMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentMap;
    use std::hash::Hasher;
    use std::sync::Arc;

    #[test]
    fn split_order_keys_have_expected_parity() {
        assert_eq!(regular_key(0) & 1, 1, "regular keys must be odd");
        assert_eq!(dummy_key(5) & 1, 0, "dummy keys must be even");
        // Split-ordering: bucket b's dummy precedes all keys hashing to b.
        assert!(dummy_key(0) < regular_key(0));
        assert!(dummy_key(1) < regular_key(1));
    }

    #[test]
    fn bucket_count_doubles_under_load() {
        let m: SplitOrderedHashMap<u64, u64> = SplitOrderedHashMap::new();
        let before = m.bucket_count();
        for i in 0..10_000 {
            m.insert(i, i);
        }
        assert!(m.bucket_count() > before);
        for i in 0..10_000 {
            assert_eq!(m.get(&i), Some(i));
        }
    }

    #[test]
    fn collision_chains_work() {
        // A constant-hash hasher forces every key into one so_key run.
        #[derive(Default, Clone)]
        struct ConstHash;
        impl Hasher for ConstHasher {
            fn finish(&self) -> u64 {
                42
            }
            fn write(&mut self, _bytes: &[u8]) {}
        }
        #[derive(Default)]
        struct ConstHasher;
        impl BuildHasher for ConstHash {
            type Hasher = ConstHasher;
            fn build_hasher(&self) -> ConstHasher {
                ConstHasher
            }
        }
        let m: SplitOrderedHashMap<u64, u64, ConstHash> =
            SplitOrderedHashMap::with_hasher(ConstHash);
        for i in 0..50 {
            assert!(m.insert(i, i * 10));
        }
        for i in 0..50 {
            assert_eq!(m.get(&i), Some(i * 10));
        }
        assert!(m.remove(&25));
        assert_eq!(m.get(&25), None);
        assert_eq!(m.len(), 49);
    }

    #[test]
    fn map_semantics_on_every_backend() {
        fn run<R: Reclaimer>() {
            let m: SplitOrderedHashMap<u64, u64, RandomState, R> =
                SplitOrderedHashMap::with_reclaimer();
            for i in 0..512 {
                assert!(m.insert(i, i * 2), "{} backend", R::NAME);
            }
            for i in (0..512).step_by(2) {
                assert!(m.remove(&i), "{} backend", R::NAME);
            }
            for i in 0..512 {
                let expect = if i % 2 == 1 { Some(i * 2) } else { None };
                assert_eq!(m.get(&i), expect, "{} backend", R::NAME);
            }
            assert_eq!(m.len(), 256);
            R::collect();
        }
        run::<Ebr>();
        run::<cds_reclaim::Hazard>();
        run::<cds_reclaim::Leak>();
        run::<cds_reclaim::DebugReclaim>();
    }

    #[test]
    fn concurrent_growth_is_consistent() {
        let m: Arc<SplitOrderedHashMap<u64, u64>> = Arc::new(SplitOrderedHashMap::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..2_500u64 {
                        assert!(m.insert(t * 10_000 + i, i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 10_000);
        for t in 0..4u64 {
            for i in 0..2_500u64 {
                assert_eq!(m.get(&(t * 10_000 + i)), Some(i));
            }
        }
    }
}

//! A fixed-size work-stealing thread pool built from the `cds` structure
//! zoo — the runtime the scheduler literature motivates work-stealing
//! deques with.
//!
//! # Architecture
//!
//! * One [`cds_queue::ChaseLevDeque`] **worker** per pool thread holds its
//!   local tasks (LIFO for the owner — cache-warm child tasks run first);
//!   every other thread holds that deque's [`cds_queue::Stealer`].
//! * External submissions land in a shared bounded **injector**
//!   ([`cds_queue::BoundedQueue`]); when it is full, [`Executor::spawn`]
//!   falls through to an unbounded lock-free **overflow** queue
//!   ([`cds_queue::MsQueue`]) instead of blocking — `spawn` never waits.
//! * Idle workers probe victims in seeded-random order with
//!   [`cds_queue::Stealer::steal_batch_and_pop`] (up to half the victim's
//!   tasks, amortizing the probe), escalate through
//!   [`cds_sync::Backoff`], and finally **park** on an eventcount whose
//!   prepare / re-check / commit protocol is lost-wakeup-free (see
//!   [`Parker` protocol](#parker-protocol) below).
//! * The whole pool is generic over `R:`[`Reclaimer`] like the structures
//!   it composes, so the deque buffers and overflow nodes are managed by
//!   whichever backend the application standardized on.
//!
//! # Parker protocol
//!
//! Parking uses an *eventcount* (`epoch` counter + mutex/condvar):
//!
//! 1. **prepare**: the worker increments the parked-waiter count and
//!    reads the current epoch as its ticket;
//! 2. **re-check**: it re-examines every task source (injector, overflow,
//!    every stealer) *after* the prepare — if anything is visible it
//!    cancels and rescans;
//! 3. **commit**: it blocks until the epoch moves past its ticket.
//!
//! A spawner makes its task visible, then (behind a `SeqCst` fence)
//! checks the waiter count and bumps the epoch. The two orders close both
//! races: an unpark *after* a worker's prepare changes the epoch so the
//! commit falls through; an unpark *before* the prepare implies the task
//! was already visible to the worker's re-check. Under an active
//! [`cds_core::stress`] scheduler the commit spins through yield points
//! instead of blocking in the kernel (the harness determinism rule), so
//! the PCT scheduler can interleave park/unpark decisions
//! deterministically.
//!
//! # Termination detection
//!
//! [`Steal::Retry`] is never treated as emptiness (the
//! [`Steal`](cds_queue::Steal) contract): a worker only exits on shutdown
//! after a scan in which every source reported empty and every steal
//! returned `Empty` — a `Retry` means another thread took the element, so
//! the worker rescans.
//!
//! # Example
//!
//! ```
//! use cds_exec::Executor;
//! use cds_atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let pool = Executor::new(2);
//! let hits = Arc::new(AtomicU64::new(0));
//! for _ in 0..100 {
//!     let hits = Arc::clone(&hits);
//!     pool.spawn(move || {
//!         hits.fetch_add(1, Ordering::Relaxed);
//!     });
//! }
//! pool.quiesce();
//! assert_eq!(hits.load(Ordering::Relaxed), 100);
//! assert_eq!(pool.spawned(), pool.executed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use cds_atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::cell::Cell;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

use cds_core::stress;
use cds_core::ConcurrentQueue;
use cds_obs::Event;
use cds_queue::{BoundedQueue, ChaseLevDeque, MsQueue, Steal, Stealer, Worker};
use cds_reclaim::{Ebr, Reclaimer};
use cds_sync::Backoff;

/// A unit of work: a boxed closure run exactly once on some pool thread.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Pool geometry and seeding.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Number of worker threads (must be positive).
    pub threads: usize,
    /// Seed of the per-worker victim-selection RNG streams; two pools
    /// with the same seed and thread count probe victims in the same
    /// order, which is what makes scheduled executor runs replayable.
    pub seed: u64,
    /// Capacity of the bounded injector (rounded up to a power of two).
    /// Spawns that find it full overflow into the unbounded queue.
    pub injector_capacity: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: 4,
            seed: 0,
            injector_capacity: 256,
        }
    }
}

/// The eventcount the workers park on — the shared
/// [`cds_sync::Parker`], re-exported so the protocol has one audited
/// home (PR-9 moved it down to `cds-sync`, where `cds-chan` reuses it
/// for blocking channel sends/receives). See the crate docs for the
/// prepare / re-check / commit pairing with `Shared::spawn_task`'s
/// fence, and the `cds_sync` parker docs for the lost-wakeup argument.
///
/// Public so the lincheck suite can model-check the protocol directly
/// (an eventcount spec runs it under both the PCT and the systematic
/// exploration schedulers); executor users never need it.
pub use cds_sync::Parker;

/// State shared by the pool handle and every worker thread.
struct Shared<R: Reclaimer> {
    injector: BoundedQueue<Task>,
    overflow: MsQueue<Task, R>,
    stealers: Vec<Stealer<Task, R>>,
    parker: Parker,
    spawned: AtomicU64,
    executed: AtomicU64,
    shutdown: AtomicBool,
    seed: u64,
}

impl<R: Reclaimer> Shared<R> {
    /// Submits a task: local deque when called from a worker of this
    /// pool, else the bounded injector, else the overflow queue. Never
    /// blocks.
    fn spawn_task(self: &Arc<Self>, task: Task) {
        self.spawned.fetch_add(1, Ordering::SeqCst);
        cds_obs::count(Event::ExecTasksSpawned);
        stress::yield_point();
        let pool = Arc::as_ptr(self) as *const () as usize;
        let mut task = Some(task);
        let local = LOCAL.with(|l| match l.get() {
            Some(slot) if slot.pool == pool => {
                // SAFETY: the slot is published only while the worker
                // loop (and thus the pointed-to deque owner) is live on
                // this very thread, and cleared before it exits.
                unsafe { (slot.push)(slot.worker, task.take().expect("task present")) };
                true
            }
            _ => false,
        });
        if !local {
            if let Err(t) = self
                .injector
                .try_enqueue(task.take().expect("task present"))
            {
                cds_obs::count(Event::ExecInjectorOverflow);
                self.overflow.enqueue(t);
            }
        }
        // Pairs with the waiter increment in `Parker::prepare`: the task
        // made visible above is ordered before the waiter-count read
        // inside `unpark_all`.
        fence(Ordering::SeqCst);
        self.parker.unpark_all();
    }

    /// Whether any task source is visibly non-empty. Used by the park
    /// re-check; all the emptiness reads are racy, which is fine — work
    /// arriving after the prepare is covered by the epoch protocol.
    fn has_visible_work(&self, own_index: usize) -> bool {
        if !self.injector.is_empty() || !self.overflow.is_empty() {
            return true;
        }
        self.stealers
            .iter()
            .enumerate()
            .any(|(i, s)| i != own_index && !s.is_empty())
    }
}

impl<R: Reclaimer> fmt::Debug for Shared<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("workers", &self.stealers.len())
            .field("spawned", &self.spawned.load(Ordering::Relaxed))
            .field("executed", &self.executed.load(Ordering::Relaxed))
            .field("reclaimer", &R::NAME)
            .finish()
    }
}

/// The worker-thread hook `spawn` uses to detect "called from inside
/// this pool" and push to the local deque. Type-erased so the
/// thread-local does not depend on `R`.
#[derive(Clone, Copy)]
struct LocalSlot {
    /// Identity of the owning pool (`Arc::as_ptr` of its `Shared`).
    pool: usize,
    /// Type-erased `*const Worker<Task, R>` owned by this thread's loop.
    worker: *const (),
    push: unsafe fn(*const (), Task),
}

thread_local! {
    static LOCAL: Cell<Option<LocalSlot>> = const { Cell::new(None) };
}

/// # Safety
/// `worker` must point to a live `Worker<Task, R>` owned by the calling
/// thread.
unsafe fn push_local<R: Reclaimer>(worker: *const (), task: Task) {
    // SAFETY: per the caller contract; the worker loop publishes the
    // pointer only for its own thread's lifetime.
    unsafe { (*worker.cast::<Worker<Task, R>>()).push(task) }
}

/// Clears the thread-local spawn hook on scope exit (including panic),
/// before the deque it points into is dropped.
struct LocalGuard;

impl Drop for LocalGuard {
    fn drop(&mut self) {
        LOCAL.with(|l| l.set(None));
    }
}

/// One scan over every task source.
enum ScanOutcome {
    /// Got a task.
    Found(Task),
    /// Nothing obtained, but some steal returned [`Steal::Retry`] — work
    /// may remain, so the worker must rescan before idling or exiting.
    Contended,
    /// Every source empty and every steal returned [`Steal::Empty`].
    Empty,
}

/// One pass over the task sources: local deque, injector, overflow, then
/// every other worker's deque in seeded-random rotation (batch steals).
fn scan<R: Reclaimer>(
    shared: &Shared<R>,
    worker: &Worker<Task, R>,
    index: usize,
    rng: &mut stress::SplitMix64,
) -> ScanOutcome {
    if let Some(task) = worker.pop() {
        return ScanOutcome::Found(task);
    }
    if let Some(task) = shared.injector.try_dequeue() {
        return ScanOutcome::Found(task);
    }
    if let Some(task) = shared.overflow.dequeue() {
        return ScanOutcome::Found(task);
    }
    let n = shared.stealers.len();
    let start = rng.below(n as u64) as usize;
    let mut contended = false;
    for k in 0..n {
        let victim = (start + k) % n;
        if victim == index {
            continue;
        }
        match shared.stealers[victim].steal_batch_and_pop(worker) {
            Steal::Success(task) => {
                cds_obs::count(Event::ExecStealHit);
                return ScanOutcome::Found(task);
            }
            Steal::Retry => contended = true,
            Steal::Empty => {}
        }
    }
    cds_obs::count(Event::ExecStealMiss);
    if contended {
        ScanOutcome::Contended
    } else {
        ScanOutcome::Empty
    }
}

fn run_task<R: Reclaimer>(shared: &Shared<R>, task: Task) {
    // A panicking task must not take its worker thread (and the pool's
    // conservation invariant) down with it; the panic is contained to
    // the task and the completion is still counted.
    let _ = std::panic::catch_unwind(AssertUnwindSafe(task));
    // Telemetry before the completion count: `quiesce` returns as soon as
    // a reader observes the final `executed` increment, and anything
    // sequenced after it (on the worker) may not be visible to a snapshot
    // taken right after quiesce — which would break the spawned ==
    // executed conservation invariant the telemetry otherwise satisfies
    // at every quiescent point.
    cds_obs::count(Event::ExecTasksExecuted);
    shared.executed.fetch_add(1, Ordering::SeqCst);
}

fn worker_loop<R: Reclaimer>(
    shared: Arc<Shared<R>>,
    worker: Worker<Task, R>,
    index: usize,
    start: Arc<Barrier>,
) {
    // Register with a live stress scheduler (inert otherwise) and
    // rendezvous before touching shared state, so schedules depend on
    // the seed rather than on OS thread-start timing.
    let _slot = stress::register(index);
    start.wait();

    LOCAL.with(|l| {
        l.set(Some(LocalSlot {
            pool: Arc::as_ptr(&shared) as *const () as usize,
            worker: std::ptr::addr_of!(worker).cast(),
            push: push_local::<R>,
        }))
    });
    let _cleanup = LocalGuard;

    let mut rng =
        stress::SplitMix64::new(stress::mix_seed(shared.seed, 0x5eed_0000 + index as u64));
    let backoff = Backoff::new();
    loop {
        match scan(&shared, &worker, index, &mut rng) {
            ScanOutcome::Found(task) => {
                backoff.reset();
                run_task(&shared, task);
            }
            ScanOutcome::Contended => {
                // Someone else is making progress; never park (and never
                // exit) off a Retry — the Steal termination contract.
                backoff.snooze();
            }
            ScanOutcome::Empty => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if !backoff.is_completed() {
                    backoff.snooze();
                    continue;
                }
                // Backoff exhausted: prepare-park, re-check every task
                // source (and the shutdown flag), then commit.
                stress::yield_point();
                let ticket = shared.parker.prepare();
                if shared.shutdown.load(Ordering::SeqCst) || shared.has_visible_work(index) {
                    shared.parker.cancel();
                    backoff.reset();
                    continue;
                }
                cds_obs::count(Event::ExecParks);
                shared.parker.park(ticket);
                backoff.reset();
            }
        }
    }
}

/// A fixed-size work-stealing thread pool; see the crate docs for the
/// architecture and protocols.
///
/// Dropping the pool shuts it down: in-flight tasks (including tasks they
/// spawn) are drained, then the worker threads are joined.
///
/// # Stress scheduling
///
/// Under an installed [`cds_core::stress`] scheduler the workers register
/// as threads `0..threads`, so a test driving the pool should register
/// its own thread at an index `>= threads` and must not run a second
/// registered pool concurrently.
pub struct Executor<R: Reclaimer = Ebr> {
    shared: Arc<Shared<R>>,
    handles: Vec<JoinHandle<()>>,
}

impl Executor<Ebr> {
    /// Creates a pool of `threads` workers on the default ([`Ebr`])
    /// backend.
    pub fn new(threads: usize) -> Self {
        Executor::with_config(ExecConfig {
            threads,
            ..ExecConfig::default()
        })
    }
}

impl<R: Reclaimer> Executor<R> {
    /// Creates a pool on the reclamation backend `R`.
    ///
    /// Construction returns only after every worker has registered (see
    /// the type docs) and passed the start barrier, so a scheduled test
    /// observes a fully-assembled pool.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.threads` is zero.
    pub fn with_config(cfg: ExecConfig) -> Self {
        assert!(cfg.threads > 0, "executor needs at least one worker");
        let mut workers = Vec::with_capacity(cfg.threads);
        let mut stealers = Vec::with_capacity(cfg.threads);
        for _ in 0..cfg.threads {
            let (w, s) = ChaseLevDeque::<Task, R>::with_reclaimer();
            workers.push(w);
            stealers.push(s);
        }
        let shared = Arc::new(Shared {
            injector: BoundedQueue::with_capacity(cfg.injector_capacity.max(1)),
            overflow: MsQueue::with_reclaimer(),
            stealers,
            parker: Parker::new(),
            spawned: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            seed: cfg.seed,
        });
        let start = Arc::new(Barrier::new(cfg.threads + 1));
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(index, worker)| {
                let shared = Arc::clone(&shared);
                let start = Arc::clone(&start);
                std::thread::Builder::new()
                    .name(format!("cds-exec-{index}"))
                    .spawn(move || worker_loop(shared, worker, index, start))
                    .expect("spawn executor worker")
            })
            .collect();
        start.wait();
        Executor { shared, handles }
    }

    /// Submits a task. Never blocks: a full injector overflows into the
    /// unbounded queue. Called from inside one of this pool's own tasks,
    /// the task goes to that worker's local (LIFO) deque instead.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.shared.spawn_task(Box::new(f));
    }

    /// A cloneable, `Send` submission handle — what tasks capture to
    /// spawn children (fork/join style).
    pub fn handle(&self) -> Handle<R> {
        Handle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Scoped fork-join over a [`cds_chan`] channel: runs every job on
    /// the pool and blocks until all results are in, returned in
    /// submission order. Each job sends its indexed result over a
    /// bounded channel sized to the batch (so sends never block) and the
    /// caller plays consumer — the canonical scatter/gather wiring of
    /// channels into the executor.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic is re-raised here (the worker thread
    /// itself survives, as with [`spawn`](Self::spawn)).
    ///
    /// # Example
    ///
    /// ```
    /// let pool = cds_exec::Executor::new(2);
    /// let squares = pool.scoped((0..8u64).map(|i| move || i * i).collect());
    /// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    /// ```
    pub fn scoped<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        let results = cds_chan::bounded::<(usize, Option<T>)>(n.max(1));
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = results.clone();
            self.spawn(move || {
                let out = std::panic::catch_unwind(AssertUnwindSafe(job)).ok();
                // A closed channel would mean the caller gave up; it
                // never does, but a lost send must not panic the worker.
                let _ = tx.send((i, out));
            });
        }
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, v) = results.recv().expect("scoped channel closed early");
            out[i] = v;
        }
        out.into_iter()
            .map(|slot| slot.expect("scoped job panicked"))
            .collect()
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.stealers.len()
    }

    /// Total tasks submitted so far.
    pub fn spawned(&self) -> u64 {
        self.shared.spawned.load(Ordering::SeqCst)
    }

    /// Total tasks that finished executing so far.
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::SeqCst)
    }

    /// Waits until every task spawned so far — transitively including
    /// tasks spawned by tasks — has executed (`spawned == executed`,
    /// the conservation invariant). The caller must ensure no *other*
    /// thread keeps spawning concurrently, or quiesce may chase the
    /// moving target indefinitely.
    pub fn quiesce(&self) {
        let backoff = Backoff::new();
        loop {
            // `executed` is read first: it trails `spawned` (a task is
            // counted spawned before it can run), so an equal pair here
            // cannot be a torn in-between state.
            let executed = self.shared.executed.load(Ordering::SeqCst);
            let spawned = self.shared.spawned.load(Ordering::SeqCst);
            if executed == spawned {
                return;
            }
            stress::yield_point();
            backoff.snooze();
        }
    }

    /// Drains all outstanding tasks, stops the workers, and joins them.
    /// Equivalent to dropping the pool, but explicit.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.parker.force_unpark_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<R: Reclaimer> Drop for Executor<R> {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

impl<R: Reclaimer> fmt::Debug for Executor<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("shared", &self.shared)
            .finish()
    }
}

/// A cloneable submission handle to an [`Executor`]; see
/// [`Executor::handle`].
///
/// Holding a handle does not keep the workers alive — once the pool is
/// shut down, spawned tasks are counted but never run, so handles should
/// not outlive their pool's useful life.
pub struct Handle<R: Reclaimer = Ebr> {
    shared: Arc<Shared<R>>,
}

impl<R: Reclaimer> Handle<R> {
    /// Submits a task; identical semantics to [`Executor::spawn`].
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.shared.spawn_task(Box::new(f));
    }
}

impl<R: Reclaimer> Clone for Handle<R> {
    fn clone(&self) -> Self {
        Handle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<R: Reclaimer> fmt::Debug for Handle<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Handle")
            .field("shared", &self.shared)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_atomic::AtomicU64 as Counter;

    #[test]
    fn runs_every_task_once() {
        let pool = Executor::new(4);
        let hits = Arc::new(Counter::new(0));
        for _ in 0..1_000 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.quiesce();
        assert_eq!(hits.load(Ordering::Relaxed), 1_000);
        assert_eq!(pool.spawned(), 1_000);
        assert_eq!(pool.executed(), 1_000);
        pool.shutdown();
    }

    #[test]
    fn fork_join_from_tasks_conserves() {
        // Each root task forks children from inside the pool (exercising
        // the local-deque spawn path); quiesce waits for the transitive
        // closure.
        let pool = Executor::new(3);
        let hits = Arc::new(Counter::new(0));
        let handle = pool.handle();
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            let handle = handle.clone();
            pool.spawn(move || {
                for _ in 0..8 {
                    let hits = Arc::clone(&hits);
                    handle.spawn(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.quiesce();
        assert_eq!(hits.load(Ordering::Relaxed), 64 * 9);
        assert_eq!(pool.spawned(), 64 * 9);
        assert_eq!(pool.executed(), 64 * 9);
    }

    #[test]
    fn tiny_injector_overflows_without_blocking_or_loss() {
        let pool: Executor = Executor::with_config(ExecConfig {
            threads: 2,
            seed: 7,
            injector_capacity: 2,
        });
        let hits = Arc::new(Counter::new(0));
        // Far more spawns than injector slots: the overflow queue must
        // absorb the excess and the workers must drain both.
        for _ in 0..5_000 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.quiesce();
        assert_eq!(hits.load(Ordering::Relaxed), 5_000);
    }

    #[test]
    fn drop_drains_outstanding_tasks() {
        let hits = Arc::new(Counter::new(0));
        {
            let pool = Executor::new(2);
            for _ in 0..500 {
                let hits = Arc::clone(&hits);
                pool.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No quiesce: Drop must still run everything before joining.
        }
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn panicking_task_is_contained() {
        let pool = Executor::new(2);
        let hits = Arc::new(Counter::new(0));
        pool.spawn(|| panic!("task panic must not kill the worker"));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.quiesce();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(pool.executed(), 101);
    }

    #[test]
    fn runs_on_every_reclamation_backend() {
        fn run<R: Reclaimer>() {
            let pool: Executor<R> = Executor::with_config(ExecConfig {
                threads: 3,
                seed: 1,
                injector_capacity: 8,
            });
            let hits = Arc::new(Counter::new(0));
            let handle = pool.handle();
            for _ in 0..200 {
                let hits = Arc::clone(&hits);
                let handle = handle.clone();
                pool.spawn(move || {
                    let hits2 = Arc::clone(&hits);
                    handle.spawn(move || {
                        hits2.fetch_add(1, Ordering::Relaxed);
                    });
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.quiesce();
            assert_eq!(hits.load(Ordering::Relaxed), 400, "{} backend", R::NAME);
            pool.shutdown();
            R::collect();
        }
        run::<Ebr>();
        run::<cds_reclaim::Hazard>();
        run::<cds_reclaim::Leak>();
        run::<cds_reclaim::DebugReclaim>();
    }

    #[test]
    fn spawn_from_foreign_pool_goes_to_injector() {
        // A task on pool A spawning into pool B must not touch A's local
        // deque hook (different pool identity).
        let a = Executor::new(2);
        let b = Executor::new(2);
        let hits = Arc::new(Counter::new(0));
        let bh = b.handle();
        let hits2 = Arc::clone(&hits);
        a.spawn(move || {
            bh.spawn(move || {
                hits2.fetch_add(1, Ordering::Relaxed);
            });
        });
        a.quiesce();
        b.quiesce();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(b.executed(), 1);
    }
}

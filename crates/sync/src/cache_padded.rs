use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the size of a cache line to avoid false
/// sharing.
///
/// When two frequently-written atomics share a cache line, every write by
/// one thread invalidates the line in the other thread's cache even though
/// the data is logically independent — *false sharing*. Wrapping each value
/// in `CachePadded` places them on separate lines.
///
/// The alignment is 128 bytes: large enough for the 64-byte lines of x86-64
/// and the 128-byte lines of Apple silicon, and matching the prefetcher
/// granularity (adjacent-line prefetch) of modern Intel parts.
///
/// # Example
///
/// ```
/// use cds_sync::CachePadded;
/// use cds_atomic::AtomicUsize;
///
/// struct Counters {
///     hits: CachePadded<AtomicUsize>,
///     misses: CachePadded<AtomicUsize>,
/// }
/// let c = Counters {
///     hits: CachePadded::new(AtomicUsize::new(0)),
///     misses: CachePadded::new(AtomicUsize::new(0)),
/// };
/// # let _ = c;
/// ```
#[derive(Default, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-aligned container.
    #[inline]
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consumes the wrapper, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_128() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 128);
    }

    #[test]
    fn deref_round_trip() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn array_elements_do_not_share_lines() {
        let arr = [CachePadded::new(0u8), CachePadded::new(0u8)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert!(b - a >= 128);
    }
}

//! Eventcount parker: the one audited block/wake protocol shared by the
//! executor (`cds-exec`) and the channels (`cds-chan`).
//!
//! Parking uses an *eventcount* (`epoch` counter + mutex/condvar):
//!
//! 1. **prepare**: the waiter increments the parked-waiter count and
//!    reads the current epoch as its ticket;
//! 2. **re-check**: it re-examines the condition it is about to wait on
//!    *after* the prepare — if the condition already holds it cancels;
//! 3. **commit**: it blocks until the epoch moves past its ticket.
//!
//! A waker makes its state change visible, then (behind a `SeqCst`
//! fence) checks the waiter count and bumps the epoch. The two orders
//! close both races: a wake *after* a waiter's prepare changes the
//! epoch so the commit falls through; a wake *before* the prepare
//! implies the state change was already visible to the waiter's
//! re-check. Under an active stress scheduler the commit spins through
//! yield points instead of blocking in the kernel (the harness
//! determinism rule), so the PCT and exploration schedulers can
//! interleave park/unpark decisions deterministically.

use cds_atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::stress;
use crate::stress::YieldTag;

/// Bound on the deterministic yield-spin a [`Parker::park_timeout`]
/// performs in place of a kernel timed wait while a stress schedule is
/// driving. Wall-clock time is meaningless under a deterministic
/// scheduler, so "timeout" becomes "this many scheduling opportunities
/// passed without a wake".
const STRESS_TIMEOUT_YIELDS: u32 = 64;

/// An eventcount: the prepare / re-check / commit parking protocol.
///
/// See the module docs for the lost-wakeup argument. The lincheck suite
/// model-checks this protocol directly (an eventcount spec runs it
/// under both the PCT and the systematic exploration schedulers).
pub struct Parker {
    /// Bumped by every unpark; a parked waiter sleeps only while the
    /// epoch still equals the ticket it drew at prepare time.
    epoch: AtomicU64,
    /// Threads between prepare and wake; lets the wake fast path skip
    /// the mutex when nobody can be parked.
    waiters: AtomicUsize,
    lock: Mutex<()>,
    cvar: Condvar,
}

impl Parker {
    /// Creates an eventcount with no waiters and epoch zero.
    pub fn new() -> Self {
        Parker {
            epoch: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    /// Prepare-park: announce this thread as a waiter, then draw the
    /// epoch ticket. The `SeqCst` ordering pairs with the fence a waker
    /// issues between making its state change visible and reading the
    /// waiter count: either the waker sees our waiter increment (and
    /// bumps the epoch), or we see its change in the caller's re-check.
    pub fn prepare(&self) -> u64 {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        self.epoch.load(Ordering::SeqCst)
    }

    /// Abandon a prepared park (the re-check found the condition
    /// already satisfied).
    pub fn cancel(&self) {
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Commit-park: block until the epoch moves past `ticket`. Under an
    /// active stress scheduler this spins through yield points instead —
    /// nothing may block in the kernel while a deterministic schedule is
    /// running.
    pub fn park(&self, ticket: u64) {
        if stress::stress_active() {
            while self.epoch.load(Ordering::SeqCst) == ticket {
                // A pure recheck of the epoch word until an unpark bumps
                // it; lets the systematic explorer park this thread until
                // another thread runs.
                stress::yield_point_tagged(YieldTag::Blocked(self as *const Self as usize));
                std::hint::spin_loop();
            }
        } else {
            let mut guard = self.lock.lock().unwrap_or_else(|p| p.into_inner());
            while self.epoch.load(Ordering::SeqCst) == ticket {
                guard = self.cvar.wait(guard).unwrap_or_else(|p| p.into_inner());
            }
            drop(guard);
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Commit-park with a deadline: block until the epoch moves past
    /// `ticket` or `timeout` elapses. Returns `true` if woken, `false`
    /// on timeout (the caller must then re-check its condition itself —
    /// a timeout and a wake can race, and the `false` only means the
    /// deadline passed first here).
    ///
    /// Under an active stress scheduler the kernel timed wait is
    /// replaced by a bounded spin through yield points
    /// ([`STRESS_TIMEOUT_YIELDS`] scheduling opportunities), keeping
    /// seeded schedules free of wall-clock dependence.
    pub fn park_timeout(&self, ticket: u64, timeout: Duration) -> bool {
        let woken = if stress::stress_active() {
            let mut woken = false;
            for _ in 0..STRESS_TIMEOUT_YIELDS {
                if self.epoch.load(Ordering::SeqCst) != ticket {
                    woken = true;
                    break;
                }
                stress::yield_point_tagged(YieldTag::Blocked(self as *const Self as usize));
                std::hint::spin_loop();
            }
            woken || self.epoch.load(Ordering::SeqCst) != ticket
        } else {
            let deadline = std::time::Instant::now() + timeout;
            let mut guard = self.lock.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if self.epoch.load(Ordering::SeqCst) != ticket {
                    break true;
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    break false;
                }
                let (g, _res) = self
                    .cvar
                    .wait_timeout(guard, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                guard = g;
            }
        };
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        woken
    }

    /// Wake every parked thread if any thread might be parked; the
    /// caller must have made its state change visible before calling
    /// (see [`prepare`](Self::prepare) for the pairing).
    pub fn unpark_all(&self) {
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        self.force_unpark_all();
    }

    /// Wake every parked thread unconditionally (shutdown/close path).
    pub fn force_unpark_all(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        // Acquiring the mutex after the bump means the bump cannot land
        // between a committing waiter's epoch check (done under this
        // lock) and its condvar wait — the classic lost-wakeup window.
        drop(self.lock.lock().unwrap_or_else(|p| p.into_inner()));
        self.cvar.notify_all();
    }
}

impl Default for Parker {
    fn default() -> Self {
        Parker::new()
    }
}

impl fmt::Debug for Parker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Parker")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("waiters", &self.waiters.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wake_after_prepare_falls_through() {
        let p = Parker::new();
        let ticket = p.prepare();
        p.force_unpark_all();
        // The epoch moved past our ticket, so the commit returns at once.
        p.park(ticket);
    }

    #[test]
    fn timeout_expires_without_wake() {
        let p = Parker::new();
        let ticket = p.prepare();
        assert!(!p.park_timeout(ticket, Duration::from_millis(10)));
    }

    #[test]
    fn timeout_woken_by_unpark() {
        let p = Arc::new(Parker::new());
        let flag = Arc::new(AtomicBool::new(false));
        let ticket = p.prepare();
        let h = {
            let p = Arc::clone(&p);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                flag.store(true, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                p.unpark_all();
            })
        };
        let woken = p.park_timeout(ticket, Duration::from_secs(30));
        h.join().unwrap();
        assert!(woken || flag.load(Ordering::SeqCst));
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn cross_thread_park_unpark() {
        let p = Arc::new(Parker::new());
        let flag = Arc::new(AtomicBool::new(false));
        let waiter = {
            let p = Arc::clone(&p);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || loop {
                let ticket = p.prepare();
                if flag.load(Ordering::SeqCst) {
                    p.cancel();
                    return;
                }
                p.park(ticket);
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        flag.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        p.unpark_all();
        waiter.join().unwrap();
    }
}

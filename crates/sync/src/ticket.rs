use cds_atomic::{AtomicUsize, Ordering};
use std::fmt;

use crate::{CachePadded, RawLock};

/// FIFO-fair ticket lock.
///
/// Two counters implement a bakery-style discipline: each arriving thread
/// takes the next *ticket* with a fetch-and-add, then spins until the
/// *now-serving* counter reaches its ticket. Release increments
/// now-serving, handing the lock to the next ticket holder.
///
/// Compared to [`TtasLock`](crate::TtasLock), the ticket lock guarantees
/// **first-come-first-served fairness** (no starvation) and release is a
/// plain store, but every waiter spins on the shared now-serving counter, so
/// each release still invalidates every waiter's cache line — the problem
/// queue locks ([`ClhLock`](crate::ClhLock), [`McsLock`](crate::McsLock))
/// solve with local spinning. Waiters back off proportionally to their
/// distance from the head of the queue.
///
/// # Example
///
/// ```
/// use cds_sync::{Lock, TicketLock};
///
/// let slot = Lock::<TicketLock, Option<&str>>::new(None);
/// *slot.lock() = Some("served in order");
/// assert_eq!(*slot.lock(), Some("served in order"));
/// ```
#[derive(Default)]
pub struct TicketLock {
    next_ticket: CachePadded<AtomicUsize>,
    now_serving: CachePadded<AtomicUsize>,
}

impl TicketLock {
    /// Creates a new, unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of acquisitions completed or in progress (diagnostics only).
    pub fn tickets_issued(&self) -> usize {
        self.next_ticket.load(Ordering::Relaxed)
    }
}

impl RawLock for TicketLock {
    type Token = ();
    const NAME: &'static str = "ticket";

    fn lock(&self) {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let backoff = crate::Backoff::new();
        loop {
            let serving = self.now_serving.load(Ordering::Acquire);
            if serving == ticket {
                cds_obs::count(cds_obs::Event::TicketAcquire);
                return;
            }
            cds_obs::count(cds_obs::Event::TicketSpin);
            // Proportional backoff: threads far back in line pause longer,
            // reducing pressure on the now-serving line. The trailing
            // `snooze` escalates to `yield_now` so that a FIFO lock does
            // not livelock on an oversubscribed host: if the thread whose
            // turn it is has been descheduled, pure spinning would burn a
            // whole scheduler quantum per hand-off.
            // The inner pause loop is *bounded* (<= 64 pauses) and is
            // followed by `snooze`, which is a stress yield point — so
            // every iteration of the outer wait loop reaches the
            // scheduler. (Audit invariant for this crate: no spin loop
            // may complete an iteration without passing a yield point.)
            let distance = ticket.wrapping_sub(serving);
            for _ in 0..distance.min(64) {
                core::hint::spin_loop();
            }
            // Pure recheck of now-serving until it reaches our ticket.
            backoff.snooze_tagged(crate::stress::YieldTag::Blocked(
                self as *const Self as usize,
            ));
        }
    }

    fn try_lock(&self) -> Option<()> {
        let serving = self.now_serving.load(Ordering::Acquire);
        // Claim the next ticket only if it would be served immediately.
        if self
            .next_ticket
            .compare_exchange(serving, serving + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            cds_obs::count(cds_obs::Event::TicketAcquire);
            Some(())
        } else {
            None
        }
    }

    #[inline]
    fn unlock(&self, (): ()) {
        let serving = self.now_serving.load(Ordering::Relaxed);
        self.now_serving.store(serving + 1, Ordering::Release);
    }
}

impl fmt::Debug for TicketLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TicketLock")
            .field("next_ticket", &self.next_ticket.load(Ordering::Relaxed))
            .field("now_serving", &self.now_serving.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock() {
        let l = TicketLock::new();
        l.lock();
        l.unlock(());
        l.lock();
        l.unlock(());
        assert_eq!(l.tickets_issued(), 2);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let l = TicketLock::new();
        l.lock();
        assert!(l.try_lock().is_none());
        l.unlock(());
        l.try_lock().unwrap();
        l.unlock(());
    }

    #[test]
    fn fifo_order_is_respected() {
        // Threads record the order in which they enter the critical section;
        // with a ticket lock a thread that acquires its ticket first enters
        // first. We validate mutual exclusion plus exact count.
        let l = Arc::new(TicketLock::new());
        let shared = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        l.lock();
                        let v = shared.load(Ordering::Relaxed);
                        shared.store(v + 1, Ordering::Relaxed);
                        l.unlock(());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.load(Ordering::Relaxed), 2000);
    }
}

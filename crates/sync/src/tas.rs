use cds_atomic::{AtomicBool, Ordering};
use std::fmt;

use crate::RawLock;

/// Test-and-set spin lock.
///
/// The simplest possible lock: a single flag, acquired by atomically
/// swapping `true` in and observing the old value. Every acquisition
/// attempt is a read-modify-write, so under contention each spin invalidates
/// the flag's cache line in every other spinner — the classic scalability
/// failure that [`TtasLock`](crate::TtasLock) fixes. It is included as the
/// baseline in the lock benchmarks (experiment E9) and because for
/// *uncontended* use it is as fast as anything.
///
/// # Example
///
/// ```
/// use cds_sync::{Lock, TasLock};
///
/// let data = Lock::<TasLock, i32>::new(7);
/// *data.lock() += 1;
/// assert_eq!(*data.lock(), 8);
/// ```
#[derive(Default)]
pub struct TasLock {
    locked: AtomicBool,
}

impl TasLock {
    /// Creates a new, unlocked lock.
    pub const fn new() -> Self {
        TasLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Returns `true` if the lock is currently held.
    ///
    /// This is inherently racy and useful only for diagnostics.
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

impl RawLock for TasLock {
    type Token = ();
    const NAME: &'static str = "tas";

    #[inline]
    fn lock(&self) {
        while self.locked.swap(true, Ordering::Acquire) {
            // A bare spin is a scheduling blind spot under the stress
            // scheduler: the token holder would burn its whole fairness
            // bound here. Keep the naive TAS spin (the point of this
            // lock) but give the scheduler a preemption hook. The next
            // step is another swap attempt on the flag, hence `Write`.
            crate::stress::yield_point_tagged(crate::stress::YieldTag::Write(
                self as *const Self as usize,
            ));
            cds_obs::count(cds_obs::Event::TasSpin);
            core::hint::spin_loop();
        }
        cds_obs::count(cds_obs::Event::TasAcquire);
    }

    #[inline]
    fn try_lock(&self) -> Option<()> {
        if self.locked.swap(true, Ordering::Acquire) {
            None
        } else {
            cds_obs::count(cds_obs::Event::TasAcquire);
            Some(())
        }
    }

    #[inline]
    fn unlock(&self, (): ()) {
        self.locked.store(false, Ordering::Release);
    }
}

impl fmt::Debug for TasLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TasLock")
            .field("locked", &self.is_locked())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_unlock() {
        let l = TasLock::new();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        l.unlock(());
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock_fails_when_held() {
        let l = TasLock::new();
        l.lock();
        assert!(l.try_lock().is_none());
        l.unlock(());
        l.try_lock().expect("lock should be free");
        l.unlock(());
    }
}

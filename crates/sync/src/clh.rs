use cds_atomic::{AtomicBool, AtomicPtr, Ordering};
use std::fmt;
use std::ptr;

use crate::{Backoff, RawLock};

struct Node {
    locked: AtomicBool,
}

/// CLH queue lock (Craig; Landin & Hagersten).
///
/// Arriving threads enqueue a node holding a `locked` flag and spin on the
/// flag of their **predecessor's** node. Because each thread spins on a
/// distinct location, a release invalidates exactly one waiter's cache line
/// instead of all of them (contrast [`TicketLock`](crate::TicketLock)), and
/// acquisition order is FIFO.
///
/// # Memory management
///
/// The textbook CLH lock recycles the predecessor's node for the thread's
/// next acquisition. This implementation heap-allocates one node per
/// acquisition and frees the predecessor's node as soon as its release has
/// been observed — at that point the releasing thread has abandoned the
/// node, so exactly one thread (the observer) owns it. The node currently
/// installed in `tail` is freed when the lock itself is dropped.
///
/// [`try_lock`](RawLock::try_lock) always fails: a cheap try-acquire cannot
/// be implemented without risking a read of a node that a successor may
/// concurrently free.
///
/// # Example
///
/// ```
/// use cds_sync::{ClhLock, Lock};
///
/// let total = Lock::<ClhLock, u32>::new(0);
/// *total.lock() += 5;
/// assert_eq!(*total.lock(), 5);
/// ```
pub struct ClhLock {
    tail: AtomicPtr<Node>,
}

/// Token for a held [`ClhLock`]; returned by `lock` and consumed by `unlock`.
pub struct ClhToken {
    node: *mut Node,
}

impl fmt::Debug for ClhToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClhToken").finish_non_exhaustive()
    }
}

impl Default for ClhLock {
    fn default() -> Self {
        // A released sentinel node so the first locker has a predecessor.
        let sentinel = Box::into_raw(Box::new(Node {
            locked: AtomicBool::new(false),
        }));
        ClhLock {
            tail: AtomicPtr::new(sentinel),
        }
    }
}

impl ClhLock {
    /// Creates a new, unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RawLock for ClhLock {
    type Token = ClhToken;
    const NAME: &'static str = "clh";

    fn lock(&self) -> ClhToken {
        let me = Box::into_raw(Box::new(Node {
            locked: AtomicBool::new(true),
        }));
        // AcqRel: publish our node's initialization to our successor and
        // observe the predecessor's initialization.
        let pred = self.tail.swap(me, Ordering::AcqRel);
        let backoff = Backoff::new();
        // SAFETY: `pred` was produced by a previous `swap` (or is the
        // sentinel) and is freed only by the thread that observes its
        // release — which is us, below, after this loop.
        unsafe {
            while (*pred).locked.load(Ordering::Acquire) {
                cds_obs::count(cds_obs::Event::ClhSpin);
                // Pure recheck of the predecessor's release flag.
                backoff.snooze_tagged(crate::stress::YieldTag::Blocked(
                    self as *const Self as usize,
                ));
            }
            // The predecessor released and will never touch its node again;
            // we are the only thread holding a reference to it.
            drop(Box::from_raw(pred));
        }
        cds_obs::count(cds_obs::Event::ClhAcquire);
        ClhToken { node: me }
    }

    fn try_lock(&self) -> Option<ClhToken> {
        // See type-level docs: cannot be implemented without a use-after-free
        // hazard on the tail node, so the CLH lock never try-acquires.
        None
    }

    fn unlock(&self, token: ClhToken) {
        // SAFETY: `token.node` is the node we installed in `lock`; until this
        // store only we reference it mutably, and after this store we never
        // touch it again (ownership passes to the observer of the release).
        unsafe {
            (*token.node).locked.store(false, Ordering::Release);
        }
    }
}

impl Drop for ClhLock {
    fn drop(&mut self) {
        // At rest exactly one node — the current tail — is still allocated.
        let tail = self.tail.swap(ptr::null_mut(), Ordering::Relaxed);
        if !tail.is_null() {
            // SAFETY: exclusive access (`&mut self`); no thread can hold the
            // lock when it is being dropped.
            unsafe { drop(Box::from_raw(tail)) };
        }
    }
}

// SAFETY: the raw pointers are owned per the protocol documented above;
// all cross-thread hand-offs go through atomics with acquire/release.
unsafe impl Send for ClhLock {}
unsafe impl Sync for ClhLock {}

impl fmt::Debug for ClhLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClhLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_repeatedly() {
        let l = ClhLock::new();
        for _ in 0..100 {
            let t = l.lock();
            l.unlock(t);
        }
    }

    #[test]
    fn try_lock_always_fails() {
        let l = ClhLock::new();
        assert!(l.try_lock().is_none());
    }

    #[test]
    fn mutual_exclusion() {
        let l = Arc::new(ClhLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let t = l.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        l.unlock(t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn drop_while_idle_does_not_leak_or_crash() {
        let l = ClhLock::new();
        let t = l.lock();
        l.unlock(t);
        drop(l);
    }
}

use cds_atomic::{fence, AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::fmt;

use crate::Backoff;

/// A sequence lock for small `Copy` data.
///
/// A seqlock lets readers proceed **without writing any shared state**:
/// a reader samples a sequence counter, copies the data optimistically,
/// and re-checks the counter; if the counter is unchanged and even, no
/// writer interfered and the copy is consistent. Writers increment the
/// counter to odd before writing and back to even after, and exclude each
/// other with a CAS on the same counter.
///
/// Reads are wait-free in the absence of writers and never cause cache-line
/// invalidations, which is why seqlocks guard frequently-read,
/// rarely-written kernel data (e.g. Linux's `jiffies`).
///
/// `T` must be `Copy`: a torn read is discarded before it is ever
/// interpreted, which is only sound for plain-old-data.
///
/// # Implementation note
///
/// The optimistic read races with writers by design. The implementation
/// copies the payload with volatile reads between acquire fences and
/// discards the copy when the sequence check fails — the standard seqlock
/// construction used by `crossbeam`'s `AtomicCell` fallback and the Linux
/// kernel. (Strictly, the C++11/Rust memory model has no way to express a
/// benign data race; the volatile+fence idiom is the accepted practical
/// encoding.)
///
/// # Example
///
/// ```
/// use cds_sync::SeqLock;
///
/// let config = SeqLock::new((800u32, 600u32));
/// config.write((1024, 768));
/// assert_eq!(config.read(), (1024, 768));
/// ```
pub struct SeqLock<T> {
    seq: AtomicUsize,
    data: UnsafeCell<T>,
}

// SAFETY: readers only ever observe committed values (sequence-validated
// copies); writers are mutually exclusive via the sequence counter.
unsafe impl<T: Copy + Send> Send for SeqLock<T> {}
unsafe impl<T: Copy + Send> Sync for SeqLock<T> {}

impl<T: Copy> SeqLock<T> {
    /// Creates a new seqlock holding `value`.
    pub const fn new(value: T) -> Self {
        SeqLock {
            seq: AtomicUsize::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Reads the current value.
    ///
    /// Lock-free and write-free: retries only while a writer is mid-update.
    pub fn read(&self) -> T {
        let backoff = Backoff::new();
        loop {
            if let Some(v) = self.try_read() {
                cds_obs::count(cds_obs::Event::SeqlockRead);
                return v;
            }
            cds_obs::count(cds_obs::Event::SeqlockReadRetry);
            // Pure recheck: a retried optimistic read changes nothing.
            backoff.snooze_tagged(crate::stress::YieldTag::Blocked(
                self as *const Self as usize,
            ));
        }
    }

    /// Attempts a single optimistic read, returning `None` if a concurrent
    /// write interfered.
    pub fn try_read(&self) -> Option<T> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return None; // writer in progress
        }
        // SAFETY: a racing writer may be mutating `data`; the volatile copy
        // is discarded unless the sequence check below proves it was not.
        let value = unsafe { std::ptr::read_volatile(self.data.get()) };
        fence(Ordering::Acquire);
        let s2 = self.seq.load(Ordering::Relaxed);
        if s1 == s2 {
            Some(value)
        } else {
            None
        }
    }

    /// Replaces the stored value.
    ///
    /// Writers exclude each other; concurrent readers retry.
    pub fn write(&self, value: T) {
        self.update(|v| *v = value);
    }

    /// Applies `f` to the stored value under the writer lock.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let backoff = Backoff::new();
        let s = loop {
            let s = self.seq.load(Ordering::Relaxed);
            if s & 1 == 0
                && self
                    .seq
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break s;
            }
            // Not `Blocked`: `compare_exchange_weak` may fail spuriously,
            // so a retry can succeed with no other thread stepping.
            backoff.snooze_tagged(crate::stress::YieldTag::Write(self as *const Self as usize));
        };
        cds_obs::count(cds_obs::Event::SeqlockWrite);
        // SAFETY: the odd sequence value excludes other writers; readers
        // validate against it and discard torn reads.
        let result = f(unsafe { &mut *self.data.get() });
        self.seq.store(s.wrapping_add(2), Ordering::Release);
        result
    }

    /// Returns a mutable reference without synchronization.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: Copy + Default> Default for SeqLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for SeqLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeqLock")
            .field("data", &self.read())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_write_round_trip() {
        let l = SeqLock::new(1u64);
        assert_eq!(l.read(), 1);
        l.write(2);
        assert_eq!(l.read(), 2);
    }

    #[test]
    fn update_returns_closure_result() {
        let l = SeqLock::new(10i32);
        let old = l.update(|v| {
            let old = *v;
            *v += 5;
            old
        });
        assert_eq!(old, 10);
        assert_eq!(l.read(), 15);
    }

    #[test]
    fn readers_never_see_torn_pairs() {
        // Writers always keep the invariant b == !a; any torn read would
        // violate it.
        let l = Arc::new(SeqLock::new((0u64, !0u64)));
        let writer = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    l.write((i, !i));
                }
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        let (a, b) = l.read();
                        assert_eq!(b, !a, "torn read observed");
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn try_read_fails_during_write() {
        let l = SeqLock::new(0u32);
        l.update(|v| {
            *v = 1;
            // While the writer lock is held the sequence is odd.
            assert!(l.try_read().is_none());
        });
        assert_eq!(l.read(), 1);
    }
}

//! Flat combining (Hendler, Incze, Shavit & Tzafrir, SPAA 2010).
//!
//! Instead of every thread taking a lock for its own operation, threads
//! *publish* their operations in per-thread slots; whichever thread holds
//! the combiner lock services **everyone's** pending operations in one
//! pass. Cache-friendliness does the rest: the sequential structure stays
//! resident in the combiner's cache, and the lock is acquired once per
//! *batch* instead of once per operation — often beating fine-grained
//! locking for inherently sequential structures (stacks, queues).

use cds_atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::fmt;

use crate::{Backoff, CachePadded};

/// A sequential structure that can be driven by a [`FlatCombining`]
/// wrapper.
///
/// The combiner applies operations one at a time while holding the
/// combiner lock, so `apply` needs no internal synchronization.
pub trait FcStructure {
    /// Operation descriptions (inputs).
    type Op;
    /// Operation results.
    type Res;

    /// Applies one operation sequentially.
    fn apply(&mut self, op: Self::Op) -> Self::Res;
}

const EMPTY: u8 = 0;
const PENDING: u8 = 1;
const DONE: u8 = 2;

struct Slot<Op, Res> {
    state: AtomicU8,
    op: UnsafeCell<Option<Op>>,
    res: UnsafeCell<Option<Res>>,
}

// How many publication slots; threads beyond this share via modulo and a
// per-slot claim flag.
const SLOTS: usize = 64;

/// Returns a small dense id for the calling thread.
fn thread_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    INDEX.with(|i| *i)
}

/// A flat-combining wrapper turning any sequential [`FcStructure`] into a
/// linearizable concurrent one.
///
/// # Protocol
///
/// [`apply`](FlatCombining::apply) publishes the operation in the calling
/// thread's slot and then either (a) observes the result appear (a
/// concurrent combiner serviced it), or (b) wins the combiner lock itself
/// and services *every* pending slot — including its own — in one scan.
/// Operations are applied only while holding the combiner lock, so each
/// takes effect atomically: the construction is linearizable whenever the
/// wrapped structure is a correct sequential object.
///
/// # Example
///
/// ```
/// use cds_sync::{FcStructure, FlatCombining};
///
/// struct SeqCounter(i64);
/// impl FcStructure for SeqCounter {
///     type Op = i64;
///     type Res = i64;
///     fn apply(&mut self, delta: i64) -> i64 {
///         self.0 += delta;
///         self.0
///     }
/// }
///
/// let c = FlatCombining::new(SeqCounter(0));
/// assert_eq!(c.apply(5), 5);
/// assert_eq!(c.apply(-2), 3);
/// ```
pub struct FlatCombining<S: FcStructure> {
    data: UnsafeCell<S>,
    combiner: AtomicBool,
    #[allow(clippy::type_complexity)]
    slots: Box<[CachePadded<Slot<S::Op, S::Res>>]>,
    /// Claim flags so threads hashing to the same slot take turns.
    claims: Box<[CachePadded<AtomicBool>]>,
}

// SAFETY: `data` is only touched while holding the combiner flag; slot
// `op`/`res` cells are handed off via the slot state machine (PENDING
// publishes op to the combiner; DONE publishes res back). Op/Res cross
// threads, hence the Send bounds.
unsafe impl<S: FcStructure + Send> Send for FlatCombining<S>
where
    S::Op: Send,
    S::Res: Send,
{
}
unsafe impl<S: FcStructure + Send> Sync for FlatCombining<S>
where
    S::Op: Send,
    S::Res: Send,
{
}

impl<S: FcStructure> FlatCombining<S> {
    /// Wraps `structure` for flat-combined access.
    pub fn new(structure: S) -> Self {
        FlatCombining {
            data: UnsafeCell::new(structure),
            combiner: AtomicBool::new(false),
            slots: (0..SLOTS)
                .map(|_| {
                    CachePadded::new(Slot {
                        state: AtomicU8::new(EMPTY),
                        op: UnsafeCell::new(None),
                        res: UnsafeCell::new(None),
                    })
                })
                .collect(),
            claims: (0..SLOTS)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
        }
    }

    /// Applies `op`, possibly by combining it with other threads' pending
    /// operations.
    pub fn apply(&self, op: S::Op) -> S::Res {
        let idx = thread_index() % SLOTS;
        // Claim the slot (threads sharing a slot take turns).
        let claim = &self.claims[idx];
        let backoff = Backoff::new();
        while claim
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            backoff.snooze();
        }

        let slot = &self.slots[idx];
        // SAFETY: the claim gives us exclusive publication rights.
        unsafe { *slot.op.get() = Some(op) };
        slot.state.store(PENDING, Ordering::Release);

        let backoff = Backoff::new();
        let result = loop {
            if slot.state.load(Ordering::Acquire) == DONE {
                // SAFETY: DONE hands the res cell back to us.
                let res = unsafe { (*slot.res.get()).take() }.expect("combiner stored a result");
                slot.state.store(EMPTY, Ordering::Release);
                break res;
            }
            if self
                .combiner
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.combine();
                self.combiner.store(false, Ordering::Release);
                // Our own slot was serviced during the scan.
                debug_assert_eq!(slot.state.load(Ordering::Acquire), DONE);
            } else {
                backoff.snooze();
            }
        };
        claim.store(false, Ordering::Release);
        result
    }

    /// Services every pending slot. Caller must hold the combiner flag.
    fn combine(&self) {
        // SAFETY: the combiner flag gives exclusive access to `data`.
        let data = unsafe { &mut *self.data.get() };
        let mut serviced = 0u64;
        for slot in self.slots.iter() {
            if slot.state.load(Ordering::Acquire) == PENDING {
                // SAFETY: PENDING hands the op cell to the combiner.
                let op = unsafe { (*slot.op.get()).take() }.expect("pending slot holds an op");
                let res = data.apply(op);
                // SAFETY: the res cell belongs to the combiner until DONE.
                unsafe { *slot.res.get() = Some(res) };
                slot.state.store(DONE, Ordering::Release);
                serviced += 1;
            }
        }
        cds_obs::count(cds_obs::Event::FcCombineRounds);
        cds_obs::add(cds_obs::Event::FcOpsCombined, serviced);
    }

    /// Runs `f` on the sequential structure under the combiner lock
    /// (for len/debug style read-outs).
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        let backoff = Backoff::new();
        while self
            .combiner
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            backoff.snooze();
        }
        // Service pending work first so `f` observes a quiescent state.
        self.combine();
        // SAFETY: combiner flag held.
        let r = f(unsafe { &mut *self.data.get() });
        self.combiner.store(false, Ordering::Release);
        r
    }

    /// Consumes the wrapper, returning the sequential structure.
    pub fn into_inner(self) -> S {
        self.data.into_inner()
    }
}

impl<S: FcStructure> fmt::Debug for FlatCombining<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlatCombining")
            .field("slots", &SLOTS)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    struct SeqAdder(i64);

    impl FcStructure for SeqAdder {
        type Op = i64;
        type Res = i64;

        fn apply(&mut self, delta: i64) -> i64 {
            self.0 += delta;
            self.0
        }
    }

    #[test]
    fn sequential_results_are_exact() {
        let fc = FlatCombining::new(SeqAdder(0));
        assert_eq!(fc.apply(1), 1);
        assert_eq!(fc.apply(2), 3);
        assert_eq!(fc.with(|s| s.0), 3);
        assert_eq!(fc.into_inner().0, 3);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let fc = Arc::new(FlatCombining::new(SeqAdder(0)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let fc = Arc::clone(&fc);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        fc.apply(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fc.with(|s| s.0), 8_000);
    }

    #[test]
    fn results_return_to_the_right_thread() {
        // Each thread adds its own delta repeatedly; the *sequence* of
        // results it observes must be strictly increasing (its own adds
        // and others' interleave, but all deltas are positive).
        let fc = Arc::new(FlatCombining::new(SeqAdder(0)));
        let handles: Vec<_> = (1..=4)
            .map(|d| {
                let fc = Arc::clone(&fc);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..1_000 {
                        let now = fc.apply(d);
                        assert!(now > last, "non-monotonic result");
                        last = now;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};

use crate::RawLock;

/// A data-carrying mutex generic over the locking discipline.
///
/// `Lock<L, T>` pairs any [`RawLock`] implementation `L` with a value of
/// type `T`, exposing the familiar RAII guard API of [`std::sync::Mutex`]
/// while letting the caller (or benchmark) choose the spin-lock algorithm.
///
/// # Example
///
/// ```
/// use cds_sync::{Lock, TicketLock};
///
/// let shared = Lock::<TicketLock, Vec<u32>>::new(vec![1, 2]);
/// shared.lock().push(3);
/// assert_eq!(&*shared.lock(), &[1, 2, 3]);
/// ```
#[derive(Default)]
pub struct Lock<L: RawLock, T> {
    raw: L,
    data: UnsafeCell<T>,
}

// SAFETY: `Lock` provides mutual exclusion for all access to `data`; the
// usual Mutex bounds apply.
unsafe impl<L: RawLock, T: Send> Send for Lock<L, T> {}
unsafe impl<L: RawLock, T: Send> Sync for Lock<L, T> {}

impl<L: RawLock, T> Lock<L, T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Lock {
            raw: L::default(),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning until it is available.
    pub fn lock(&self) -> LockGuard<'_, L, T> {
        let token = self.raw.lock();
        LockGuard {
            lock: self,
            token: Some(token),
        }
    }

    /// Attempts to acquire the lock without waiting.
    ///
    /// Returns `None` if the lock is held, or if the underlying raw lock
    /// does not support try-acquisition (see [`RawLock::try_lock`]).
    pub fn try_lock(&self) -> Option<LockGuard<'_, L, T>> {
        self.raw.try_lock().map(|token| LockGuard {
            lock: self,
            token: Some(token),
        })
    }

    /// Returns a mutable reference to the data without locking.
    ///
    /// Safe because the exclusive borrow statically guarantees no other
    /// thread holds the lock.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<L: RawLock, T: fmt::Debug> fmt::Debug for Lock<L, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f
                .debug_struct("Lock")
                .field("algorithm", &L::NAME)
                .field("data", &&*guard)
                .finish(),
            None => f
                .debug_struct("Lock")
                .field("algorithm", &L::NAME)
                .field("data", &format_args!("<locked or try-unsupported>"))
                .finish(),
        }
    }
}

/// RAII guard for [`Lock`]; releases the lock on drop.
pub struct LockGuard<'a, L: RawLock, T> {
    lock: &'a Lock<L, T>,
    token: Option<L::Token>,
}

impl<L: RawLock, T> Deref for LockGuard<'_, L, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard witnesses exclusive ownership of the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<L: RawLock, T> DerefMut for LockGuard<'_, L, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<L: RawLock, T> Drop for LockGuard<'_, L, T> {
    fn drop(&mut self) {
        let token = self.token.take().expect("guard dropped twice");
        self.lock.raw.unlock(token);
    }
}

impl<L: RawLock, T: fmt::Debug> fmt::Debug for LockGuard<'_, L, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("LockGuard").field(&&**self).finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{ClhLock, Lock, McsLock, TasLock, TicketLock, TtasLock};
    use std::sync::Arc;

    fn exercise<L: crate::RawLock + 'static>() {
        let shared = Arc::new(Lock::<L, u64>::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        *shared.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*shared.lock(), 1000);
    }

    #[test]
    fn all_disciplines_provide_mutual_exclusion() {
        exercise::<TasLock>();
        exercise::<TtasLock>();
        exercise::<TicketLock>();
        exercise::<ClhLock>();
        exercise::<McsLock>();
    }

    #[test]
    fn guard_releases_on_drop() {
        let l = Lock::<TasLock, i32>::new(0);
        {
            let mut g = l.lock();
            *g = 9;
        }
        assert_eq!(*l.try_lock().expect("lock must be free after drop"), 9);
    }

    #[test]
    fn get_mut_and_into_inner() {
        let mut l = Lock::<TtasLock, i32>::new(1);
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn debug_is_nonempty() {
        let l = Lock::<TasLock, i32>::new(3);
        assert!(format!("{l:?}").contains("tas"));
    }
}

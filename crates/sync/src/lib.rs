//! Synchronization primitives for the `cds` concurrent data structure family.
//!
//! This crate implements the classical mutual-exclusion spectrum covered by
//! the concurrent-data-structures literature:
//!
//! * [`TasLock`] — test-and-set spin lock (the simplest possible lock);
//! * [`TtasLock`] — test-and-test-and-set with exponential [`Backoff`],
//!   the standard fix for TAS cache-line ping-pong;
//! * [`TicketLock`] — FIFO-fair lock built from two counters;
//! * [`ClhLock`] — queue lock spinning on the *predecessor's* node
//!   (Craig, Landin & Hagersten), local spinning on cache-coherent machines;
//! * [`McsLock`] — queue lock spinning on the thread's *own* node
//!   (Mellor-Crummey & Scott), local spinning even without cache coherence;
//! * [`RwSpinLock`] — a reader-writer spin lock;
//! * [`SeqLock`] — sequence lock for small `Copy` data, allowing wait-free
//!   optimistic reads.
//!
//! All mutual-exclusion locks implement the [`RawLock`] trait so that client
//! code (and the benchmark harness) can be generic over the locking
//! discipline, and the [`Lock`] wrapper turns any [`RawLock`] into a
//! data-carrying, RAII-guarded mutex.
//!
//! The crate also provides the low-level utilities the rest of the family
//! relies on: [`Backoff`] (spin→yield escalation for contended CAS loops),
//! [`CachePadded`] (false-sharing avoidance), and [`Parker`] — the
//! eventcount block/wake protocol shared by the executor and the
//! channels (prepare / re-check / commit, provably lost-wakeup-free;
//! see its module docs for the pairing argument).
//!
//! # Spin-loop audit invariant
//!
//! Every spin loop in this crate reaches a stress yield point on **every
//! iteration** — either through [`Backoff::spin`]/[`Backoff::snooze`]
//! (both open with the injected `stress::yield_point` hook) or, for the
//! deliberately naive [`TasLock`], a direct call. Bounded bare
//! `spin_loop` bursts (e.g. the ticket lock's proportional pause) are
//! permitted only when the same iteration ends in a yield point. A spin
//! loop violating this is a scheduling blind spot: under the
//! deterministic PCT scheduler the token holder would burn its entire
//! fairness bound there (the PR-1 lazy-skiplist class of stall), turning
//! seeded schedules into timing-dependent ones.
//!
//! # Example
//!
//! ```
//! use cds_sync::{Lock, McsLock};
//! use std::sync::Arc;
//!
//! let counter = Arc::new(Lock::<McsLock, u64>::new(0));
//! let handles: Vec<_> = (0..4)
//!     .map(|_| {
//!         let counter = Arc::clone(&counter);
//!         std::thread::spawn(move || {
//!             for _ in 0..1000 {
//!                 *counter.lock() += 1;
//!             }
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! assert_eq!(*counter.lock(), 4000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backoff;
mod barrier;
mod cache_padded;
mod clh;
mod flat;
mod lock;
mod mcs;
mod parker;
mod raw;
mod rwlock;
mod seqlock;
pub mod stress;
mod tas;
mod ticket;
mod ttas;

pub use backoff::Backoff;
pub use barrier::SenseBarrier;
pub use cache_padded::CachePadded;
pub use clh::ClhLock;
pub use flat::{FcStructure, FlatCombining};
pub use lock::{Lock, LockGuard};
pub use mcs::McsLock;
pub use parker::Parker;
pub use raw::RawLock;
pub use rwlock::{RwReadGuard, RwSpinLock, RwWriteGuard};
pub use seqlock::SeqLock;
pub use tas::TasLock;
pub use ticket::TicketLock;
pub use ttas::TtasLock;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TasLock>();
        assert_send_sync::<TtasLock>();
        assert_send_sync::<TicketLock>();
        assert_send_sync::<ClhLock>();
        assert_send_sync::<McsLock>();
        assert_send_sync::<RwSpinLock>();
        assert_send_sync::<SeqLock<u64>>();
        assert_send_sync::<Lock<TasLock, Vec<u8>>>();
        assert_send_sync::<CachePadded<u64>>();
        assert_send_sync::<Parker>();
    }
}

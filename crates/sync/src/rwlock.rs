use cds_atomic::{AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};

use crate::Backoff;

// State layout: bit 0 = writer held, bits 1.. = reader count.
const WRITER: usize = 1;
const READER: usize = 2;

/// A reader-writer spin lock.
///
/// Multiple readers may hold the lock simultaneously; writers are exclusive.
/// Writers take priority for *acquisition ordering* in the weak sense that a
/// waiting writer first claims the writer bit and then waits for readers to
/// drain, preventing writer starvation under a steady reader stream.
///
/// Used by the data structure crates wherever a structure distinguishes
/// read-only operations (e.g. `contains`) from mutating ones.
///
/// # Example
///
/// ```
/// use cds_sync::RwSpinLock;
///
/// let lock = RwSpinLock::new(vec![1, 2, 3]);
/// {
///     let r1 = lock.read();
///     let r2 = lock.read(); // concurrent readers are fine
///     assert_eq!(r1.len() + r2.len(), 6);
/// }
/// lock.write().push(4);
/// assert_eq!(lock.read().len(), 4);
/// ```
pub struct RwSpinLock<T = ()> {
    state: AtomicUsize,
    data: UnsafeCell<T>,
}

// SAFETY: standard RwLock bounds — readers share `&T` across threads.
unsafe impl<T: Send> Send for RwSpinLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwSpinLock<T> {}

impl<T: Default> Default for RwSpinLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> RwSpinLock<T> {
    /// Creates a new unlocked reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwSpinLock {
            state: AtomicUsize::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires shared (read) access, spinning while a writer is active.
    pub fn read(&self) -> RwReadGuard<'_, T> {
        let backoff = Backoff::new();
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(s, s + READER, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                cds_obs::count(cds_obs::Event::RwReadAcquire);
                return RwReadGuard { lock: self };
            }
            cds_obs::count(cds_obs::Event::RwSpin);
            // Not `Blocked`: the CAS above may fail spuriously, so a
            // retry can succeed with no other thread stepping.
            backoff.snooze_tagged(crate::stress::YieldTag::Write(self as *const Self as usize));
        }
    }

    /// Attempts to acquire shared access without waiting.
    pub fn try_read(&self) -> Option<RwReadGuard<'_, T>> {
        let s = self.state.load(Ordering::Relaxed);
        if s & WRITER == 0
            && self
                .state
                .compare_exchange(s, s + READER, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            cds_obs::count(cds_obs::Event::RwReadAcquire);
            Some(RwReadGuard { lock: self })
        } else {
            None
        }
    }

    /// Acquires exclusive (write) access.
    ///
    /// Claims the writer bit first, blocking new readers, then waits for
    /// active readers to drain.
    pub fn write(&self) -> RwWriteGuard<'_, T> {
        let backoff = Backoff::new();
        // Phase 1: claim the writer bit.
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(s, s | WRITER, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            cds_obs::count(cds_obs::Event::RwSpin);
            // Not `Blocked`: the CAS above may fail spuriously.
            backoff.snooze_tagged(crate::stress::YieldTag::Write(self as *const Self as usize));
        }
        // Phase 2: wait for readers to drain — a pure recheck.
        backoff.reset();
        while self.state.load(Ordering::Acquire) != WRITER {
            cds_obs::count(cds_obs::Event::RwSpin);
            backoff.snooze_tagged(crate::stress::YieldTag::Blocked(
                self as *const Self as usize,
            ));
        }
        cds_obs::count(cds_obs::Event::RwWriteAcquire);
        RwWriteGuard { lock: self }
    }

    /// Attempts to acquire exclusive access without waiting.
    pub fn try_write(&self) -> Option<RwWriteGuard<'_, T>> {
        if self
            .state
            .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            cds_obs::count(cds_obs::Event::RwWriteAcquire);
            Some(RwWriteGuard { lock: self })
        } else {
            None
        }
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: fmt::Debug> fmt::Debug for RwSpinLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwSpinLock").field("data", &&*g).finish(),
            None => f
                .debug_struct("RwSpinLock")
                .field("data", &format_args!("<write-locked>"))
                .finish(),
        }
    }
}

/// Shared-access RAII guard for [`RwSpinLock`].
pub struct RwReadGuard<'a, T> {
    lock: &'a RwSpinLock<T>,
}

impl<T> Deref for RwReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: readers exclude writers.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.state.fetch_sub(READER, Ordering::Release);
    }
}

impl<T: fmt::Debug> fmt::Debug for RwReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwReadGuard").field(&&**self).finish()
    }
}

/// Exclusive-access RAII guard for [`RwSpinLock`].
pub struct RwWriteGuard<'a, T> {
    lock: &'a RwSpinLock<T>,
}

impl<T> Deref for RwWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the writer excludes all other access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for RwWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.state.fetch_and(!WRITER, Ordering::Release);
    }
}

impl<T: fmt::Debug> fmt::Debug for RwWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwWriteGuard").field(&&**self).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn readers_coexist() {
        let l = RwSpinLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        assert!(l.try_write().is_none());
    }

    #[test]
    fn writer_excludes_readers() {
        let l = RwSpinLock::new(0);
        let w = l.try_write().unwrap();
        assert!(l.try_read().is_none());
        drop(w);
        assert!(l.try_read().is_some());
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let l = Arc::new(RwSpinLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        if i % 2 == 0 {
                            *l.write() += 1;
                        } else {
                            let _ = *l.read();
                            *l.write() += 1;
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 2000);
    }

    #[test]
    fn get_mut_into_inner() {
        let mut l = RwSpinLock::new(1);
        *l.get_mut() = 2;
        assert_eq!(l.into_inner(), 2);
    }
}

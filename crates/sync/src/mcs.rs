use cds_atomic::{AtomicBool, AtomicPtr, Ordering};
use std::fmt;
use std::ptr;

use crate::{Backoff, RawLock};

struct Node {
    locked: AtomicBool,
    next: AtomicPtr<Node>,
}

/// MCS queue lock (Mellor-Crummey & Scott).
///
/// Like [`ClhLock`](crate::ClhLock), arriving threads form an explicit
/// queue, but each thread spins on a flag in its **own** node; the releasing
/// thread follows its `next` pointer and clears the successor's flag. This
/// keeps spinning purely local even on machines without coherent caches and
/// is the design used inside most production queued locks (e.g. the Linux
/// kernel's qspinlock).
///
/// Acquisition order is FIFO. [`try_lock`](RawLock::try_lock) succeeds only
/// when the queue is empty, via a single CAS.
///
/// # Memory management
///
/// One node is heap-allocated per acquisition and freed by the releasing
/// thread once the successor (if any) has been signalled; the hand-off
/// protocol guarantees no other thread references the node at that point.
///
/// # Example
///
/// ```
/// use cds_sync::{Lock, McsLock};
///
/// let cell = Lock::<McsLock, String>::new(String::new());
/// cell.lock().push_str("queued");
/// assert_eq!(&*cell.lock(), "queued");
/// ```
pub struct McsLock {
    tail: AtomicPtr<Node>,
}

/// Token for a held [`McsLock`]; returned by `lock` and consumed by `unlock`.
pub struct McsToken {
    node: *mut Node,
}

impl fmt::Debug for McsToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("McsToken").finish_non_exhaustive()
    }
}

impl Default for McsLock {
    fn default() -> Self {
        McsLock {
            tail: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

impl McsLock {
    /// Creates a new, unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }

    fn new_node() -> *mut Node {
        Box::into_raw(Box::new(Node {
            locked: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

impl RawLock for McsLock {
    type Token = McsToken;
    const NAME: &'static str = "mcs";

    fn lock(&self) -> McsToken {
        let me = Self::new_node();
        // AcqRel: publish our node and observe the predecessor's.
        let pred = self.tail.swap(me, Ordering::AcqRel);
        if !pred.is_null() {
            // SAFETY: the predecessor node is freed only by its owner in
            // `unlock`, and the owner waits until `next` is non-null before
            // doing so, so it is alive while we store into it.
            unsafe {
                (*pred).next.store(me, Ordering::Release);
                let backoff = Backoff::new();
                while (*me).locked.load(Ordering::Acquire) {
                    cds_obs::count(cds_obs::Event::McsSpin);
                    // Pure recheck of our node's hand-off flag.
                    backoff.snooze_tagged(crate::stress::YieldTag::Blocked(
                        self as *const Self as usize,
                    ));
                }
            }
        }
        cds_obs::count(cds_obs::Event::McsAcquire);
        McsToken { node: me }
    }

    fn try_lock(&self) -> Option<McsToken> {
        let me = Self::new_node();
        match self
            .tail
            .compare_exchange(ptr::null_mut(), me, Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => {
                cds_obs::count(cds_obs::Event::McsAcquire);
                Some(McsToken { node: me })
            }
            Err(_) => {
                // SAFETY: `me` was never published.
                unsafe { drop(Box::from_raw(me)) };
                None
            }
        }
    }

    fn unlock(&self, token: McsToken) {
        let me = token.node;
        // SAFETY: we own `me` until the hand-off below completes; the only
        // foreign write into it is the successor's store to `next`, which
        // happens-before our acquire load observing it non-null.
        unsafe {
            let mut next = (*me).next.load(Ordering::Acquire);
            if next.is_null() {
                // No known successor: if the queue still ends with us, detach.
                if self
                    .tail
                    .compare_exchange(me, ptr::null_mut(), Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    drop(Box::from_raw(me));
                    return;
                }
                // A successor is between its swap and its `next` store.
                // `spin` (not `snooze`): the wait is two instructions
                // long on the successor's side. It still opens with a
                // stress yield point, so this loop — the only spin in an
                // unlock path in this crate — cannot stall a
                // deterministic schedule.
                let backoff = Backoff::new();
                loop {
                    next = (*me).next.load(Ordering::Acquire);
                    if !next.is_null() {
                        break;
                    }
                    // Pure recheck of the successor's `next` link.
                    backoff.spin_tagged(crate::stress::YieldTag::Blocked(
                        self as *const Self as usize,
                    ));
                }
            }
            (*next).locked.store(false, Ordering::Release);
            // The successor never touches our node after setting `next`.
            drop(Box::from_raw(me));
        }
    }
}

impl Drop for McsLock {
    fn drop(&mut self) {
        // When no thread holds or waits for the lock, `tail` is null and no
        // nodes are outstanding. Holding a token across the lock's drop is a
        // usage error; the token's node is leaked rather than freed unsafely.
        debug_assert!(self.tail.load(Ordering::Relaxed).is_null());
    }
}

// SAFETY: the raw pointers follow the hand-off ownership protocol documented
// above; all cross-thread transfers use acquire/release atomics.
unsafe impl Send for McsLock {}
unsafe impl Sync for McsLock {}

impl fmt::Debug for McsLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("McsLock")
            .field("queued", &!self.tail.load(Ordering::Relaxed).is_null())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_repeatedly() {
        let l = McsLock::new();
        for _ in 0..100 {
            let t = l.lock();
            l.unlock(t);
        }
    }

    #[test]
    fn try_lock_when_free_and_held() {
        let l = McsLock::new();
        let t = l.try_lock().expect("free lock should try-acquire");
        assert!(l.try_lock().is_none());
        l.unlock(t);
        let t2 = l.try_lock().unwrap();
        l.unlock(t2);
    }

    #[test]
    fn mutual_exclusion() {
        let l = Arc::new(McsLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let t = l.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        l.unlock(t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
    }
}

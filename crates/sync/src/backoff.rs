use std::fmt;

/// Exponential backoff for contended retry loops.
///
/// Contended compare-and-swap loops (lock acquisition, lock-free push/pop)
/// waste memory bandwidth and prolong contention windows when every thread
/// retries immediately. `Backoff` implements the standard remedy: double the
/// pause between retries, and once spinning stops being productive, yield
/// the processor to the scheduler instead.
///
/// The two entry points express the two situations a retry loop can be in:
///
/// * [`spin`](Backoff::spin) — we *lost a race* (a CAS failed); retrying
///   right away may succeed, so we issue a bounded number of
///   `core::hint::spin_loop` pauses.
/// * [`snooze`](Backoff::snooze) — we are *waiting for another thread* to
///   make progress (e.g. a queue is empty); after a few rounds of spinning
///   this escalates to `thread::yield_now`.
///
/// Under the `stress` feature, every backoff step is also a scheduler
/// yield point (see [`crate::stress`]), so retry loops that back off —
/// e.g. an operation waiting out a bucket migration in a resizing map —
/// are preemption points the deterministic stress seeds can exploit.
///
/// # Example
///
/// ```
/// use cds_sync::Backoff;
/// use cds_atomic::{AtomicBool, Ordering};
///
/// let flag = AtomicBool::new(false);
/// let backoff = Backoff::new();
/// while flag
///     .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
///     .is_err()
/// {
///     backoff.spin();
/// }
/// ```
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// Creates a fresh backoff state with zero accumulated delay.
    #[inline]
    pub fn new() -> Self {
        Backoff {
            step: std::cell::Cell::new(0),
        }
    }

    /// Resets the accumulated delay to zero.
    ///
    /// Call this after the contended operation finally succeeds if the same
    /// `Backoff` value is reused for a subsequent loop.
    #[inline]
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off after a failed race (e.g. a failed CAS).
    ///
    /// Issues `2^step` processor pause hints, with the exponent saturating
    /// so the pause stays bounded.
    #[inline]
    pub fn spin(&self) {
        self.spin_tagged(crate::stress::YieldTag::None);
    }

    /// [`spin`](Backoff::spin) with an explicit access tag on the
    /// embedded yield point (see [`crate::stress::YieldTag`]). A retry
    /// after a lost CAS on location `a` should pass
    /// `YieldTag::Write(a)`.
    #[inline]
    pub fn spin_tagged(&self, tag: crate::stress::YieldTag) {
        crate::stress::yield_point_tagged(tag);
        cds_obs::count(cds_obs::Event::BackoffRound);
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..(1u32 << step) {
            core::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Backs off while waiting for another thread to make progress.
    ///
    /// Spins like [`spin`](Backoff::spin) for the first few rounds, then
    /// escalates to [`std::thread::yield_now`] so the thread being waited
    /// on can be scheduled. Always yields on single-core machines once the
    /// spin budget is exhausted.
    #[inline]
    pub fn snooze(&self) {
        self.snooze_tagged(crate::stress::YieldTag::None);
    }

    /// [`snooze`](Backoff::snooze) with an explicit access tag on the
    /// embedded yield point. A loop that purely rechecks location `a`
    /// (e.g. waiting for a lock word to clear) should pass
    /// `YieldTag::Blocked(a)`.
    #[inline]
    pub fn snooze_tagged(&self, tag: crate::stress::YieldTag) {
        crate::stress::yield_point_tagged(tag);
        cds_obs::count(cds_obs::Event::BackoffRound);
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..(1u32 << step) {
                core::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Returns `true` once spinning has escalated far enough that the caller
    /// should consider blocking (e.g. parking the thread) instead.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Backoff")
            .field("step", &self.step.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_incomplete() {
        let b = Backoff::new();
        assert!(!b.is_completed());
    }

    #[test]
    fn completes_after_enough_snoozes() {
        let b = Backoff::new();
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn reset_clears_progress() {
        let b = Backoff::new();
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn spin_saturates() {
        let b = Backoff::new();
        // Must terminate quickly even if called far more than the limit, and
        // `spin` alone never escalates past the spinning phase.
        for _ in 0..1000 {
            b.spin();
        }
        assert!(!b.is_completed());
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", Backoff::new()).is_empty());
    }
}

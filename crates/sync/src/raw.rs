/// A raw mutual-exclusion lock.
///
/// The trait abstracts over the lock implementations in this crate so that
/// data-carrying wrappers ([`Lock`](crate::Lock)) and benchmarks can be
/// generic over the locking discipline.
///
/// Queue locks (CLH, MCS) need per-acquisition state — the queue node — so
/// acquisition returns an opaque [`Token`](RawLock::Token) that must be
/// passed back to [`unlock`](RawLock::unlock). Locks without per-acquisition
/// state use `Token = ()`.
///
/// # Safety contract (for implementors)
///
/// Between a `lock` returning a token and the corresponding `unlock`, no
/// other call to `lock` on the same instance may return. `unlock` must only
/// be called with a token obtained from `lock`/`try_lock` on the *same*
/// lock instance, exactly once.
///
/// # Example
///
/// ```
/// use cds_sync::{RawLock, TtasLock};
///
/// let lock = TtasLock::new();
/// let token = lock.lock();
/// // ... critical section ...
/// lock.unlock(token);
/// ```
pub trait RawLock: Default + Send + Sync {
    /// Per-acquisition state returned by [`lock`](RawLock::lock) and
    /// consumed by [`unlock`](RawLock::unlock).
    type Token;

    /// A short human-readable name for benchmark reports, e.g. `"mcs"`.
    const NAME: &'static str;

    /// Acquires the lock, spinning until it is available.
    fn lock(&self) -> Self::Token;

    /// Attempts to acquire the lock without waiting.
    ///
    /// Returns `None` if the lock was held. Queue locks that cannot
    /// implement a cheap try-acquire may always return `None`; callers must
    /// not assume `try_lock` ever succeeds.
    fn try_lock(&self) -> Option<Self::Token>;

    /// Releases the lock.
    ///
    /// `token` must come from a `lock`/`try_lock` call on `self` that has
    /// not yet been unlocked.
    fn unlock(&self, token: Self::Token);
}

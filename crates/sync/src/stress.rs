//! Injectable stress yield hook.
//!
//! `cds-sync` sits *below* `cds-core` in the crate graph, so it cannot
//! call `cds_core::stress::yield_point` directly the way the structure
//! crates do. Instead it exposes one registration point: when the
//! PCT-style stress scheduler is installed, `cds-core` registers its
//! `yield_point` here, and [`Backoff::spin`](crate::Backoff::spin) /
//! [`Backoff::snooze`](crate::Backoff::snooze) route through it — so a
//! retry loop that backs off during a contended resize migration is a
//! real preemption point for seeds to exploit, not a scheduling blind
//! spot.
//!
//! Everything here compiles away without the `stress` feature.

use std::sync::OnceLock;

static YIELD_HOOK: OnceLock<fn()> = OnceLock::new();

/// Registers the process-wide yield hook called from every backoff step.
///
/// Idempotent: the first registration wins (the scheduler registers the
/// same function on every install, so later calls are harmless no-ops).
pub fn set_yield_point(f: fn()) {
    let _ = YIELD_HOOK.set(f);
}

/// Invokes the registered hook, if any.
#[inline]
pub(crate) fn yield_point() {
    if let Some(f) = YIELD_HOOK.get() {
        f();
    }
}

//! Injectable stress yield hook and yield-point access tags.
//!
//! `cds-sync` sits *below* `cds-core` in the crate graph, so it cannot
//! call `cds_core::stress::yield_point` directly the way the structure
//! crates do. Instead it exposes one registration point: when a stress
//! scheduler is installed, `cds-core` registers its tagged yield entry
//! here, and [`Backoff::spin`](crate::Backoff::spin) /
//! [`Backoff::snooze`](crate::Backoff::snooze) route through it — so a
//! retry loop that backs off during a contended resize migration is a
//! real preemption point for schedules to exploit, not a scheduling
//! blind spot.
//!
//! Each yield point may carry a [`YieldTag`] describing the shared
//! location the *next* step will touch. The PCT scheduler ignores tags;
//! the systematic explorer (`cds_core::stress::explore`) derives its
//! independence relation from them. Untagged points
//! ([`YieldTag::None`]) are treated as dependent on everything, which
//! is always sound — tags only ever *add* pruning.
//!
//! The hook machinery compiles away without the `stress` feature;
//! [`YieldTag`] itself is always available so instrumented code can
//! mention tags without `cfg` noise.

/// Access tag carried by a yield point, describing what the step after
/// the yield is about to do to shared state.
///
/// The address in the payload is an opaque identity (typically the
/// address of the lock or structure cell involved). Two steps are
/// *independent* — safe to commute during systematic exploration — iff
/// both are tagged, their addresses differ, or neither writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YieldTag {
    /// Unknown effect: conservatively dependent on every other step.
    None,
    /// The step reads the tagged location but does not modify it.
    Read(usize),
    /// The step may modify the tagged location (stores, CAS attempts,
    /// lock acquisitions).
    Write(usize),
    /// The step is a *pure recheck* of the tagged location: if no other
    /// thread has run since this thread last paused, re-running the
    /// step changes nothing and lands back at the same yield point
    /// (e.g. spinning on a held lock). The explorer may deprioritize
    /// such steps until another thread makes progress. Treated as a
    /// read of the location for independence purposes.
    Blocked(usize),
}

#[cfg(feature = "stress")]
mod hook {
    use super::YieldTag;
    use std::sync::OnceLock;

    static YIELD_HOOK: OnceLock<fn(YieldTag)> = OnceLock::new();
    static ACTIVE_HOOK: OnceLock<fn() -> bool> = OnceLock::new();

    /// Registers the process-wide yield hook called from every backoff
    /// step.
    ///
    /// Idempotent: the first registration wins (the scheduler registers
    /// the same function on every install, so later calls are harmless
    /// no-ops).
    pub fn set_yield_hook(f: fn(YieldTag)) {
        let _ = YIELD_HOOK.set(f);
    }

    /// Registers the process-wide "is a stress schedule running right
    /// now" predicate. The [`Parker`](crate::Parker) consults it to
    /// decide between a kernel block and a spin through yield points —
    /// the harness determinism rule says nothing may sleep in the kernel
    /// while a deterministic schedule is driving.
    ///
    /// Idempotent like [`set_yield_hook`]: first registration wins.
    pub fn set_active_hook(f: fn() -> bool) {
        let _ = ACTIVE_HOOK.set(f);
    }

    /// Invokes the registered hook, if any.
    #[inline]
    pub(crate) fn yield_point_tagged(tag: YieldTag) {
        if let Some(f) = YIELD_HOOK.get() {
            f(tag);
        }
    }

    /// True iff a stress scheduler is installed *and* currently active.
    /// False when no hook has been registered (plain `--features stress`
    /// builds outside a scheduled test).
    #[inline]
    pub(crate) fn stress_active() -> bool {
        ACTIVE_HOOK.get().is_some_and(|f| f())
    }
}

#[cfg(feature = "stress")]
pub use hook::{set_active_hook, set_yield_hook};
#[cfg(feature = "stress")]
pub(crate) use hook::{stress_active, yield_point_tagged};

/// Inert stand-in: compiles to nothing without the `stress` feature.
#[cfg(not(feature = "stress"))]
#[inline(always)]
pub(crate) fn yield_point_tagged(_tag: YieldTag) {}

/// Inert stand-in: never active without the `stress` feature.
#[cfg(not(feature = "stress"))]
#[inline(always)]
pub(crate) fn stress_active() -> bool {
    false
}

use cds_atomic::{AtomicBool, Ordering};
use std::fmt;

use crate::{Backoff, RawLock};

/// Test-and-test-and-set spin lock with exponential backoff.
///
/// Fixes the two problems of [`TasLock`](crate::TasLock) under contention:
///
/// 1. **Local spinning** — waiters first *read* the flag (a cache hit while
///    the lock is held) and only attempt the expensive atomic swap once the
///    flag is observed clear, so spinning does not generate coherence
///    traffic.
/// 2. **Exponential backoff** — after every failed swap the waiter pauses
///    for an exponentially growing interval ([`Backoff`]), spreading
///    acquisition attempts apart and avoiding the stampede when the lock is
///    released.
///
/// This is the lock the literature recommends when a simple spin lock is
/// needed and fairness is not a requirement.
///
/// # Example
///
/// ```
/// use cds_sync::{Lock, TtasLock};
///
/// let data = Lock::<TtasLock, Vec<i32>>::new(Vec::new());
/// data.lock().push(1);
/// assert_eq!(data.lock().len(), 1);
/// ```
#[derive(Default)]
pub struct TtasLock {
    locked: AtomicBool,
}

impl TtasLock {
    /// Creates a new, unlocked lock.
    pub const fn new() -> Self {
        TtasLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Returns `true` if the lock is currently held (racy; diagnostics only).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

impl RawLock for TtasLock {
    type Token = ();
    const NAME: &'static str = "ttas";

    fn lock(&self) {
        let backoff = Backoff::new();
        let addr = self as *const Self as usize;
        loop {
            // Test: spin on a plain read until the lock looks free. A
            // pure recheck of the flag — `Blocked` lets the systematic
            // explorer park this thread until someone else runs.
            while self.locked.load(Ordering::Relaxed) {
                cds_obs::count(cds_obs::Event::TtasSpin);
                backoff.snooze_tagged(crate::stress::YieldTag::Blocked(addr));
            }
            // Test-and-set: race for it.
            if !self.locked.swap(true, Ordering::Acquire) {
                cds_obs::count(cds_obs::Event::TtasAcquire);
                return;
            }
            cds_obs::count(cds_obs::Event::TtasSpin);
            backoff.spin_tagged(crate::stress::YieldTag::Write(addr));
        }
    }

    #[inline]
    fn try_lock(&self) -> Option<()> {
        if !self.locked.load(Ordering::Relaxed) && !self.locked.swap(true, Ordering::Acquire) {
            cds_obs::count(cds_obs::Event::TtasAcquire);
            Some(())
        } else {
            None
        }
    }

    #[inline]
    fn unlock(&self, (): ()) {
        self.locked.store(false, Ordering::Release);
    }
}

impl fmt::Debug for TtasLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TtasLock")
            .field("locked", &self.is_locked())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_unlock() {
        let l = TtasLock::new();
        l.lock();
        assert!(l.is_locked());
        l.unlock(());
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock_semantics() {
        let l = TtasLock::new();
        l.try_lock().unwrap();
        assert!(l.try_lock().is_none());
        l.unlock(());
        assert!(l.try_lock().is_some());
    }
}

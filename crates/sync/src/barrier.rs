//! Reusable barriers (Herlihy & Shavit ch. 17).

use cds_atomic::{AtomicUsize, Ordering};
use std::fmt;

use crate::Backoff;

/// A **sense-reversing** barrier (generalized to a round counter).
///
/// The textbook reusable barrier: one shared countdown plus a per-round
/// *sense* that changes each round. Threads decrement the count; the last
/// one advances the sense, releasing the others, and the barrier is
/// immediately reusable — no second "reset" phase and no risk of a fast
/// thread lapping a slow one. This implementation generalizes the
/// traditional boolean sense to a monotonic **round counter**, which makes
/// the construction stateless per thread (no thread-local sense to keep in
/// step, so one thread may freely use several barriers).
///
/// Unlike [`std::sync::Barrier`], waiting spins (with
/// [`Backoff`] escalation to `yield`), which is the right trade-off for the
/// short phase gaps of data-parallel loops this construct is designed for.
///
/// # Example
///
/// ```
/// use cds_sync::SenseBarrier;
/// use std::sync::Arc;
///
/// let barrier = Arc::new(SenseBarrier::new(3));
/// let handles: Vec<_> = (0..3)
///     .map(|_| {
///         let barrier = Arc::clone(&barrier);
///         std::thread::spawn(move || {
///             for _round in 0..10 {
///                 // ... phase work ...
///                 barrier.wait(); // all threads finish the round together
///             }
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// ```
pub struct SenseBarrier {
    count: AtomicUsize,
    size: usize,
    /// The generalized sense: advanced by the last arriver each round.
    round: AtomicUsize,
}

impl SenseBarrier {
    /// Creates a barrier for `size` threads.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "barrier needs at least one participant");
        SenseBarrier {
            count: AtomicUsize::new(size),
            size,
            round: AtomicUsize::new(0),
        }
    }

    /// Blocks until all `size` threads have called `wait` this round.
    ///
    /// Returns `true` on exactly one thread per round (the last arriver),
    /// mirroring `std::sync::Barrier`'s leader result.
    pub fn wait(&self) -> bool {
        // The round must be read before announcing arrival: once our
        // decrement lands, the last arriver may advance the round at any
        // moment.
        let round = self.round.load(Ordering::Acquire);
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arriver: reset the count, then release the round. The
            // reset must be visible before the release, or a released
            // thread could decrement a stale count; `round`'s Release
            // store orders it.
            self.count.store(self.size, Ordering::Relaxed);
            self.round.store(round.wrapping_add(1), Ordering::Release);
            true
        } else {
            let backoff = Backoff::new();
            while self.round.load(Ordering::Acquire) == round {
                backoff.snooze();
            }
            false
        }
    }

    /// Number of participating threads.
    pub fn size(&self) -> usize {
        self.size
    }
}

impl fmt::Debug for SenseBarrier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SenseBarrier")
            .field("size", &self.size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_never_blocks() {
        let b = SenseBarrier::new(1);
        for _ in 0..100 {
            assert!(b.wait(), "sole participant is always the leader");
        }
    }

    #[test]
    fn rounds_are_synchronized() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 50;
        let barrier = Arc::new(SenseBarrier::new(THREADS));
        let phase = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let phase = Arc::clone(&phase);
                std::thread::spawn(move || {
                    for round in 0..ROUNDS {
                        // Everyone must observe the phase of the current
                        // round before anyone moves to the next.
                        assert_eq!(phase.load(Ordering::SeqCst), round);
                        if barrier.wait() {
                            phase.fetch_add(1, Ordering::SeqCst);
                        }
                        barrier.wait(); // second barrier: phase bump visible
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(phase.load(Ordering::SeqCst), ROUNDS);
    }

    #[test]
    fn one_thread_using_two_barriers_stays_correct() {
        // Regression test: a thread-local-sense implementation desyncs when
        // a thread alternates between barriers; the round counter must not.
        let a = SenseBarrier::new(1);
        let b = SenseBarrier::new(1);
        for _ in 0..10 {
            assert!(a.wait());
            assert!(b.wait());
            assert!(a.wait());
        }
    }

    #[test]
    fn exactly_one_leader_per_round() {
        const THREADS: usize = 3;
        let barrier = Arc::new(SenseBarrier::new(THREADS));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 20);
    }
}

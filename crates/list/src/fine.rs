use std::cmp::Ordering;
use std::fmt;
use std::ptr;

use cds_core::ConcurrentSet;
use parking_lot::{Mutex, MutexGuard};

use crate::Bound;

struct Node<T> {
    key: Bound<T>,
    /// The lock protects this `next` pointer; hand-over-hand traversal
    /// means a thread always holds the lock of the edge it is crossing.
    next: Mutex<*mut Node<T>>,
}

/// A sorted list with **hand-over-hand** (lock-coupling) locking.
///
/// Rung two of the list ladder: each node carries its own lock and a
/// traversal holds at most two locks at a time — the current node's and its
/// predecessor's — acquiring the next before releasing the previous.
/// Threads operating on disjoint parts of the list proceed in parallel, and
/// because an unlinking thread holds both the predecessor's and victim's
/// locks, no other thread can be at (or reach) the victim, so nodes are
/// freed immediately — no deferred reclamation needed.
///
/// The cost: every traversal step takes a lock, so a single long traversal
/// serializes behind every earlier one (locks are acquired in list order,
/// which also rules out deadlock).
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentSet;
/// use cds_list::FineList;
///
/// let s = FineList::new();
/// s.insert(1);
/// assert!(s.contains(&1));
/// ```
pub struct FineList<T> {
    head: *mut Node<T>,
}

// SAFETY: all node access is mediated by the per-node locks; keys cross
// threads by value.
unsafe impl<T: Send> Send for FineList<T> {}
unsafe impl<T: Send> Sync for FineList<T> {}

impl<T: Ord> FineList<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        let tail = Box::into_raw(Box::new(Node {
            key: Bound::PosInf,
            next: Mutex::new(ptr::null_mut()),
        }));
        let head = Box::into_raw(Box::new(Node {
            key: Bound::NegInf,
            next: Mutex::new(tail),
        }));
        FineList { head }
    }

    /// Lock-coupled search: returns the guard of the predecessor's `next`
    /// (still held) and the current node, which is the first with
    /// `key >= target`. The tail sentinel guarantees termination.
    fn find(&self, key: &T) -> (MutexGuard<'_, *mut Node<T>>, *mut Node<T>) {
        // SAFETY: head is never freed while the list lives.
        let mut pred_guard = unsafe { &(*self.head).next }.lock();
        loop {
            let curr = *pred_guard;
            // SAFETY: `curr` is reachable through a held lock; unlinkers
            // need that same lock, so it is alive.
            let curr_node = unsafe { &*curr };
            if curr_node.key.cmp_key(key) != Ordering::Less {
                return (pred_guard, curr);
            }
            let next_guard = curr_node.next.lock();
            // Coupling: acquire the next edge before releasing the previous.
            pred_guard = next_guard;
        }
    }
}

impl<T: Ord> Default for FineList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Send> ConcurrentSet<T> for FineList<T> {
    const NAME: &'static str = "fine";

    fn insert(&self, value: T) -> bool {
        let (mut pred_guard, curr) = self.find(&value);
        // SAFETY: as in `find`.
        if unsafe { &*curr }.key.cmp_key(&value) == Ordering::Equal {
            return false;
        }
        let node = Box::into_raw(Box::new(Node {
            key: Bound::Finite(value),
            next: Mutex::new(curr),
        }));
        *pred_guard = node;
        true
    }

    fn remove(&self, value: &T) -> bool {
        let (mut pred_guard, curr) = self.find(value);
        // SAFETY: as in `find`.
        let curr_node = unsafe { &*curr };
        if curr_node.key.cmp_key(value) != Ordering::Equal {
            return false;
        }
        let curr_guard = curr_node.next.lock();
        let next = *curr_guard;
        *pred_guard = next;
        drop(curr_guard);
        drop(pred_guard);
        // SAFETY: we held both the predecessor's and the victim's locks, so
        // no thread is at the victim or can reach it: immediate free is
        // safe (see type-level docs).
        unsafe { drop(Box::from_raw(curr)) };
        true
    }

    fn contains(&self, value: &T) -> bool {
        let (_pred_guard, curr) = self.find(value);
        // SAFETY: as in `find`.
        unsafe { &*curr }.key.cmp_key(value) == Ordering::Equal
    }

    fn len(&self) -> usize {
        let mut n = 0;
        // SAFETY: lock-coupled walk as in `find`.
        let mut pred_guard = unsafe { &(*self.head).next }.lock();
        loop {
            let curr = *pred_guard;
            let curr_node = unsafe { &*curr };
            if matches!(curr_node.key, Bound::PosInf) {
                return n;
            }
            n += 1;
            pred_guard = curr_node.next.lock();
        }
    }
}

impl<T> Drop for FineList<T> {
    fn drop(&mut self) {
        let mut cur = self.head;
        while !cur.is_null() {
            // SAFETY: unique access.
            let node = unsafe { Box::from_raw(cur) };
            cur = *node.next.lock();
        }
    }
}

impl<T> fmt::Debug for FineList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FineList").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentSet;
    use std::sync::Arc;

    #[test]
    fn sentinels_are_invisible() {
        let s: FineList<i32> = FineList::new();
        assert_eq!(s.len(), 0);
        assert!(!s.contains(&0));
        assert!(!s.remove(&0));
    }

    #[test]
    fn disjoint_regions_in_parallel() {
        let s = Arc::new(FineList::new());
        let low = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 0..300 {
                    s.insert(i);
                }
            })
        };
        let high = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 1000..1300 {
                    s.insert(i);
                }
            })
        };
        low.join().unwrap();
        high.join().unwrap();
        assert_eq!(s.len(), 600);
    }

    #[test]
    fn remove_frees_immediately_without_crash() {
        let s = FineList::new();
        for i in 0..50 {
            s.insert(i);
        }
        for i in (0..50).step_by(2) {
            assert!(s.remove(&i));
        }
        assert_eq!(s.len(), 25);
    }
}

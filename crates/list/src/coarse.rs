use std::fmt;

use cds_core::ConcurrentSet;
use parking_lot::Mutex;

struct Node<T> {
    value: T,
    next: Option<Box<Node<T>>>,
}

/// A sorted singly-linked list behind one mutex.
///
/// The rung-one baseline of the list ladder (experiment E4): correct by
/// construction, zero parallelism. Operations are O(n) like every list in
/// this crate, so comparisons isolate the cost of synchronization.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentSet;
/// use cds_list::CoarseList;
///
/// let s = CoarseList::new();
/// s.insert(2);
/// s.insert(1);
/// assert!(s.contains(&1));
/// assert_eq!(s.len(), 2);
/// ```
pub struct CoarseList<T> {
    head: Mutex<Option<Box<Node<T>>>>,
}

impl<T> CoarseList<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        CoarseList {
            head: Mutex::new(None),
        }
    }
}

impl<T> Default for CoarseList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Send> ConcurrentSet<T> for CoarseList<T> {
    const NAME: &'static str = "coarse";

    fn insert(&self, value: T) -> bool {
        let mut head = self.head.lock();
        let mut cursor = &mut *head;
        loop {
            match cursor {
                None => {
                    *cursor = Some(Box::new(Node { value, next: None }));
                    return true;
                }
                Some(node) if node.value == value => return false,
                Some(node) if node.value > value => {
                    let tail = cursor.take();
                    *cursor = Some(Box::new(Node { value, next: tail }));
                    return true;
                }
                Some(node) => cursor = &mut node.next,
            }
        }
    }

    fn remove(&self, value: &T) -> bool {
        let mut head = self.head.lock();
        let mut cursor = &mut *head;
        loop {
            match cursor {
                None => return false,
                Some(node) if node.value == *value => {
                    let unlinked = cursor.take().expect("matched Some");
                    *cursor = unlinked.next;
                    return true;
                }
                Some(node) if node.value > *value => return false,
                Some(node) => cursor = &mut node.next,
            }
        }
    }

    fn contains(&self, value: &T) -> bool {
        let head = self.head.lock();
        let mut cursor = &*head;
        while let Some(node) = cursor {
            if node.value == *value {
                return true;
            }
            if node.value > *value {
                return false;
            }
            cursor = &node.next;
        }
        false
    }

    fn len(&self) -> usize {
        let head = self.head.lock();
        let mut n = 0;
        let mut cursor = &*head;
        while let Some(node) = cursor {
            n += 1;
            cursor = &node.next;
        }
        n
    }
}

impl<T> Drop for CoarseList<T> {
    fn drop(&mut self) {
        // Iterative teardown: the default recursive drop of a long
        // `Option<Box<Node>>` chain would overflow the stack.
        let mut cursor = self.head.get_mut().take();
        while let Some(mut node) = cursor {
            cursor = node.next.take();
        }
    }
}

impl<T> fmt::Debug for CoarseList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoarseList").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentSet;

    #[test]
    fn keeps_sorted_order_invariant() {
        let s = CoarseList::new();
        for v in [5, 1, 9, 3, 7] {
            assert!(s.insert(v));
        }
        // Walk and check sortedness through the public API indirectly:
        // removing in ascending order always succeeds.
        for v in [1, 3, 5, 7, 9] {
            assert!(s.remove(&v));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn long_list_drops_without_stack_overflow() {
        let s = CoarseList::new();
        for i in 0..100_000 {
            s.insert(i);
        }
        drop(s); // must not overflow
    }
}

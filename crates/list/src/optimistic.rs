use cds_atomic::Ordering;
use std::cmp::Ordering as CmpOrdering;
use std::fmt;

use cds_core::ConcurrentSet;
use cds_reclaim::epoch::{self, Atomic, Guard, Owned, Shared};
use parking_lot::Mutex;

use crate::Bound;

struct Node<T> {
    key: Bound<T>,
    next: Atomic<Node<T>>,
    lock: Mutex<()>,
}

/// A sorted list with **optimistic** synchronization.
///
/// Rung three of the list ladder: traverse with *no* locks at all, lock
/// only the two nodes an operation affects, then **validate** that the
/// lock-free traversal is still meaningful — the predecessor must still be
/// reachable from the head and must still point at the current node. If
/// validation fails, retry from scratch.
///
/// Validation re-traverses the list (O(n)), so the scheme wins exactly when
/// conflicts are rare and traversal is the dominant cost — the situation
/// read-heavy workloads in experiment E4 create.
///
/// Unlike the original presentation (which assumes a garbage collector so
/// that a removed node a traverser is standing on stays allocated), this
/// implementation pins the epoch ([`cds_reclaim::epoch`]) during traversal
/// and defers node destruction.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentSet;
/// use cds_list::OptimisticList;
///
/// let s = OptimisticList::new();
/// s.insert("k");
/// assert!(s.remove(&"k"));
/// ```
pub struct OptimisticList<T> {
    head: Atomic<Node<T>>,
}

// SAFETY: node lifetime is governed by the epoch collector; mutation is
// lock-protected.
unsafe impl<T: Send + Sync> Send for OptimisticList<T> {}
unsafe impl<T: Send + Sync> Sync for OptimisticList<T> {}

impl<T: Ord> OptimisticList<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        let tail = Atomic::new(Node {
            key: Bound::PosInf,
            next: Atomic::null(),
            lock: Mutex::new(()),
        });
        // SAFETY: not shared yet.
        let guard = unsafe { Guard::unprotected() };
        let tail_shared = tail.load(Ordering::Relaxed, &guard);
        let head = Owned::new(Node {
            key: Bound::NegInf,
            next: Atomic::null(),
            lock: Mutex::new(()),
        });
        head.next.store(tail_shared, Ordering::Relaxed);
        OptimisticList { head: head.into() }
    }

    /// Unlocked traversal; returns `(pred, curr)` with
    /// `pred.key < key <= curr.key`.
    fn search<'g>(&self, key: &T, guard: &'g Guard) -> (Shared<'g, Node<T>>, Shared<'g, Node<T>>) {
        let mut pred = self.head.load(Ordering::Acquire, guard);
        // SAFETY: pinned; nodes are deferred, never freed under us.
        let mut curr = unsafe { pred.deref() }.next.load(Ordering::Acquire, guard);
        loop {
            let curr_ref = unsafe { curr.deref() };
            if curr_ref.key.cmp_key(key) != CmpOrdering::Less {
                return (pred, curr);
            }
            pred = curr;
            curr = curr_ref.next.load(Ordering::Acquire, guard);
        }
    }

    /// Re-traverses from the head to check that `pred` is still reachable
    /// and still points at `curr`. Caller must hold both node locks.
    fn validate(
        &self,
        pred: Shared<'_, Node<T>>,
        curr: Shared<'_, Node<T>>,
        guard: &Guard,
    ) -> bool {
        let mut node = self.head.load(Ordering::Acquire, guard);
        loop {
            // SAFETY: pinned.
            let node_ref = unsafe { node.deref() };
            if node == pred {
                return node_ref.next.load(Ordering::Acquire, guard) == curr;
            }
            // SAFETY: pred is alive (we hold its lock), so reading its key
            // for the bound check is fine.
            if node_ref.key > unsafe { pred.deref() }.key {
                return false; // walked past where pred should be
            }
            node = node_ref.next.load(Ordering::Acquire, guard);
        }
    }
}

impl<T: Ord> Default for OptimisticList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Send + Sync> ConcurrentSet<T> for OptimisticList<T> {
    const NAME: &'static str = "optimistic";

    fn insert(&self, value: T) -> bool {
        let guard = epoch::pin();
        loop {
            let (pred, curr) = self.search(&value, &guard);
            // SAFETY: pinned.
            let pred_ref = unsafe { pred.deref() };
            let curr_ref = unsafe { curr.deref() };
            let _pl = pred_ref.lock.lock();
            let _cl = curr_ref.lock.lock();
            if !self.validate(pred, curr, &guard) {
                continue;
            }
            if curr_ref.key.cmp_key(&value) == CmpOrdering::Equal {
                return false;
            }
            let node = Owned::new(Node {
                key: Bound::Finite(value),
                next: Atomic::null(),
                lock: Mutex::new(()),
            });
            node.next.store(curr, Ordering::Relaxed);
            pred_ref
                .next
                .store(node.into_shared(&guard), Ordering::Release);
            return true;
        }
    }

    fn remove(&self, value: &T) -> bool {
        let guard = epoch::pin();
        loop {
            let (pred, curr) = self.search(value, &guard);
            // SAFETY: pinned.
            let pred_ref = unsafe { pred.deref() };
            let curr_ref = unsafe { curr.deref() };
            let _pl = pred_ref.lock.lock();
            let _cl = curr_ref.lock.lock();
            if !self.validate(pred, curr, &guard) {
                continue;
            }
            if curr_ref.key.cmp_key(value) != CmpOrdering::Equal {
                return false;
            }
            let next = curr_ref.next.load(Ordering::Acquire, &guard);
            pred_ref.next.store(next, Ordering::Release);
            // SAFETY: curr is unlinked; traversers standing on it are
            // pinned, so defer.
            unsafe { guard.defer_destroy(curr) };
            return true;
        }
    }

    fn contains(&self, value: &T) -> bool {
        // The optimistic algorithm's contains also locks and validates —
        // without a marked bit, an unvalidated hit could be a node that was
        // removed mid-traversal (the wait-free read is the lazy list's
        // improvement).
        let guard = epoch::pin();
        loop {
            let (pred, curr) = self.search(value, &guard);
            // SAFETY: pinned.
            let pred_ref = unsafe { pred.deref() };
            let curr_ref = unsafe { curr.deref() };
            let _pl = pred_ref.lock.lock();
            let _cl = curr_ref.lock.lock();
            if !self.validate(pred, curr, &guard) {
                continue;
            }
            return curr_ref.key.cmp_key(value) == CmpOrdering::Equal;
        }
    }

    fn len(&self) -> usize {
        let guard = epoch::pin();
        let mut n = 0;
        let mut node = self.head.load(Ordering::Acquire, &guard);
        loop {
            // SAFETY: pinned.
            let node_ref = unsafe { node.deref() };
            if matches!(node_ref.key, Bound::PosInf) {
                return n;
            }
            if matches!(node_ref.key, Bound::Finite(_)) {
                n += 1;
            }
            node = node_ref.next.load(Ordering::Acquire, &guard);
        }
    }
}

impl<T> Drop for OptimisticList<T> {
    fn drop(&mut self) {
        // SAFETY: unique access.
        let guard = unsafe { Guard::unprotected() };
        let mut cur = self.head.load(Ordering::Relaxed, &guard);
        while !cur.is_null() {
            // SAFETY: unique ownership of the chain.
            unsafe {
                let boxed = cur.into_owned().into_box();
                cur = boxed.next.load(Ordering::Relaxed, &guard);
            }
        }
    }
}

impl<T> fmt::Debug for OptimisticList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OptimisticList").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentSet;
    use std::sync::Arc;

    #[test]
    fn basic_set_operations() {
        let s = OptimisticList::new();
        assert!(s.insert(2));
        assert!(s.insert(1));
        assert!(!s.insert(2));
        assert!(s.contains(&1));
        assert!(s.remove(&2));
        assert!(!s.contains(&2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn contended_remove_insert_cycles() {
        let s = Arc::new(OptimisticList::new());
        for i in 0..16 {
            s.insert(i);
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for round in 0..200 {
                        let k = t * 4 + round % 4;
                        s.remove(&k);
                        s.insert(k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All keys cycled back in.
        assert_eq!(s.len(), 16);
    }
}

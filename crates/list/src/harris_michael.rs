use cds_atomic::Ordering;
use std::cmp::Ordering as CmpOrdering;
use std::fmt;

use cds_core::ConcurrentSet;
use cds_reclaim::epoch::{Atomic, Guard, Owned, Shared};
use cds_reclaim::{Ebr, ReclaimGuard, Reclaimer};
use cds_sync::Backoff;

/// Tag bit marking a node as logically deleted (stored in the low bit of
/// the node's *own* `next` pointer, so a delete and a competing insert
/// after the same node cannot both succeed).
const MARK: usize = 1;

struct Node<T> {
    key: T,
    next: Atomic<Node<T>>,
}

/// The **lock-free** sorted list (Harris 2001, with Michael's 2002
/// hazard-pointer-compatible `find`).
///
/// The top rung of the list ladder: no locks anywhere. The logical-deletion
/// mark lives in the low *tag bit* of the victim's `next` pointer
/// ([`Atomic::fetch_or`]), so marking and pointing are one atomic word —
/// the trick that replaces the Java `AtomicMarkableReference` indirection
/// (design decision #2 in DESIGN.md). Deletion is two steps:
///
/// 1. CAS the victim's `next` from untagged to tagged — the linearization
///    point; after this no one can insert after the victim.
/// 2. CAS the predecessor's pointer past the victim — *any* traversal that
///    encounters a marked node performs this unlinking on the original
///    deleter's behalf (helping), which is what makes the algorithm
///    lock-free.
///
/// The list is generic over its reclamation backend `R`
/// ([`cds_reclaim::Reclaimer`], default [`Ebr`]) and uses the **blanket**
/// protection mode ([`Reclaimer::enter_blanket`]): traversals restart
/// through chains of marked nodes whose predecessors are not frozen, so
/// no fixed set of per-location hazards can cover them — epoch pins and
/// hazard *eras* can, because a retired node is unreachable to operations
/// that begin after the retire.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentSet;
/// use cds_list::HarrisMichaelList;
///
/// let s = HarrisMichaelList::new();
/// s.insert(1);
/// s.insert(2);
/// assert!(s.remove(&1));
/// assert!(!s.contains(&1));
/// ```
pub struct HarrisMichaelList<T, R: Reclaimer = Ebr> {
    head: Atomic<Node<T>>,
    _reclaimer: std::marker::PhantomData<R>,
}

// SAFETY: keys cross threads by value; nodes are reclaimer-managed.
unsafe impl<T: Send + Sync, R: Reclaimer> Send for HarrisMichaelList<T, R> {}
unsafe impl<T: Send + Sync, R: Reclaimer> Sync for HarrisMichaelList<T, R> {}

impl<T: Ord> HarrisMichaelList<T> {
    /// Creates an empty set on the default ([`Ebr`]) backend.
    pub fn new() -> Self {
        Self::with_reclaimer()
    }
}

impl<T: Ord, R: Reclaimer> HarrisMichaelList<T, R> {
    /// Creates an empty set on the reclamation backend `R`.
    pub fn with_reclaimer() -> Self {
        HarrisMichaelList {
            head: Atomic::null(),
            _reclaimer: std::marker::PhantomData,
        }
    }

    /// Michael's `find`: positions at the first node with `key >= target`,
    /// unlinking every marked node it passes. Returns
    /// `(found, prev, curr)` where `prev` is the atomic that points at
    /// `curr` and `curr` is untagged (possibly null = end of list).
    fn find<'g, G: ReclaimGuard>(
        &'g self,
        key: &T,
        guard: &'g G,
    ) -> (bool, &'g Atomic<Node<T>>, Shared<'g, Node<T>>) {
        'retry: loop {
            cds_core::stress::yield_point();
            let mut prev = &self.head;
            let mut curr = prev.load(Ordering::Acquire, guard);
            loop {
                cds_core::stress::yield_point();
                let curr_ref = match unsafe { curr.as_ref() } {
                    None => return (false, prev, curr),
                    Some(c) => c,
                };
                let next = curr_ref.next.load(Ordering::Acquire, guard);
                if next.tag() == MARK {
                    // `curr` is logically deleted: help unlink it.
                    let unlinked = prev
                        .compare_exchange(
                            curr.with_tag(0),
                            next.with_tag(0),
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                            guard,
                        )
                        .is_ok();
                    cds_obs::cas_outcome(unlinked);
                    if unlinked {
                        // SAFETY: we unlinked it; readers may linger.
                        unsafe { guard.retire(curr) };
                        curr = next.with_tag(0);
                    } else {
                        // Someone changed prev under us; start over.
                        cds_obs::count(cds_obs::Event::HarrisMichaelRetry);
                        continue 'retry;
                    }
                } else {
                    match curr_ref.key.cmp(key) {
                        CmpOrdering::Less => {
                            prev = &curr_ref.next;
                            curr = next;
                        }
                        CmpOrdering::Equal => return (true, prev, curr),
                        CmpOrdering::Greater => return (false, prev, curr),
                    }
                }
            }
        }
    }
}

impl<T: Ord, R: Reclaimer> Default for HarrisMichaelList<T, R> {
    fn default() -> Self {
        Self::with_reclaimer()
    }
}

impl<T: Ord + Send + Sync, R: Reclaimer> ConcurrentSet<T> for HarrisMichaelList<T, R> {
    const NAME: &'static str = "harris-michael";

    fn insert(&self, value: T) -> bool {
        let guard = R::enter_blanket();
        let backoff = Backoff::new();
        let mut node = Owned::new(Node {
            key: value,
            next: Atomic::null(),
        });
        loop {
            cds_core::stress::yield_point();
            let (found, prev, curr) = self.find(&node.key, &guard);
            if found {
                // Key present; the staged node dies here (it was never
                // published, so plain drop is fine).
                drop(node);
                return false;
            }
            node.next.store(curr, Ordering::Relaxed);
            let node_shared = node.into_shared(&guard);
            match prev.compare_exchange(
                curr,
                node_shared,
                Ordering::AcqRel,
                Ordering::Relaxed,
                &guard,
            ) {
                Ok(_) => {
                    cds_obs::cas_outcome(true);
                    return true;
                }
                Err(_) => {
                    cds_obs::cas_outcome(false);
                    cds_obs::count(cds_obs::Event::HarrisMichaelRetry);
                    // SAFETY: publish failed, the node is still ours.
                    node = unsafe { node_shared.into_owned() };
                    backoff.spin();
                }
            }
        }
    }

    fn remove(&self, value: &T) -> bool {
        let guard = R::enter_blanket();
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            let (found, prev, curr) = self.find(value, &guard);
            if !found {
                return false;
            }
            // SAFETY: `find` returned it unmarked and pinned.
            let curr_ref = unsafe { curr.deref() };
            let next = curr_ref.next.load(Ordering::Acquire, &guard);
            if next.tag() == MARK {
                // Someone else is deleting it right now.
                cds_obs::count(cds_obs::Event::HarrisMichaelRetry);
                backoff.spin();
                continue;
            }
            // Step 1: logical delete (linearization point).
            let marked = curr_ref
                .next
                .compare_exchange(
                    next.with_tag(0),
                    next.with_tag(MARK),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                    &guard,
                )
                .is_ok();
            cds_obs::cas_outcome(marked);
            if !marked {
                cds_obs::count(cds_obs::Event::HarrisMichaelRetry);
                backoff.spin();
                continue;
            }
            // Step 2: physical unlink (best-effort; find() will help).
            let unlinked = prev
                .compare_exchange(
                    curr.with_tag(0),
                    next.with_tag(0),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                    &guard,
                )
                .is_ok();
            cds_obs::cas_outcome(unlinked);
            if unlinked {
                // SAFETY: unlinked by us exactly once.
                unsafe { guard.retire(curr) }
            } else {
                // A helper will (or did) unlink and defer it.
                let _ = self.find(value, &guard);
            }
            return true;
        }
    }

    fn contains(&self, value: &T) -> bool {
        // Wait-free traversal: no helping, just skip marked nodes.
        let guard = R::enter_blanket();
        let mut curr = self.head.load(Ordering::Acquire, &guard);
        loop {
            cds_core::stress::yield_point();
            let curr_ref = match unsafe { curr.as_ref() } {
                None => return false,
                Some(c) => c,
            };
            let next = curr_ref.next.load(Ordering::Acquire, &guard);
            match curr_ref.key.cmp(value) {
                CmpOrdering::Less => curr = next.with_tag(0),
                CmpOrdering::Equal => return next.tag() != MARK,
                CmpOrdering::Greater => return false,
            }
        }
    }

    fn len(&self) -> usize {
        let guard = R::enter_blanket();
        let mut n = 0;
        let mut curr = self.head.load(Ordering::Acquire, &guard);
        while let Some(curr_ref) = unsafe { curr.as_ref() } {
            let next = curr_ref.next.load(Ordering::Acquire, &guard);
            if next.tag() != MARK {
                n += 1;
            }
            curr = next.with_tag(0);
        }
        n
    }
}

impl<T, R: Reclaimer> Drop for HarrisMichaelList<T, R> {
    fn drop(&mut self) {
        // SAFETY: unique access; the unprotected guard is a pure load
        // witness on every backend. Already-retired nodes are unreachable
        // from `head` and are freed by the backend, not here.
        let guard = unsafe { Guard::unprotected() };
        let mut cur = self.head.load(Ordering::Relaxed, &guard);
        while !cur.is_null() {
            // SAFETY: unique ownership of the chain (including any nodes
            // that are marked but not yet unlinked).
            unsafe {
                let boxed = cur.with_tag(0).into_owned().into_box();
                cur = boxed.next.load(Ordering::Relaxed, &guard).with_tag(0);
            }
        }
    }
}

impl<T, R: Reclaimer> fmt::Debug for HarrisMichaelList<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HarrisMichaelList")
            .field("reclaimer", &R::NAME)
            .finish_non_exhaustive()
    }
}

impl<T: Ord + Send + Sync> FromIterator<T> for HarrisMichaelList<T> {
    /// Collects into a set (duplicates are dropped).
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let set = HarrisMichaelList::new();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

impl<T: Ord + Send + Sync, R: Reclaimer> Extend<T> for HarrisMichaelList<T, R> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentSet;
    use std::sync::Arc;

    #[test]
    fn basic_set_semantics() {
        let s = HarrisMichaelList::new();
        assert!(s.insert(3));
        assert!(s.insert(1));
        assert!(!s.insert(3));
        assert!(s.contains(&1));
        assert!(s.remove(&3));
        assert!(!s.remove(&3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn helping_cleans_marked_nodes() {
        let s = HarrisMichaelList::new();
        for i in 0..100 {
            s.insert(i);
        }
        for i in 0..100 {
            assert!(s.remove(&i));
        }
        assert_eq!(s.len(), 0);
        // Re-insertion works after full removal (no stale marked nodes
        // visible).
        assert!(s.insert(5));
        assert!(s.contains(&5));
    }

    #[test]
    fn set_semantics_on_every_backend() {
        fn run<R: Reclaimer>() {
            let s: HarrisMichaelList<u64, R> = HarrisMichaelList::with_reclaimer();
            for i in 0..64 {
                assert!(s.insert(i), "{} backend", R::NAME);
            }
            for i in (0..64).step_by(2) {
                assert!(s.remove(&i), "{} backend", R::NAME);
            }
            for i in 0..64 {
                assert_eq!(s.contains(&i), i % 2 == 1, "{} backend", R::NAME);
            }
            assert_eq!(s.len(), 32);
            R::collect();
        }
        run::<Ebr>();
        run::<cds_reclaim::Hazard>();
        run::<cds_reclaim::Leak>();
        run::<cds_reclaim::DebugReclaim>();
    }

    #[test]
    fn concurrent_insert_remove_same_keys() {
        let s = Arc::new(HarrisMichaelList::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for round in 0..500u64 {
                        let k = round % 32;
                        if t % 2 == 0 {
                            s.insert(k);
                        } else {
                            s.remove(&k);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Internal consistency: len agrees with a membership scan.
        let n = s.len();
        let found = (0..32u64).filter(|k| s.contains(k)).count();
        assert_eq!(n, found);
    }
}

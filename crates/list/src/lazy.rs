use cds_atomic::{AtomicBool, Ordering};
use std::cmp::Ordering as CmpOrdering;
use std::fmt;

use cds_core::ConcurrentSet;
use cds_reclaim::epoch::{self, Atomic, Guard, Owned, Shared};
use parking_lot::Mutex;

use crate::Bound;

struct Node<T> {
    key: Bound<T>,
    next: Atomic<Node<T>>,
    /// Logical-deletion mark: set (under the node's lock) before the node
    /// is unlinked. The mark is what makes O(1) validation and wait-free
    /// `contains` sound.
    marked: AtomicBool,
    lock: Mutex<()>,
}

/// The **lazy list** (Heller, Herlihy, Luchangco, Moir, Scherer & Shavit,
/// 2005).
///
/// Rung four of the list ladder, and the algorithmic heart of the lazy
/// skip list. Two ideas on top of [`OptimisticList`](crate::OptimisticList):
///
/// 1. **Logical deletion**: removal first sets a `marked` bit (the
///    linearization point) and only then unlinks. A node's membership is
///    now a *local* property — `unmarked(curr)` — rather than a global
///    reachability property.
/// 2. Consequently **validation is O(1)** (`!pred.marked && !curr.marked
///    && pred.next == curr`) and **`contains` is wait-free**: one
///    traversal, no locks, no retries — just check the mark at the end.
///
/// Since read-heavy workloads are dominated by `contains`, this is usually
/// the best *lock-based* list in experiment E4, often competitive with the
/// lock-free one.
///
/// Removed nodes are deferred to the epoch collector: a wait-free reader
/// may still be standing on them.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentSet;
/// use cds_list::LazyList;
///
/// let s = LazyList::new();
/// s.insert(7);
/// assert!(s.contains(&7)); // wait-free
/// ```
pub struct LazyList<T> {
    head: Atomic<Node<T>>,
}

// SAFETY: node lifetime is epoch-governed; mutation is lock-protected;
// reads are mark-validated.
unsafe impl<T: Send + Sync> Send for LazyList<T> {}
unsafe impl<T: Send + Sync> Sync for LazyList<T> {}

impl<T: Ord> LazyList<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        let tail = Owned::new(Node {
            key: Bound::PosInf,
            next: Atomic::null(),
            marked: AtomicBool::new(false),
            lock: Mutex::new(()),
        });
        let head = Owned::new(Node {
            key: Bound::NegInf,
            next: Atomic::null(),
            marked: AtomicBool::new(false),
            lock: Mutex::new(()),
        });
        // SAFETY: not shared yet.
        let guard = unsafe { Guard::unprotected() };
        head.next.store(tail.into_shared(&guard), Ordering::Relaxed);
        LazyList { head: head.into() }
    }

    fn search<'g>(&self, key: &T, guard: &'g Guard) -> (Shared<'g, Node<T>>, Shared<'g, Node<T>>) {
        let mut pred = self.head.load(Ordering::Acquire, guard);
        // SAFETY: pinned throughout.
        let mut curr = unsafe { pred.deref() }.next.load(Ordering::Acquire, guard);
        loop {
            let curr_ref = unsafe { curr.deref() };
            if curr_ref.key.cmp_key(key) != CmpOrdering::Less {
                return (pred, curr);
            }
            pred = curr;
            curr = curr_ref.next.load(Ordering::Acquire, guard);
        }
    }

    /// O(1) validation under both locks: neither node is logically deleted
    /// and they are still adjacent.
    fn validate(pred: &Node<T>, curr_shared: Shared<'_, Node<T>>, guard: &Guard) -> bool {
        // SAFETY: caller pins.
        let curr = unsafe { curr_shared.deref() };
        !pred.marked.load(Ordering::Acquire)
            && !curr.marked.load(Ordering::Acquire)
            && pred.next.load(Ordering::Acquire, guard) == curr_shared
    }
}

impl<T: Ord> Default for LazyList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Send + Sync> ConcurrentSet<T> for LazyList<T> {
    const NAME: &'static str = "lazy";

    fn insert(&self, value: T) -> bool {
        let guard = epoch::pin();
        loop {
            let (pred, curr) = self.search(&value, &guard);
            // SAFETY: pinned.
            let pred_ref = unsafe { pred.deref() };
            let curr_ref = unsafe { curr.deref() };
            let _pl = pred_ref.lock.lock();
            let _cl = curr_ref.lock.lock();
            if !Self::validate(pred_ref, curr, &guard) {
                continue;
            }
            if curr_ref.key.cmp_key(&value) == CmpOrdering::Equal {
                return false;
            }
            let node = Owned::new(Node {
                key: Bound::Finite(value),
                next: Atomic::null(),
                marked: AtomicBool::new(false),
                lock: Mutex::new(()),
            });
            node.next.store(curr, Ordering::Relaxed);
            pred_ref
                .next
                .store(node.into_shared(&guard), Ordering::Release);
            return true;
        }
    }

    fn remove(&self, value: &T) -> bool {
        let guard = epoch::pin();
        loop {
            let (pred, curr) = self.search(value, &guard);
            // SAFETY: pinned.
            let pred_ref = unsafe { pred.deref() };
            let curr_ref = unsafe { curr.deref() };
            let _pl = pred_ref.lock.lock();
            let _cl = curr_ref.lock.lock();
            if !Self::validate(pred_ref, curr, &guard) {
                continue;
            }
            if curr_ref.key.cmp_key(value) != CmpOrdering::Equal {
                return false;
            }
            // Logical deletion is the linearization point…
            curr_ref.marked.store(true, Ordering::Release);
            // …physical unlinking is mere cleanup.
            let next = curr_ref.next.load(Ordering::Acquire, &guard);
            pred_ref.next.store(next, Ordering::Release);
            // SAFETY: unlinked; wait-free readers may still stand on it.
            unsafe { guard.defer_destroy(curr) };
            return true;
        }
    }

    fn contains(&self, value: &T) -> bool {
        // Wait-free: a single traversal, no locks, no retries.
        let guard = epoch::pin();
        let mut curr = self.head.load(Ordering::Acquire, &guard);
        loop {
            // SAFETY: pinned.
            let curr_ref = unsafe { curr.deref() };
            match curr_ref.key.cmp_key(value) {
                CmpOrdering::Less => {
                    curr = curr_ref.next.load(Ordering::Acquire, &guard);
                }
                CmpOrdering::Equal => {
                    return !curr_ref.marked.load(Ordering::Acquire);
                }
                CmpOrdering::Greater => return false,
            }
        }
    }

    fn len(&self) -> usize {
        let guard = epoch::pin();
        let mut n = 0;
        let mut node = self.head.load(Ordering::Acquire, &guard);
        loop {
            // SAFETY: pinned.
            let node_ref = unsafe { node.deref() };
            if matches!(node_ref.key, Bound::PosInf) {
                return n;
            }
            if matches!(node_ref.key, Bound::Finite(_)) && !node_ref.marked.load(Ordering::Acquire)
            {
                n += 1;
            }
            node = node_ref.next.load(Ordering::Acquire, &guard);
        }
    }
}

impl<T> Drop for LazyList<T> {
    fn drop(&mut self) {
        // SAFETY: unique access.
        let guard = unsafe { Guard::unprotected() };
        let mut cur = self.head.load(Ordering::Relaxed, &guard);
        while !cur.is_null() {
            // SAFETY: unique ownership of the chain.
            unsafe {
                let boxed = cur.into_owned().into_box();
                cur = boxed.next.load(Ordering::Relaxed, &guard);
            }
        }
    }
}

impl<T> fmt::Debug for LazyList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LazyList").finish_non_exhaustive()
    }
}

impl<T: Ord + Send + Sync> FromIterator<T> for LazyList<T> {
    /// Collects into a set (duplicates are dropped).
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let set = LazyList::new();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

impl<T: Ord + Send + Sync> Extend<T> for LazyList<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentSet;
    use std::sync::Arc;

    #[test]
    fn wait_free_contains_sees_marks() {
        let s = LazyList::new();
        s.insert(1);
        s.insert(2);
        assert!(s.contains(&1));
        s.remove(&1);
        assert!(!s.contains(&1));
        assert!(s.contains(&2));
    }

    #[test]
    fn readers_during_heavy_churn() {
        let s = Arc::new(LazyList::new());
        for i in 0..32 {
            s.insert(i);
        }
        let churn: Vec<_> = (0..2)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for round in 0..500 {
                        let k = t * 16 + round % 16;
                        s.remove(&k);
                        s.insert(k);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for round in 0..2000 {
                        // Keys ≥ 32 were never inserted: must never appear.
                        assert!(!s.contains(&(32 + round % 8)));
                    }
                })
            })
            .collect();
        for h in churn.into_iter().chain(readers) {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 32);
    }
}

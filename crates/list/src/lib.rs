//! List-based concurrent sets: the canonical synchronization ladder.
//!
//! A sorted singly-linked list implementing a set is the textbook vehicle
//! for teaching fine-grained synchronization (Herlihy & Shavit ch. 9), and
//! each rung of the ladder is implemented here behind
//! [`cds_core::ConcurrentSet`]:
//!
//! 1. [`CoarseList`] — one lock around the whole list.
//! 2. [`FineList`] — **hand-over-hand** (lock-coupling) locking: a
//!    traversal holds at most two node locks, so disjoint sections of the
//!    list are accessed in parallel.
//! 3. [`OptimisticList`] — traverse *without* locks, lock the two affected
//!    nodes, then **validate** by re-traversing; wins when traversals
//!    dominate and conflicts are rare.
//! 4. [`LazyList`] (Heller et al., 2005) — adds a *marked* bit so
//!    validation is O(1) and `contains` is wait-free; removal marks
//!    (logical delete) before unlinking (physical delete).
//! 5. [`HarrisMichaelList`] (Harris 2001; Michael 2002) — fully lock-free:
//!    the mark lives in the low bit of the `next` pointer
//!    ([`cds_reclaim::epoch`] tagged pointers), and traversals help unlink
//!    marked nodes with CAS.
//!
//! All five have O(n) operations — the point is not asymptotics but the
//! synchronization structure; experiment E4 sweeps them across read ratios.
//!
//! # Example
//!
//! ```
//! use cds_core::ConcurrentSet;
//! use cds_list::LazyList;
//!
//! let set = LazyList::new();
//! assert!(set.insert(3));
//! assert!(!set.insert(3));
//! assert!(set.contains(&3));
//! assert!(set.remove(&3));
//! assert!(set.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coarse;
mod fine;
mod harris_michael;
mod lazy;
mod optimistic;

pub(crate) use cds_core::Bound;
pub use coarse::CoarseList;
pub use fine::FineList;
pub use harris_michael::HarrisMichaelList;
pub use lazy::LazyList;
pub use optimistic::OptimisticList;

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentSet;
    use std::sync::Arc;

    fn set_semantics<S: ConcurrentSet<i32> + Default>() {
        let s = S::default();
        assert!(s.is_empty());
        assert!(!s.contains(&1));
        assert!(!s.remove(&1));
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(s.insert(9));
        assert!(!s.insert(5), "duplicate insert must fail");
        assert_eq!(s.len(), 3);
        assert!(s.contains(&1) && s.contains(&5) && s.contains(&9));
        assert!(!s.contains(&2));
        assert!(s.remove(&5));
        assert!(!s.remove(&5), "double remove must fail");
        assert!(!s.contains(&5));
        assert_eq!(s.len(), 2);
    }

    fn concurrent_disjoint_inserts<S: ConcurrentSet<u64> + Default + 'static>() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 150;
        let s = Arc::new(S::default());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        assert!(s.insert(t * PER_THREAD + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len() as u64, THREADS * PER_THREAD);
        for v in 0..THREADS * PER_THREAD {
            assert!(s.contains(&v), "missing {v}");
        }
    }

    fn one_winner<S: ConcurrentSet<u64> + Default + 'static>() {
        for _ in 0..8 {
            let s = Arc::new(S::default());
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let s = Arc::clone(&s);
                    std::thread::spawn(move || s.insert(42))
                })
                .collect();
            let wins = handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&w| w)
                .count();
            assert_eq!(wins, 1, "exactly one insert(42) must win");
            let removers: Vec<_> = (0..4)
                .map(|_| {
                    let s = Arc::clone(&s);
                    std::thread::spawn(move || s.remove(&42))
                })
                .collect();
            let removed = removers
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&w| w)
                .count();
            assert_eq!(removed, 1, "exactly one remove(42) must win");
        }
    }

    fn mixed_stress<S: ConcurrentSet<u64> + Default + 'static>() {
        let s = Arc::new(S::default());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut x: u64 = t * 2654435761 + 1;
                    for _ in 0..500 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 64;
                        match x % 3 {
                            0 => {
                                s.insert(k);
                            }
                            1 => {
                                s.remove(&k);
                            }
                            _ => {
                                s.contains(&k);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Post-condition: the set must be internally consistent — every
        // claimed member is found, length matches a full scan.
        let n = s.len();
        let found = (0..64).filter(|k| s.contains(k)).count();
        assert_eq!(n, found);
    }

    #[test]
    fn all_lists_have_set_semantics() {
        set_semantics::<CoarseList<i32>>();
        set_semantics::<FineList<i32>>();
        set_semantics::<OptimisticList<i32>>();
        set_semantics::<LazyList<i32>>();
        set_semantics::<HarrisMichaelList<i32>>();
    }

    #[test]
    fn disjoint_inserts_all_land() {
        concurrent_disjoint_inserts::<CoarseList<u64>>();
        concurrent_disjoint_inserts::<FineList<u64>>();
        concurrent_disjoint_inserts::<OptimisticList<u64>>();
        concurrent_disjoint_inserts::<LazyList<u64>>();
        concurrent_disjoint_inserts::<HarrisMichaelList<u64>>();
    }

    #[test]
    fn same_key_races_have_one_winner() {
        one_winner::<CoarseList<u64>>();
        one_winner::<FineList<u64>>();
        one_winner::<OptimisticList<u64>>();
        one_winner::<LazyList<u64>>();
        one_winner::<HarrisMichaelList<u64>>();
    }

    #[test]
    fn mixed_workload_stays_consistent() {
        mixed_stress::<CoarseList<u64>>();
        mixed_stress::<FineList<u64>>();
        mixed_stress::<OptimisticList<u64>>();
        mixed_stress::<LazyList<u64>>();
        mixed_stress::<HarrisMichaelList<u64>>();
    }
}

//! Hazard-pointer memory reclamation (Michael, 2004).
//!
//! Where [`epoch`](crate::epoch) protects *everything* a thread might touch
//! while pinned, hazard pointers protect *specific pointers*: before
//! dereferencing a shared node a thread publishes the node's address in a
//! *hazard slot*; a retiring thread frees a node only after scanning all
//! slots and finding no match. This bounds unreclaimed garbage by
//! `slots × threshold` even if threads stall — the property epoch schemes
//! lack — at the cost of a published store and fence per protected pointer.
//!
//! # Example
//!
//! ```
//! use cds_reclaim::hazard::{Domain, HazardPointer};
//! use cds_atomic::{AtomicPtr, Ordering};
//!
//! let domain = Domain::new();
//! let shared = AtomicPtr::new(Box::into_raw(Box::new(42)));
//!
//! let mut hp = HazardPointer::new(&domain);
//! let p = hp.protect(&shared);
//! // `p` cannot be freed by concurrent retirers while `hp` holds it.
//! assert_eq!(unsafe { *p }, 42);
//! hp.reset();
//!
//! // Retire the node; the domain frees it once no hazard covers it.
//! let raw = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
//! unsafe { domain.retire(raw) };
//! ```

use cds_atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::collections::HashSet;
use std::fmt;
use std::ptr;
use std::sync::Mutex;

/// How many retired nodes accumulate before a scan is attempted.
pub const SCAN_THRESHOLD: usize = 64;

/// One published hazard slot. Lives in the domain's intrusive slot list for
/// the domain's lifetime; slots are recycled, never freed, so scanning
/// threads can traverse the list without further synchronization.
///
/// A slot carries either a protected *address* (classic hazard pointer) or
/// a published *era* (hazard-era-style blanket protection) depending on
/// which handle type owns it; the unused field stays 0.
struct Slot {
    /// The protected address (0 when none).
    hazard: AtomicUsize,
    /// The published era (0 when none). A retired node stamped with era
    /// `e` is unreclaimable while any slot publishes an era `<= e`.
    era: AtomicU64,
    /// Whether some `HazardPointer` or `Era` currently owns this slot.
    active: AtomicBool,
    /// Next slot in the domain's list.
    next: AtomicPtr<Slot>,
}

struct Retired {
    ptr: *mut u8,
    dtor: unsafe fn(*mut u8),
    /// Era-clock value at retirement; era-based guards entered at or
    /// before this value hold the node back.
    stamp: u64,
}

// SAFETY: retirement requires `T: Send` (see `Domain::retire`), so running
// the destructor from whichever thread triggers the scan is sound.
unsafe impl Send for Retired {}

/// A reclamation domain: a set of hazard slots plus a retired list.
///
/// Nodes retired into a domain are freed only when no [`HazardPointer`]
/// belonging to the *same* domain protects them. Use one domain per data
/// structure (or share one across structures whose nodes never alias).
pub struct Domain {
    head: AtomicPtr<Slot>,
    retired: Mutex<Vec<Retired>>,
    /// Approximate retired count, to trigger scans without locking.
    retired_count: AtomicUsize,
    /// Monotonic era clock: bumped on every retirement, snapshotted by
    /// era-based guards. Starts at 1 so era 0 can mean "none published".
    era_clock: AtomicU64,
}

// SAFETY: all shared state is atomics or mutex-protected.
unsafe impl Send for Domain {}
unsafe impl Sync for Domain {}

impl Domain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        Domain {
            head: AtomicPtr::new(ptr::null_mut()),
            retired: Mutex::new(Vec::new()),
            retired_count: AtomicUsize::new(0),
            era_clock: AtomicU64::new(1),
        }
    }

    /// Acquires a free slot, reusing an inactive one if possible.
    fn acquire_slot(&self) -> *const Slot {
        // First pass: try to recycle an inactive slot.
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: slots are never freed while the domain lives.
            let slot = unsafe { &*cur };
            if !slot.active.load(Ordering::Relaxed)
                && slot
                    .active
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return cur;
            }
            cur = slot.next.load(Ordering::Acquire);
        }
        // Second pass: push a fresh slot (Treiber-style).
        let slot = Box::into_raw(Box::new(Slot {
            hazard: AtomicUsize::new(0),
            era: AtomicU64::new(0),
            active: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        loop {
            let head = self.head.load(Ordering::Acquire);
            // SAFETY: `slot` is ours until the CAS publishes it.
            unsafe { (*slot).next.store(head, Ordering::Relaxed) };
            if self
                .head
                .compare_exchange(head, slot, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return slot;
            }
        }
    }

    /// Retires a `Box`-allocated node for eventual destruction.
    ///
    /// # Safety
    ///
    /// `ptr` must come from `Box::into_raw`, must already be unreachable
    /// for threads that have not yet protected it, must not be retired
    /// twice, and must be safe to drop on any thread (morally `T: Send`;
    /// not expressed as a bound because node types routinely contain raw
    /// pointers managed by the same protocol).
    pub unsafe fn retire<T>(&self, ptr: *mut T) {
        unsafe fn dtor<T>(p: *mut u8) {
            // SAFETY: constructed from `Box::into_raw::<T>` in `retire`.
            unsafe { drop(Box::from_raw(p.cast::<T>())) }
        }
        debug_assert!(!ptr.is_null());
        // Stamp with the pre-bump clock value: any era guard that entered
        // before this retirement observed a clock value <= stamp and so
        // holds the node back; guards entering afterwards read > stamp and
        // (per the retire contract) can no longer reach the node.
        let stamp = self.era_clock.fetch_add(1, Ordering::SeqCst);
        self.retired.lock().unwrap().push(Retired {
            ptr: ptr.cast(),
            dtor: dtor::<T>,
            stamp,
        });
        let n = self.retired_count.fetch_add(1, Ordering::Relaxed) + 1;
        if cds_obs::enabled() {
            cds_obs::record_max(cds_obs::Event::PeakGarbageHazard, n as u64);
        }
        if n >= SCAN_THRESHOLD {
            self.scan();
        }
    }

    /// Scans hazards and frees every retired node not currently protected.
    ///
    /// Returns the number of nodes freed.
    pub fn scan(&self) -> usize {
        // Steal the retired list FIRST: every node considered for freeing
        // below was retired (hence unlinked) before this point. Only then
        // read the hazard/era slots, so a reader that publish-validated a
        // hazard (or published an era) before any stolen node's unlink is
        // guaranteed visible to this scan. Reading the slots before taking
        // the list would let a node retired between the slot snapshot and
        // the list lock be freed out from under an established protection.
        let stolen: Vec<Retired> = std::mem::take(&mut *self.retired.lock().unwrap());
        if stolen.is_empty() {
            return 0;
        }

        // Stolen nodes' unlinks happen-before this scan's hazard reads.
        fence(Ordering::SeqCst);

        // Snapshot all active hazards and the minimum published era.
        let mut protected: HashSet<usize> = HashSet::new();
        let mut min_era: Option<u64> = None;
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: slots live as long as the domain.
            let slot = unsafe { &*cur };
            let h = slot.hazard.load(Ordering::SeqCst);
            if h != 0 {
                protected.insert(h);
            }
            let e = slot.era.load(Ordering::SeqCst);
            if e != 0 {
                min_era = Some(min_era.map_or(e, |m: u64| m.min(e)));
            }
            cur = slot.next.load(Ordering::Acquire);
        }

        // Free stolen nodes covered by neither an address hazard nor an
        // era; push the covered ones back for a later scan.
        let (keep, to_free): (Vec<Retired>, Vec<Retired>) = stolen.into_iter().partition(|r| {
            min_era.is_some_and(|m| m <= r.stamp) || protected.contains(&(r.ptr as usize))
        });
        if !keep.is_empty() {
            self.retired.lock().unwrap().extend(keep);
        }
        let n = to_free.len();
        // Subtract (rather than overwrite) so concurrent `retire`
        // increments are not lost and the scan threshold keeps firing.
        self.retired_count.fetch_sub(n, Ordering::Relaxed);
        cds_obs::add(cds_obs::Event::FreedHazard, n as u64);
        for r in to_free {
            // SAFETY: `r` was retired before the steal, so its unlink
            // precedes the slot reads above; no hazard covers `r.ptr` and
            // no era guard predates its retirement, so no established
            // protection reaches it, and retire's contract rules out new
            // ones (the node is unlinked).
            unsafe { (r.dtor)(r.ptr) };
        }
        n
    }

    /// Number of nodes awaiting reclamation (diagnostics).
    pub fn retired_len(&self) -> usize {
        self.retired.lock().unwrap().len()
    }

    /// Publishes an era-based blanket protection (hazard-era style).
    ///
    /// While the returned [`Era`] is alive, no node retired *at or after*
    /// the era's entry point can be reclaimed by [`scan`](Domain::scan) —
    /// the per-timestamp analogue of an epoch pin, built on the same slot
    /// list as address hazards. Traversal-heavy structures whose algorithms
    /// cannot publish per-pointer hazards (no mark bits on the traversed
    /// fields, helper dereferences after operation completion, …) use this
    /// mode; see the `Reclaimer` docs for the soundness contract.
    pub fn enter_era(&self) -> Era<'_> {
        let slot = self.acquire_slot();
        // Publish-validate, like `HazardPointer::protect`: publish a clock
        // snapshot, fence, and re-read the clock until it matches. On exit
        // with era `e` the clock was still `e` after the publication, so
        // any retirement stamped `>= e` performed its `fetch_add` after
        // the era store — and a scan can only free that node after the
        // retirement lands in the list it steals, hence after the store,
        // so the scan's slot read sees the era and holds the node back.
        // Publishing without the re-read would let a concurrent retirement
        // stamped `e` be freed by a scan that ran before the store landed.
        let mut era = self.era_clock.load(Ordering::SeqCst);
        loop {
            // SAFETY: slots live as long as the domain, which `self`
            // borrows.
            unsafe { (*slot).era.store(era, Ordering::SeqCst) };
            // Publish the era before the owner loads any structure
            // pointers; pairs with the SeqCst fence in `scan`.
            fence(Ordering::SeqCst);
            let now = self.era_clock.load(Ordering::SeqCst);
            if now == era {
                break;
            }
            era = now;
        }
        Era {
            slot,
            _marker: std::marker::PhantomData,
        }
    }

    /// Current era-clock value (diagnostics and tests).
    pub fn era_clock(&self) -> u64 {
        self.era_clock.load(Ordering::SeqCst)
    }
}

impl Default for Domain {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Domain {
    fn drop(&mut self) {
        // No hazard pointers can outlive the domain (they borrow it), so
        // everything retired is reclaimable.
        for r in self.retired.get_mut().unwrap().drain(..) {
            // SAFETY: unique access; no protections exist.
            unsafe { (r.dtor)(r.ptr) };
        }
        // Free the slot list.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: unique access; slots were only ever reachable from
            // this domain.
            let slot = unsafe { Box::from_raw(cur) };
            cur = slot.next.load(Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Domain")
            .field("retired", &self.retired_len())
            .finish_non_exhaustive()
    }
}

/// A single hazard slot held by the current thread.
///
/// Protect a pointer before dereferencing it; the protection lasts until
/// [`reset`](HazardPointer::reset), the next `protect`, or drop.
pub struct HazardPointer<'d> {
    domain: &'d Domain,
    slot: *const Slot,
}

impl<'d> HazardPointer<'d> {
    /// Acquires a hazard slot in `domain`.
    pub fn new(domain: &'d Domain) -> Self {
        HazardPointer {
            domain,
            slot: domain.acquire_slot(),
        }
    }

    /// The domain this hazard pointer belongs to.
    pub fn domain(&self) -> &'d Domain {
        self.domain
    }

    fn slot(&self) -> &Slot {
        // SAFETY: slots live as long as the domain, which `'d` outlives.
        unsafe { &*self.slot }
    }

    /// Protects the pointer currently stored in `src` and returns it.
    ///
    /// Loops until the published hazard and the source agree, so on return
    /// the pointee (if non-null) cannot be freed by [`Domain::retire`]
    /// until this hazard is cleared or overwritten.
    pub fn protect<T>(&mut self, src: &AtomicPtr<T>) -> *mut T {
        let mut ptr = src.load(Ordering::Relaxed);
        loop {
            self.slot().hazard.store(ptr as usize, Ordering::Relaxed);
            // Publish the hazard before re-validating: pairs with the
            // SeqCst fence in `scan`.
            fence(Ordering::SeqCst);
            let now = src.load(Ordering::Acquire);
            if now == ptr {
                return ptr;
            }
            ptr = now;
        }
    }

    /// Publishes protection for a known raw pointer.
    ///
    /// The caller is responsible for re-validating that the pointer is
    /// still reachable after this call (the usual hazard-pointer protocol);
    /// prefer [`protect`](HazardPointer::protect) when the source is an
    /// `AtomicPtr`.
    pub fn protect_raw<T>(&mut self, ptr: *mut T) {
        self.slot().hazard.store(ptr as usize, Ordering::Relaxed);
        fence(Ordering::SeqCst);
    }

    /// Clears the protection without releasing the slot.
    pub fn reset(&mut self) {
        self.slot().hazard.store(0, Ordering::Release);
    }
}

impl Drop for HazardPointer<'_> {
    fn drop(&mut self) {
        let slot = self.slot();
        slot.hazard.store(0, Ordering::Release);
        slot.active.store(false, Ordering::Release);
    }
}

/// An active era-based blanket protection (see [`Domain::enter_era`]).
///
/// Dropping the handle retracts the era and recycles the slot.
pub struct Era<'d> {
    slot: *const Slot,
    // Ties the borrow to the domain: slots live as long as it does.
    _marker: std::marker::PhantomData<&'d Domain>,
}

impl Era<'_> {
    fn slot(&self) -> &Slot {
        // SAFETY: slots live as long as the domain, which `'d` outlives.
        unsafe { &*self.slot }
    }

    /// The era value this guard published.
    pub fn era(&self) -> u64 {
        self.slot().era.load(Ordering::Relaxed)
    }
}

impl Drop for Era<'_> {
    fn drop(&mut self) {
        let slot = self.slot();
        slot.era.store(0, Ordering::Release);
        slot.active.store(false, Ordering::Release);
    }
}

impl fmt::Debug for Era<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Era").field("era", &self.era()).finish()
    }
}

impl fmt::Debug for HazardPointer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HazardPointer")
            .field(
                "protecting",
                &(self.slot().hazard.load(Ordering::Relaxed) != 0),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_atomic::AtomicUsize as Counter;
    use std::sync::Arc;

    struct DropCounter(Arc<Counter>);

    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn protect_returns_current_value() {
        let domain = Domain::new();
        let boxed = Box::into_raw(Box::new(7));
        let src = AtomicPtr::new(boxed);
        let mut hp = HazardPointer::new(&domain);
        let p = hp.protect(&src);
        assert_eq!(p, boxed);
        assert_eq!(unsafe { *p }, 7);
        drop(hp);
        unsafe { drop(Box::from_raw(boxed)) };
    }

    #[test]
    fn protected_node_survives_scan() {
        let domain = Domain::new();
        let drops = Arc::new(Counter::new(0));
        let raw = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
        let src = AtomicPtr::new(raw);

        let mut hp = HazardPointer::new(&domain);
        let p = hp.protect(&src);
        assert_eq!(p, raw);

        // Unlink and retire while protected.
        src.store(ptr::null_mut(), Ordering::Release);
        unsafe { domain.retire(raw) };
        domain.scan();
        assert_eq!(drops.load(Ordering::SeqCst), 0, "freed under protection");

        hp.reset();
        domain.scan();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unprotected_nodes_are_freed_by_scan() {
        let domain = Domain::new();
        let drops = Arc::new(Counter::new(0));
        for _ in 0..10 {
            let raw = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
            unsafe { domain.retire(raw) };
        }
        domain.scan();
        assert_eq!(drops.load(Ordering::SeqCst), 10);
        assert_eq!(domain.retired_len(), 0);
    }

    #[test]
    fn slots_are_recycled() {
        let domain = Domain::new();
        let s1 = {
            let hp = HazardPointer::new(&domain);
            hp.slot as usize
        };
        // After drop the slot is inactive and must be reused.
        let hp2 = HazardPointer::new(&domain);
        assert_eq!(hp2.slot as usize, s1);
    }

    #[test]
    fn domain_drop_frees_remaining_retirees() {
        let drops = Arc::new(Counter::new(0));
        {
            let domain = Domain::new();
            for _ in 0..5 {
                let raw = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
                unsafe { domain.retire(raw) };
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn concurrent_protect_and_retire_stress() {
        let domain = Arc::new(Domain::new());
        let drops = Arc::new(Counter::new(0));
        let slot: Arc<AtomicPtr<DropCounter>> = Arc::new(AtomicPtr::new(Box::into_raw(Box::new(
            DropCounter(Arc::clone(&drops)),
        ))));
        const SWAPS: usize = 2000;

        let writer = {
            let domain = Arc::clone(&domain);
            let slot = Arc::clone(&slot);
            let drops = Arc::clone(&drops);
            std::thread::spawn(move || {
                for _ in 0..SWAPS {
                    let new = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
                    let old = slot.swap(new, Ordering::AcqRel);
                    unsafe { domain.retire(old) };
                }
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let domain = Arc::clone(&domain);
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || {
                    let mut hp = HazardPointer::new(&domain);
                    for _ in 0..SWAPS {
                        let p = hp.protect(&slot);
                        // Touch the protected memory; UB here would crash
                        // under sanitizers / in practice.
                        assert!(!p.is_null());
                        let _inner = unsafe { &(*p).0 };
                        hp.reset();
                    }
                })
            })
            .collect();

        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        // Free the final node.
        let last = slot.swap(ptr::null_mut(), Ordering::AcqRel);
        unsafe { drop(Box::from_raw(last)) };
        drop(slot);
        // Everything retired plus the final node equals SWAPS + 1 total
        // allocations; after domain drop all must be freed.
        drop(Arc::try_unwrap(domain).unwrap());
        assert_eq!(drops.load(Ordering::SeqCst), SWAPS + 1);
    }
}

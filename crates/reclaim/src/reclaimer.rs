//! The backend-generic reclamation interface: one trait pair that lets a
//! lock-free structure compile against epochs, hazard pointers, a leaking
//! no-op, or a use-after-retire-detecting debug backend.
//!
//! Following Meyer & Wolff ("Decoupling Lock-Free Data Structures from
//! Memory Reclamation", 2018), the structure sees only a *guard* with
//! three capabilities — protect a pointer before dereferencing it, retire
//! an unlinked node, and (implicitly, by its lifetime) scope the
//! protection — while the backend decides what those capabilities cost
//! and what they guarantee:
//!
//! | backend | `enter` | `enter_blanket` | `retire` |
//! |---|---|---|---|
//! | [`Ebr`] | epoch pin | epoch pin | defer to collector |
//! | [`Hazard`] | per-pointer hazards | published era | stamped retire + scan |
//! | [`Leak`] | no-op | no-op | leak |
//! | [`DebugReclaim`] | registry stamp | registry stamp | poison + quarantine |
//!
//! # The two protection modes
//!
//! [`Reclaimer::enter`] returns a guard for the **per-pointer** discipline:
//! the structure promises that every pointer it dereferences went through
//! [`ReclaimGuard::protect`] (publish-validate) or
//! [`ReclaimGuard::protect_ptr`] plus a reachability re-validation. Under
//! [`Hazard`] this is the classic Michael protocol with bounded garbage.
//! The Treiber stack, Michael–Scott queue, and Chase–Lev deque use it.
//!
//! [`Reclaimer::enter_blanket`] returns a guard that protects *everything
//! the operation can reach* for the guard's lifetime. Under [`Hazard`]
//! this publishes an **era** (hazard-era style): a node retired at era `e`
//! is unreclaimable while any guard entered at era `<= e` is live.
//! Traversal structures whose algorithms cannot publish per-pointer
//! hazards use this mode — the Harris–Michael list and split-ordered map
//! (unlink targets are reached through fields that freeze only on the
//! *predecessor*, so a per-location validate cannot cover restarts through
//! marked chains without an algorithm redesign), the lock-free skiplist
//! (same, per level), and the Ellen et al. BST (child pointers carry no
//! mark bits and helpers dereference descriptor-held raw pointers after
//! the operation completes — per-pointer hazards are insufficient by
//! design; see Brown, "Reclaiming memory for lock-free data structures",
//! 2015).
//!
//! # The soundness contract (all backends)
//!
//! `retire` may only be called on a node that is **unreachable to
//! operations that begin afterwards**: every path from the structure's
//! roots to the node was severed before the call. This is exactly the
//! contract epoch-based reclamation already imposes, which is why one
//! structure implementation can serve every backend. Blanket guards rely
//! on it directly (a guard entered after the retire can never reach the
//! node, so holding back only nodes retired during live guards is
//! enough); per-pointer guards rely on it through the publish-validate
//! step (a validated pointer is currently reachable, hence not retired).
//!
//! # Retire granularity
//!
//! Nothing in the contract says the retired object is a *node*.
//! [`ReclaimGuard::retire`] is generic over any `Atomic`/`Owned`-managed
//! allocation behind a thin pointer, so a structure can retire an entire
//! **bucket array** in one call by wrapping it in a table struct (e.g.
//! `struct Table { buckets: Box<[Mutex<Bucket>]>, .. }`): the backend
//! destructor boxes the table back up and dropping it drops every bucket.
//! This is how `cds_map::ResizingMap` reclaims superseded generations —
//! the thread that completes a migration severs the old table from the
//! shard root and retires it whole, and the usual contract ("unreachable
//! to operations that begin afterwards") carries over unchanged because
//! operations reach buckets only through the root pointer.

use cds_atomic::{AtomicU64, AtomicUsize, Ordering};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::thread::ThreadId;

use crate::epoch::{self, Atomic, Shared};
use crate::hazard::{Domain, Era, HazardPointer};

/// A reclamation backend, used as a type-level tag on generic structures
/// (`TreiberStack<T, R: Reclaimer>` and friends).
pub trait Reclaimer: Send + Sync + 'static {
    /// The guard handed to one structure operation.
    type Guard: ReclaimGuard;

    /// Short name for benchmarks and test-matrix labels.
    const NAME: &'static str;

    /// Enters a per-pointer protected section: the caller promises every
    /// dereferenced pointer goes through [`ReclaimGuard::protect`] /
    /// [`ReclaimGuard::protect_ptr`] with re-validation.
    fn enter() -> Self::Guard;

    /// Enters a blanket-protected section: everything reachable during
    /// the guard's lifetime stays alive (epoch pin / published era).
    fn enter_blanket() -> Self::Guard;

    /// Best-effort reclamation drain, for tests and benchmarks that want
    /// deterministic accounting; never required for correctness.
    fn collect();

    /// Number of retired-but-unreclaimed nodes the backend currently
    /// holds (diagnostics; 0 where the notion does not apply).
    fn retired_backlog() -> usize {
        0
    }
}

/// One operation's reclamation capability: protect, retire, and (via the
/// guard's lifetime) scope.
pub trait ReclaimGuard: Sized {
    /// Loads the pointer in `src` and protects the pointee until the guard
    /// ends (or the same `slot` is reused).
    ///
    /// Per-pointer backends publish the address in hazard slot `slot` and
    /// re-validate `src` until both agree, so the returned pointer was
    /// reachable *after* the hazard became visible; blanket backends just
    /// load. Distinct concurrently-needed pointers must use distinct
    /// `slot` indices.
    fn protect<'g, T>(&'g self, slot: usize, src: &Atomic<T>, ord: Ordering) -> Shared<'g, T>;

    /// Publishes protection for an already-loaded pointer without
    /// validating any source.
    ///
    /// The caller must re-validate reachability afterwards (e.g. re-read
    /// the originating atomic) before dereferencing — the usual
    /// hazard-pointer protocol for pointers read out of protected nodes.
    fn protect_ptr<'g, T>(&'g self, slot: usize, ptr: Shared<'_, T>) -> Shared<'g, T>;

    /// Hands an unlinked node to the backend for eventual destruction.
    ///
    /// # Safety
    ///
    /// `ptr` must be non-null, allocated via [`Owned`](crate::epoch::Owned)
    /// / [`Atomic::new`], unreachable to operations that begin after this
    /// call, retired exactly once, and safe to drop on any thread (morally
    /// `T: Send`; not expressed as a bound because node types routinely
    /// contain raw pointers managed by the same protocol).
    unsafe fn retire<T>(&self, ptr: Shared<'_, T>);
}

/// Rebinds a `Shared` to a new guard lifetime (backend-internal).
fn rebind<'g, T>(ptr: Shared<'_, T>) -> Shared<'g, T> {
    Shared::from_raw(ptr.as_raw()).with_tag(ptr.tag())
}

// ---------------------------------------------------------------------------
// EBR backend
// ---------------------------------------------------------------------------

/// Epoch-based reclamation on the process-wide default collector — the
/// default backend for every structure (cheapest reads, unbounded garbage
/// under a stalled pin).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ebr;

impl Reclaimer for Ebr {
    type Guard = epoch::Guard;
    const NAME: &'static str = "ebr";

    fn enter() -> epoch::Guard {
        epoch::pin()
    }

    fn enter_blanket() -> epoch::Guard {
        epoch::pin()
    }

    fn collect() {
        epoch::pin().flush();
    }

    fn retired_backlog() -> usize {
        epoch::default_collector().global_garbage_len()
    }
}

impl ReclaimGuard for epoch::Guard {
    fn protect<'g, T>(&'g self, _slot: usize, src: &Atomic<T>, ord: Ordering) -> Shared<'g, T> {
        // The pin already protects everything reachable.
        src.load(ord, self)
    }

    fn protect_ptr<'g, T>(&'g self, _slot: usize, ptr: Shared<'_, T>) -> Shared<'g, T> {
        rebind(ptr)
    }

    unsafe fn retire<T>(&self, ptr: Shared<'_, T>) {
        cds_obs::count(cds_obs::Event::RetiredEbr);
        // SAFETY: forwarded contract.
        unsafe { self.defer_destroy(ptr) }
        if cds_obs::enabled() {
            cds_obs::record_max(
                cds_obs::Event::PeakGarbageEbr,
                Ebr::retired_backlog() as u64,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Leak backend
// ---------------------------------------------------------------------------

/// The no-reclamation floor: `retire` leaks. All of the algorithm, none of
/// the reclamation cost — the lower-bound baseline for experiment E10.
#[derive(Debug, Clone, Copy, Default)]
pub struct Leak;

/// Guard of the [`Leak`] backend; protection is vacuous because nothing is
/// ever freed.
#[derive(Debug)]
pub struct LeakGuard(());

impl Reclaimer for Leak {
    type Guard = LeakGuard;
    const NAME: &'static str = "leak";

    fn enter() -> LeakGuard {
        LeakGuard(())
    }

    fn enter_blanket() -> LeakGuard {
        LeakGuard(())
    }

    fn collect() {}
}

impl ReclaimGuard for LeakGuard {
    fn protect<'g, T>(&'g self, _slot: usize, src: &Atomic<T>, ord: Ordering) -> Shared<'g, T> {
        src.load(ord, self)
    }

    fn protect_ptr<'g, T>(&'g self, _slot: usize, ptr: Shared<'_, T>) -> Shared<'g, T> {
        rebind(ptr)
    }

    unsafe fn retire<T>(&self, _ptr: Shared<'_, T>) {
        // Intentionally leaked: retired nodes are never freed, so every
        // stale pointer stays valid forever.
        cds_obs::count(cds_obs::Event::RetiredLeak);
    }
}

// ---------------------------------------------------------------------------
// Hazard backend
// ---------------------------------------------------------------------------

/// Hazard-pointer reclamation on a process-wide [`Domain`]: per-pointer
/// publish-validate protection in [`enter`](Reclaimer::enter) mode,
/// published eras in [`enter_blanket`](Reclaimer::enter_blanket) mode.
/// Bounded garbage under per-pointer mode even when threads stall.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hazard;

impl Hazard {
    /// The process-wide hazard domain backing this reclaimer.
    pub fn domain() -> &'static Domain {
        static DOMAIN: OnceLock<Domain> = OnceLock::new();
        DOMAIN.get_or_init(Domain::new)
    }
}

enum HazardMode {
    /// Indexed hazard slots, acquired lazily on first use of each index.
    PerPointer(RefCell<Vec<HazardPointer<'static>>>),
    /// One published era covering the whole operation.
    Blanket(#[allow(dead_code)] Era<'static>),
}

thread_local! {
    /// Hazard slots handed back by the last per-pointer guard on this
    /// thread, so successive operations reuse their slots instead of
    /// re-walking the domain's slot list (a CAS per node) and allocating
    /// per guard.
    static SLOT_CACHE: RefCell<Vec<HazardPointer<'static>>> = const { RefCell::new(Vec::new()) };
}

/// Guard of the [`Hazard`] backend.
pub struct HazardGuard {
    mode: HazardMode,
}

impl std::fmt::Debug for HazardGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mode = match &self.mode {
            HazardMode::PerPointer(slots) => format!("per-pointer({})", slots.borrow().len()),
            HazardMode::Blanket(_) => "blanket".to_string(),
        };
        f.debug_struct("HazardGuard").field("mode", &mode).finish()
    }
}

impl Reclaimer for Hazard {
    type Guard = HazardGuard;
    const NAME: &'static str = "hazard";

    fn enter() -> HazardGuard {
        // Reuse this thread's cached slots; a nested guard finds the cache
        // empty (taken by the outer guard) and acquires fresh ones.
        let cached = SLOT_CACHE
            .try_with(|c| std::mem::take(&mut *c.borrow_mut()))
            .unwrap_or_default();
        HazardGuard {
            mode: HazardMode::PerPointer(RefCell::new(cached)),
        }
    }

    fn enter_blanket() -> HazardGuard {
        HazardGuard {
            mode: HazardMode::Blanket(Hazard::domain().enter_era()),
        }
    }

    fn collect() {
        Hazard::domain().scan();
    }

    fn retired_backlog() -> usize {
        Hazard::domain().retired_len()
    }
}

impl Drop for HazardGuard {
    fn drop(&mut self) {
        if let HazardMode::PerPointer(slots) = &mut self.mode {
            let mut slots = std::mem::take(slots.get_mut());
            // Clear the protections now — a stale hazard left published
            // would block reclamation of whatever it last pointed at —
            // but keep the slots acquired for the next guard.
            for hp in &mut slots {
                hp.reset();
            }
            let _ = SLOT_CACHE.try_with(move |c| {
                let mut cache = c.borrow_mut();
                if cache.is_empty() {
                    *cache = slots;
                }
                // Non-empty cache (we were a nested guard): let `slots`
                // drop here, releasing its slots back to the domain.
            });
            // If the TLS is gone (thread exit), the closure never ran and
            // `slots` was dropped with it, releasing the slots.
        }
    }
}

impl ReclaimGuard for HazardGuard {
    fn protect<'g, T>(&'g self, slot: usize, src: &Atomic<T>, ord: Ordering) -> Shared<'g, T> {
        match &self.mode {
            // The era already covers everything this operation can reach.
            HazardMode::Blanket(_) => src.load(ord, self),
            HazardMode::PerPointer(slots) => {
                let mut slots = slots.borrow_mut();
                while slots.len() <= slot {
                    slots.push(HazardPointer::new(Hazard::domain()));
                }
                // Publish-validate over the full tagged word: on return
                // the hazard and the source agree, so the pointee was
                // reachable after the hazard became visible to scans.
                let mut cur = src.load(ord, self);
                loop {
                    slots[slot].protect_raw(cur.as_raw());
                    let now = src.load(ord, self);
                    if now == cur {
                        return now;
                    }
                    cur = now;
                }
            }
        }
    }

    fn protect_ptr<'g, T>(&'g self, slot: usize, ptr: Shared<'_, T>) -> Shared<'g, T> {
        if let HazardMode::PerPointer(slots) = &self.mode {
            let mut slots = slots.borrow_mut();
            while slots.len() <= slot {
                slots.push(HazardPointer::new(Hazard::domain()));
            }
            slots[slot].protect_raw(ptr.as_raw());
        }
        rebind(ptr)
    }

    unsafe fn retire<T>(&self, ptr: Shared<'_, T>) {
        cds_obs::count(cds_obs::Event::RetiredHazard);
        // SAFETY: forwarded contract; the domain stamps the node with the
        // current era and scans hazards + eras before freeing.
        unsafe { Hazard::domain().retire(ptr.as_raw()) }
    }
}

// ---------------------------------------------------------------------------
// Debug backend
// ---------------------------------------------------------------------------

/// A reclamation *checker*: retired nodes are logically poisoned in a
/// global registry and physically quarantined until no guard that could
/// legally reach them is live. Any [`protect`](ReclaimGuard::protect) of a
/// node retired **before** the accessing guard began — a use-after-retire
/// that would be silent UB under a real backend — panics with the retiring
/// and accessing thread ids, as does any double retire. Run structures
/// under this backend inside the deterministic stress scheduler to turn
/// reclamation protocol violations into reproducible test failures.
#[derive(Debug, Clone, Copy, Default)]
pub struct DebugReclaim;

struct DebugRetired {
    addr: usize,
    dtor: unsafe fn(*mut u8),
}

// SAFETY: retirement demands droppability on any thread (see the
// `ReclaimGuard::retire` contract), so draining the quarantine from
// whichever thread reaches it last is sound.
unsafe impl Send for DebugRetired {}

#[derive(Default)]
struct DebugInner {
    /// Logically poisoned addresses: retire stamp + retiring thread.
    poisoned: HashMap<usize, (u64, ThreadId)>,
    /// Nodes awaiting physical destruction.
    quarantine: Vec<DebugRetired>,
}

struct DebugRegistry {
    /// Total order over guard entries and retirements.
    clock: AtomicU64,
    /// Live guards; the quarantine drains when this reaches zero.
    active: AtomicUsize,
    inner: Mutex<DebugInner>,
}

fn debug_registry() -> &'static DebugRegistry {
    static REGISTRY: OnceLock<DebugRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| DebugRegistry {
        clock: AtomicU64::new(1),
        active: AtomicUsize::new(0),
        inner: Mutex::new(DebugInner::default()),
    })
}

/// Drains the quarantine — frees every quarantined node and clears its
/// poison entry — but only if no guard is live at the decision point.
///
/// The liveness check happens *inside* the inner lock: callers observe
/// `active == 0` outside it, but a guard can enter (and another thread
/// retire a node that guard legally protected, since the retire stamp
/// postdates the guard's entry) between that observation and the lock
/// acquisition; draining then would free a node a live guard still
/// dereferences. Re-reading `active` under the lock closes the window:
/// retire inserts under this same lock, so the quarantine is frozen while
/// we hold it, and any guard entering after the re-read gets an entry
/// stamp larger than every quarantined retirement (its `active` increment
/// — and hence its clock increment — is SeqCst-ordered after our load),
/// so per the retire contract it cannot reach the drained nodes.
fn debug_drain(reg: &'static DebugRegistry) {
    let drained: Vec<DebugRetired> = {
        let mut inner = reg.inner.lock().unwrap();
        if reg.active.load(Ordering::SeqCst) != 0 {
            return;
        }
        let q = std::mem::take(&mut inner.quarantine);
        for r in &q {
            inner.poisoned.remove(&r.addr);
        }
        q
    };
    cds_obs::add(cds_obs::Event::FreedDebug, drained.len() as u64);
    for r in drained {
        // SAFETY: retired exactly once (enforced above) and unreachable
        // to every live and future guard.
        unsafe { (r.dtor)(r.addr as *mut u8) };
    }
}

/// Guard of the [`DebugReclaim`] backend; carries its entry stamp so
/// accesses to earlier-retired nodes can be flagged.
#[derive(Debug)]
pub struct DebugGuard {
    entered: u64,
}

impl DebugGuard {
    /// Panics if `addr` was retired before this guard began.
    fn check(&self, addr: usize) {
        if addr == 0 {
            return;
        }
        let reg = debug_registry();
        let hit = reg.inner.lock().unwrap().poisoned.get(&addr).copied();
        if let Some((stamp, by)) = hit {
            if stamp < self.entered {
                panic!(
                    "use-after-retire: node {addr:#x} was retired by thread {by:?} \
                     (stamp {stamp}) before the accessing guard of thread {:?} began \
                     (stamp {}); a real reclaimer could already have freed it",
                    std::thread::current().id(),
                    self.entered,
                );
            }
        }
    }
}

impl Reclaimer for DebugReclaim {
    type Guard = DebugGuard;
    const NAME: &'static str = "debug";

    fn enter() -> DebugGuard {
        let reg = debug_registry();
        reg.active.fetch_add(1, Ordering::SeqCst);
        DebugGuard {
            entered: reg.clock.fetch_add(1, Ordering::SeqCst),
        }
    }

    fn enter_blanket() -> DebugGuard {
        Self::enter()
    }

    fn collect() {
        // `debug_drain` re-validates that no guard is live under the lock.
        debug_drain(debug_registry());
    }

    fn retired_backlog() -> usize {
        debug_registry().inner.lock().unwrap().quarantine.len()
    }
}

impl Drop for DebugGuard {
    fn drop(&mut self) {
        let reg = debug_registry();
        // The `== 1` result is only a hint that a drain may succeed;
        // `debug_drain` re-validates `active == 0` under the lock.
        if reg.active.fetch_sub(1, Ordering::SeqCst) == 1 {
            debug_drain(reg);
        }
    }
}

impl ReclaimGuard for DebugGuard {
    fn protect<'g, T>(&'g self, _slot: usize, src: &Atomic<T>, ord: Ordering) -> Shared<'g, T> {
        let ptr = src.load(ord, self);
        self.check(ptr.as_raw() as usize);
        ptr
    }

    fn protect_ptr<'g, T>(&'g self, _slot: usize, ptr: Shared<'_, T>) -> Shared<'g, T> {
        self.check(ptr.as_raw() as usize);
        rebind(ptr)
    }

    unsafe fn retire<T>(&self, ptr: Shared<'_, T>) {
        unsafe fn dtor<T>(p: *mut u8) {
            // SAFETY: constructed from `Box`-allocated `T` per the retire
            // contract.
            unsafe { drop(Box::from_raw(p.cast::<T>())) }
        }
        let addr = ptr.as_raw() as usize;
        debug_assert_ne!(addr, 0, "retire of null");
        let reg = debug_registry();
        let stamp = reg.clock.fetch_add(1, Ordering::SeqCst);
        let me = std::thread::current().id();
        let mut inner = reg.inner.lock().unwrap();
        if let Some(&(prev_stamp, prev_by)) = inner.poisoned.get(&addr) {
            drop(inner);
            panic!(
                "double retire: node {addr:#x} was first retired by thread \
                 {prev_by:?} (stamp {prev_stamp}) and retired again by thread \
                 {me:?} (stamp {stamp})"
            );
        }
        inner.poisoned.insert(addr, (stamp, me));
        inner.quarantine.push(DebugRetired {
            addr,
            dtor: dtor::<T>,
        });
        cds_obs::count(cds_obs::Event::RetiredDebug);
        if cds_obs::enabled() {
            cds_obs::record_max(
                cds_obs::Event::PeakGarbageDebug,
                inner.quarantine.len() as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_atomic::AtomicUsize as Counter;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    struct DropCounter(Arc<Counter>);

    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn churn_one_slot<R: Reclaimer>() {
        let drops = Arc::new(Counter::new(0));
        let slot: Atomic<DropCounter> = Atomic::new(DropCounter(Arc::clone(&drops)));
        for _ in 0..200 {
            let guard = R::enter();
            let fresh = crate::epoch::Owned::new(DropCounter(Arc::clone(&drops)));
            let old = slot.swap(fresh.into_shared(&guard), Ordering::AcqRel, &guard);
            // SAFETY: `old` was just unlinked and is retired exactly once.
            unsafe { guard.retire(old) };
        }
        R::collect();
        // SAFETY: unique access to the final value.
        unsafe { drop(slot.into_owned()) };
    }

    #[test]
    fn every_backend_survives_single_threaded_churn() {
        churn_one_slot::<Ebr>();
        churn_one_slot::<Hazard>();
        churn_one_slot::<Leak>();
        churn_one_slot::<DebugReclaim>();
    }

    #[test]
    fn hazard_per_pointer_protect_blocks_reclamation() {
        let drops = Arc::new(Counter::new(0));
        let slot: Atomic<DropCounter> = Atomic::new(DropCounter(Arc::clone(&drops)));

        let reader = Hazard::enter();
        let protected = reader.protect(0, &slot, Ordering::Acquire);
        assert!(!protected.is_null());

        {
            let writer = Hazard::enter();
            let fresh = crate::epoch::Owned::new(DropCounter(Arc::clone(&drops)));
            let old = slot.swap(fresh.into_shared(&writer), Ordering::AcqRel, &writer);
            assert_eq!(old, rebind(protected));
            // SAFETY: unlinked, retired once.
            unsafe { writer.retire(old) };
        }
        for _ in 0..4 {
            Hazard::collect();
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "scan freed a node protected by a published hazard"
        );
        // Reading through the protection must still be valid.
        // SAFETY: protected above.
        let _ = unsafe { protected.deref() };

        drop(reader);
        Hazard::collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        // SAFETY: unique access.
        unsafe { drop(slot.into_owned()) };
    }

    #[test]
    fn hazard_blanket_era_blocks_nodes_retired_during_guard() {
        let drops = Arc::new(Counter::new(0));
        let slot: Atomic<DropCounter> = Atomic::new(DropCounter(Arc::clone(&drops)));

        let reader = Hazard::enter_blanket();
        {
            let writer = Hazard::enter_blanket();
            let fresh = crate::epoch::Owned::new(DropCounter(Arc::clone(&drops)));
            let old = slot.swap(fresh.into_shared(&writer), Ordering::AcqRel, &writer);
            // SAFETY: unlinked, retired once.
            unsafe { writer.retire(old) };
        }
        for _ in 0..4 {
            Hazard::collect();
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "scan freed a node retired during a live era guard"
        );
        drop(reader);
        Hazard::collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        // SAFETY: unique access.
        unsafe { drop(slot.into_owned()) };
    }

    #[test]
    fn debug_backend_catches_use_after_retire() {
        let stale_guard = DebugReclaim::enter();
        let slot: Atomic<u64> = Atomic::new(7);
        let stale = stale_guard.protect(0, &slot, Ordering::Acquire);
        {
            let retirer = DebugReclaim::enter();
            let old = slot.swap(Shared::null(), Ordering::AcqRel, &retirer);
            // SAFETY: unlinked, retired once.
            unsafe { retirer.retire(old) };
        }
        // A guard that began *after* the retire must not touch the node.
        let late_guard = DebugReclaim::enter();
        let err = catch_unwind(AssertUnwindSafe(|| {
            late_guard.protect_ptr(0, stale);
        }))
        .expect_err("use-after-retire must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string>".into());
        assert!(msg.contains("use-after-retire"), "wrong message: {msg}");
        assert!(msg.contains("retired by thread"), "wrong message: {msg}");
        // The guard that predates the retire may still touch it (that is
        // the entire point of deferred reclamation).
        let revisit = stale_guard.protect_ptr(0, stale);
        // SAFETY: quarantined, not freed (stale_guard is still live).
        assert_eq!(unsafe { *revisit.deref() }, 7);
        drop(late_guard);
        drop(stale_guard);
        DebugReclaim::collect();
    }

    #[test]
    fn debug_backend_catches_double_retire() {
        let guard = DebugReclaim::enter();
        let slot: Atomic<u64> = Atomic::new(9);
        let old = slot.swap(Shared::null(), Ordering::AcqRel, &guard);
        // SAFETY: unlinked, first retire.
        unsafe { guard.retire(old) };
        let err = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: intentionally violating the contract under the
            // checking backend.
            unsafe { guard.retire(old) };
        }))
        .expect_err("double retire must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string>".into());
        assert!(msg.contains("double retire"), "wrong message: {msg}");
        drop(guard);
        DebugReclaim::collect();
    }

    /// Array-granularity retire (see the module docs): swap out a table
    /// that owns a whole boxed slice of buckets, retire it with one call,
    /// and every bucket entry must eventually drop — except under `Leak`.
    /// Collection loops because sibling tests in this binary may hold
    /// pins/guards that legitimately defer the drain.
    fn retire_bucket_array_on<R: Reclaimer>(expect_freed: bool) {
        struct Table {
            _buckets: Box<[Vec<DropCounter>]>,
        }
        const BUCKETS: usize = 8;
        const PER_BUCKET: usize = 4;
        const ENTRIES: usize = BUCKETS * PER_BUCKET;

        let drops = Arc::new(Counter::new(0));
        let table = Table {
            _buckets: (0..BUCKETS)
                .map(|_| {
                    (0..PER_BUCKET)
                        .map(|_| DropCounter(Arc::clone(&drops)))
                        .collect()
                })
                .collect(),
        };
        let current: Atomic<Table> = Atomic::new(table);
        {
            let guard = R::enter_blanket();
            let empty = crate::epoch::Owned::new(Table {
                _buckets: Box::new([]),
            });
            let old = current.swap(empty.into_shared(&guard), Ordering::AcqRel, &guard);
            // SAFETY: the swap severed the old table from the root;
            // retired exactly once.
            unsafe { guard.retire(old) };
        }
        if expect_freed {
            for _ in 0..1000 {
                R::collect();
                if drops.load(Ordering::SeqCst) == ENTRIES {
                    break;
                }
                std::thread::yield_now();
            }
            assert_eq!(
                drops.load(Ordering::SeqCst),
                ENTRIES,
                "{}: retired bucket array did not drop all entries",
                R::NAME
            );
        } else {
            R::collect();
            assert_eq!(
                drops.load(Ordering::SeqCst),
                0,
                "{}: leaked table must not drop",
                R::NAME
            );
        }
        // SAFETY: unique access to the live (empty) table.
        unsafe { drop(current.into_owned()) };
    }

    #[test]
    fn retired_bucket_arrays_drop_every_entry() {
        retire_bucket_array_on::<Ebr>(true);
        retire_bucket_array_on::<Hazard>(true);
        retire_bucket_array_on::<DebugReclaim>(true);
        retire_bucket_array_on::<Leak>(false);
    }

    #[test]
    fn leak_backend_never_frees() {
        let drops = Arc::new(Counter::new(0));
        let slot: Atomic<DropCounter> = Atomic::new(DropCounter(Arc::clone(&drops)));
        {
            let guard = Leak::enter();
            let old = slot.swap(Shared::null(), Ordering::AcqRel, &guard);
            // SAFETY: unlinked (and deliberately leaked).
            unsafe { guard.retire(old) };
        }
        Leak::collect();
        assert_eq!(drops.load(Ordering::SeqCst), 0, "Leak backend freed a node");
    }
}
